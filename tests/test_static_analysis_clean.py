"""Lint/type gate for the strictly-checked subsystems.

Runs ``ruff check`` and ``mypy`` over the strictly-checked scope
configured in pyproject.toml (``src/repro/staticanalysis/``, the
pre-injection oracle, the parallel campaign engine, the campaign
controller and the observability subsystem). Both tools are optional
dependencies: when they are not installed the corresponding test is
skipped, so the tier-1 suite stays runnable in minimal environments —
the CI lint job hard-fails on the same commands instead.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKED_PATHS = [
    "src/repro/staticanalysis",
    "src/repro/core/preinjection.py",
    "src/repro/core/parallel.py",
    "src/repro/core/controller.py",
    "src/repro/core/checkpoint.py",
    "src/repro/core/goldencache.py",
    "src/repro/util/sampling.py",
    "src/repro/observability",
]


def _have(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


def _run(args):
    return subprocess.run(
        [sys.executable, "-m", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


@pytest.mark.skipif(not _have("ruff"), reason="ruff is not installed")
def test_ruff_clean():
    proc = _run(["ruff", "check", *CHECKED_PATHS])
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}{proc.stderr}"


@pytest.mark.skipif(not _have("mypy"), reason="mypy is not installed")
def test_mypy_clean():
    proc = _run(["mypy", *CHECKED_PATHS])
    assert proc.returncode == 0, f"mypy findings:\n{proc.stdout}{proc.stderr}"
