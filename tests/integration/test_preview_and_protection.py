"""Integration: fault-list preview determinism and code write-protection."""

import pytest

from repro.core import create_target
from repro.thor.memory import IllegalAddress
from tests.conftest import make_campaign


class TestFaultListPreview:
    def test_preview_matches_actual_run(self):
        campaign = make_campaign(n_experiments=8, seed=15)
        previews = create_target("thor-rd").preview_fault_list(campaign, 8)
        sink = create_target("thor-rd").run_campaign(campaign)
        for preview, result in zip(previews, sink.results):
            planned = [
                (action["time"], location)
                for action in preview["actions"]
                for location in action["locations"]
            ]
            actual = [
                (injection.time, injection.location.key())
                for injection in result.injections
            ]
            assert planned == actual

    def test_preview_respects_count(self):
        campaign = make_campaign(n_experiments=20)
        previews = create_target("thor-rd").preview_fault_list(campaign, 5)
        assert len(previews) == 5

    def test_preview_count_clamped_to_campaign(self):
        campaign = make_campaign(n_experiments=3)
        previews = create_target("thor-rd").preview_fault_list(campaign, 99)
        assert len(previews) == 3

    def test_cli_preview(self, tmp_path, capsys):
        from repro.ui.app import main

        db = str(tmp_path / "pv.db")
        main(["campaign", "--db", db, "--name", "pv", "--workload", "vecsum",
              "--experiments", "4"])
        capsys.readouterr()
        assert main(["preview", "--db", db, "--campaign", "pv",
                     "--count", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("scan:internal") == 4


class TestCodeProtection:
    def test_protected_code_rejects_cpu_store(self, thor_target):
        campaign = make_campaign(protect_code=True)
        thor_target.read_campaign_data(campaign)
        thor_target.init_test_card()
        thor_target.load_workload()
        code_start = min(thor_target._workload.program.code_addresses())
        with pytest.raises(IllegalAddress):
            thor_target.card.cpu.memory.write(code_start, 0)

    def test_injector_still_reaches_protected_code(self, thor_target):
        """Pre-runtime SWIFI models physical RAM access: it bypasses the
        protection the CPU is subject to."""
        campaign = make_campaign(
            technique="swifi-pre",
            location_patterns=["memory:code/*"],
            protect_code=True,
            n_experiments=3,
            seed=16,
        )
        sink = thor_target.run_campaign(campaign)
        assert all(result.injections for result in sink.results)

    def test_protection_converts_wild_stores_to_detections(self):
        """The software-EDM effect: faults that redirect a store into the
        code image now trap instead of silently self-modifying code.
        Verified directly: corrupt a store's base register so it targets
        the code image."""
        from repro.thor.assembler import assemble
        from repro.thor.testcard import DebugEventKind, TestCard

        source = (
            "start:\n ldi r1, buf\n ldi r2, 42\n st r2, [r1+0]\n halt\n"
            "buf: .word 0\n"
        )
        program = assemble(source)

        def run(protect):
            card = TestCard()
            card.init()
            card.load_program(program)
            if protect:
                code = program.code_addresses()
                card.cpu.memory.protect(min(code), max(code))
            # Corrupt the base register so the store lands on 'start'.
            card.run(timeout_cycles=100, stop_cycle=3)
            card.cpu.regs.write(1, program.entry)
            return card.run(timeout_cycles=1000)

        unprotected = run(protect=False)
        protected = run(protect=True)
        assert unprotected.kind is DebugEventKind.HALT  # silent corruption
        assert protected.kind is DebugEventKind.TRAP
        assert protected.trap.trap.value == "illegal_address"
        assert "write-protected" in protected.trap.detail

    def test_campaign_round_trips_protect_flag(self, db):
        campaign = make_campaign(protect_code=True)
        db.save_campaign(campaign)
        assert db.load_campaign(campaign.campaign_name).protect_code
