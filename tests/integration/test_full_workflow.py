"""Integration: the paper's four-phase workflow, end to end through the
database, for every technique and fault model."""

import pytest

from repro.analysis import classify_campaign
from repro.core import CampaignData, CampaignController, create_target
from repro.core.campaign import FaultModelSpec
from repro.db.autoanalysis import run_auto_analysis
from repro.ui import (
    CampaignSetupWindow,
    ProgressWindow,
    TargetConfigurationWindow,
)
from tests.conftest import make_campaign


class TestFourPhases:
    def test_configuration_to_analysis(self, db):
        # Phase 1: configuration.
        target = create_target("thor-rd")
        TargetConfigurationWindow(target, db).save()
        # Phase 2: set-up.
        window = CampaignSetupWindow(db)
        window.select_target("thor-rd")
        window.set_name("four-phase")
        window.set_workload("bubblesort", n=10, seed=4)
        window.choose_locations(["scan:internal/cpu.regfile.*",
                                 "scan:internal/dcache.*"])
        window.set_experiments(30, seed=77)
        campaign = window.save()
        # Phase 3: fault injection with progress.
        controller = CampaignController(create_target("thor-rd"), sink=db)
        progress = ProgressWindow(controller)
        controller.run(campaign)
        assert progress.latest.n_done == 30
        # Phase 4: analysis.
        report = run_auto_analysis(db, "four-phase")
        assert "detection coverage" in report
        assert db.count_experiments("four-phase") == 30


class TestFaultModelsEndToEnd:
    @pytest.mark.parametrize("kind,extra", [
        ("transient", {"multiplicity": 1}),
        ("transient", {"multiplicity": 4}),
        ("intermittent", {"burst_length": 3, "burst_spacing": 20}),
        ("permanent", {"stuck_value": 1, "reassert_interval": 50}),
    ])
    def test_model_runs_and_logs(self, thor_target, kind, extra):
        campaign = make_campaign(
            n_experiments=6,
            fault_model=FaultModelSpec(kind=kind, **extra),
            seed=19,
        )
        sink = thor_target.run_campaign(campaign)
        assert len(sink.results) == 6
        for result in sink.results:
            assert result.termination is not None
            assert result.injections

    def test_permanent_fault_reasserts(self, thor_target):
        campaign = make_campaign(
            n_experiments=4,
            workload_name="bubblesort",
            fault_model=FaultModelSpec(
                kind="permanent", stuck_value=1, reassert_interval=100
            ),
            seed=23,
        )
        sink = thor_target.run_campaign(campaign)
        multi = [r for r in sink.results if len(r.injections) > 1]
        assert multi, "no experiment re-asserted its stuck-at fault"
        for result in multi:
            locations = {i.location for i in result.injections}
            assert len(locations) == 1  # same node every time
            assert all(i.op == "stuck1" for i in result.injections)

    def test_intermittent_hits_same_location(self, thor_target):
        campaign = make_campaign(
            n_experiments=4,
            workload_name="bubblesort",
            fault_model=FaultModelSpec(
                kind="intermittent", burst_length=3, burst_spacing=30
            ),
            seed=29,
        )
        sink = thor_target.run_campaign(campaign)
        for result in sink.results:
            locations = {i.location for i in result.injections}
            assert len(locations) == 1


class TestTriggersEndToEnd:
    @pytest.mark.parametrize("kind,params", [
        ("branch", {}),
        ("call", {}),
        ("clock", {"period": 50}),
        ("time-fixed", {"time": 40}),
    ])
    def test_trigger_kind_runs(self, thor_target, kind, params):
        from repro.core.triggers import TriggerSpec

        workload = "quicksort" if kind == "call" else "bubblesort"
        campaign = make_campaign(
            workload_name=workload,
            n_experiments=5,
            trigger=TriggerSpec(kind=kind, **params),
            seed=37,
        )
        sink = thor_target.run_campaign(campaign)
        assert len(sink.results) == 5
        if kind == "time-fixed":
            assert all(
                injection.time == 40
                for result in sink.results
                for injection in result.injections
            )

    def test_data_access_trigger_end_to_end(self, thor_target):
        from repro.core.triggers import TriggerSpec
        from repro.workloads import get_workload

        workload = get_workload("vecsum")
        target_address = workload.label("vec")
        campaign = make_campaign(
            n_experiments=4,
            trigger=TriggerSpec(kind="data-access", address=target_address),
            seed=41,
        )
        sink = thor_target.run_campaign(campaign)
        # Injection instants coincide with accesses to the vector.
        access_cycles = {
            step.cycle_before
            for step in sink.reference.trace.accesses_to(target_address)
        }
        for result in sink.results:
            for injection in result.injections:
                assert injection.time in access_cycles or injection.time >= 1


class TestDetailRerunThroughDatabase:
    def test_interesting_experiment_reanalysed(self, db, thor_target):
        """The paper's E1/E2 story: an interesting experiment is re-run in
        detail mode; the re-run links to its parent and yields a
        propagation trace."""
        from repro.analysis import analyse_propagation

        campaign = make_campaign(
            n_experiments=10, use_preinjection=True, seed=47
        )
        thor_target.run_campaign(campaign, sink=db)
        rerun = thor_target.rerun_experiment(campaign, 3, sink=db)
        stored = db.load_experiment(rerun.name)
        assert stored.parent_experiment == "test-campaign-exp00003"
        reference = db.load_reference(campaign.campaign_name + "")
        # The rerun's own campaign record is the detail variant; its
        # reference carries the per-step states.
        assert stored.detail_states
        assert db.children_of("test-campaign-exp00003") == [rerun.name]


class TestMergedCampaignRuns:
    def test_merge_then_run(self, db, thor_target):
        a = make_campaign(campaign_name="m-a", n_experiments=5)
        b = make_campaign(
            campaign_name="m-b",
            n_experiments=5,
            location_patterns=["scan:internal/cpu.psr"],
        )
        merged = CampaignData.merge("m-ab", [a, b])
        sink = thor_target.run_campaign(merged, sink=db)
        assert db.count_experiments("m-ab") == 10
        locations = {
            injection.location.path
            for result in db.load_experiments("m-ab")
            for injection in result.injections
        }
        # Faults drawn from the union of both selections.
        assert any(path.startswith("cpu.regfile") for path in locations)


class TestAllWorkloadsSmoke:
    @pytest.mark.parametrize(
        "workload", ["bubblesort", "quicksort", "matmul", "fibonacci",
                     "crc32", "vecsum"]
    )
    def test_small_campaign_on_each_workload(self, thor_target, workload):
        campaign = make_campaign(
            workload_name=workload, n_experiments=3, seed=53
        )
        sink = thor_target.run_campaign(campaign)
        summary = classify_campaign(sink.results, sink.reference)
        assert summary.total == 3
