"""Integration: resuming an interrupted campaign from the database.

The progress window's "restart" affordance, extended across process
boundaries: a campaign stopped mid-way is re-run with ``resume=True``;
previously completed experiments are skipped, and — because each
experiment draws its fault from an index-keyed RNG substream — the
resumed experiments inject exactly the faults an uninterrupted run would
have injected.
"""

import pytest

from repro.core import CampaignController, create_target
from repro.util.errors import CampaignError
from tests.conftest import make_campaign


def _injection_map(db, campaign_name):
    return {
        result.index: [injection.to_dict() for injection in result.injections]
        for result in db.load_experiments(campaign_name)
    }


class TestResume:
    def test_resume_completes_the_campaign(self, db):
        campaign = make_campaign(n_experiments=20, seed=3)
        controller = CampaignController(create_target("thor-rd"), sink=db)
        controller.add_listener(
            lambda progress: controller.stop() if progress.n_done == 7 else None
        )
        controller.run(campaign)
        assert db.count_experiments(campaign.campaign_name) == 7

        resumed = CampaignController(create_target("thor-rd"), sink=db)
        resumed.run(campaign, resume=True)
        assert db.count_experiments(campaign.campaign_name) == 20
        assert db.completed_indices(campaign.campaign_name) == list(range(20))

    def test_resumed_faults_match_uninterrupted_run(self, db):
        campaign = make_campaign(n_experiments=12, seed=5)
        # Uninterrupted run into a second database for comparison.
        from repro.db import GoofiDatabase

        with GoofiDatabase(":memory:") as full_db:
            create_target("thor-rd").run_campaign(campaign, sink=full_db)
            full = _injection_map(full_db, campaign.campaign_name)

        controller = CampaignController(create_target("thor-rd"), sink=db)
        controller.add_listener(
            lambda progress: controller.stop() if progress.n_done == 5 else None
        )
        controller.run(campaign)
        CampaignController(create_target("thor-rd"), sink=db).run(
            campaign, resume=True
        )
        assert _injection_map(db, campaign.campaign_name) == full

    def test_resume_of_finished_campaign_runs_nothing_new(self, db):
        campaign = make_campaign(n_experiments=5, seed=7)
        CampaignController(create_target("thor-rd"), sink=db).run(campaign)
        before = _injection_map(db, campaign.campaign_name)
        controller = CampaignController(create_target("thor-rd"), sink=db)
        controller.run(campaign, resume=True)
        assert _injection_map(db, campaign.campaign_name) == before
        assert controller.progress.n_done == 5  # all pre-counted

    def test_resume_without_capable_sink_rejected(self):
        campaign = make_campaign(n_experiments=3)
        controller = CampaignController(create_target("thor-rd"))
        with pytest.raises(CampaignError):
            controller.run(campaign, resume=True)

    def test_reruns_do_not_confuse_resume(self, db, thor_target):
        """Detail-mode re-runs carry parentExperiment and must not count
        as completed campaign indices."""
        campaign = make_campaign(n_experiments=6, seed=9)
        thor_target.run_campaign(campaign, sink=db)
        thor_target.rerun_experiment(campaign, 2, sink=db)
        assert db.completed_indices(campaign.campaign_name) == list(range(6))

    def test_cli_resume(self, tmp_path, capsys):
        from repro.ui.app import main

        db_path = str(tmp_path / "resume.db")
        main(["campaign", "--db", db_path, "--name", "rc",
              "--workload", "vecsum", "--experiments", "6"])
        main(["run", "--db", db_path, "--campaign", "rc", "--quiet"])
        capsys.readouterr()
        assert main(["run", "--db", db_path, "--campaign", "rc",
                     "--quiet", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "6/6" in out
