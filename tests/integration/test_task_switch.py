"""Integration tests for the multitask workload and task-switch trigger."""

import pytest

from repro.core import create_target
from repro.core.triggers import TriggerSpec
from repro.util.errors import ConfigurationError
from repro.workloads import get_workload
from tests.conftest import make_campaign


class TestMultitaskWorkload:
    def test_golden_outputs(self):
        from tests.workloads.test_workloads import run_workload

        definition = get_workload("multitask", {"quanta": 10})
        _, event, outputs = run_workload(definition)
        assert outputs["switches"] == [10]
        assert outputs["counter_a"] == definition.expected["counter_a"]
        assert outputs["counter_b"] == definition.expected["counter_b"]

    def test_has_task_switch_label(self):
        definition = get_workload("multitask")
        assert definition.label("task_switch") > 0


class TestTaskSwitchTrigger:
    def test_injections_land_at_switch_instants(self, thor_target):
        campaign = make_campaign(
            workload_name="multitask",
            trigger=TriggerSpec(kind="task-switch"),
            n_experiments=10,
            seed=71,
        )
        sink = thor_target.run_campaign(campaign)
        switch_pc = thor_target._workload.label("task_switch")
        valid_cycles = {
            max(1, step.cycle_before)
            for step in sink.reference.trace.executions_of(switch_pc)
        }
        for result in sink.results:
            assert result.injections[0].time in valid_cycles

    def test_occurrence_selection(self, thor_target):
        campaign = make_campaign(
            workload_name="multitask",
            trigger=TriggerSpec(kind="task-switch", occurrence=3),
            n_experiments=4,
            seed=72,
        )
        sink = thor_target.run_campaign(campaign)
        times = {
            injection.time
            for result in sink.results
            for injection in result.injections
        }
        assert len(times) == 1  # always the 3rd dispatch

    def test_trigger_on_workload_without_tasks_rejected(self, thor_target):
        campaign = make_campaign(
            workload_name="vecsum",
            trigger=TriggerSpec(kind="task-switch"),
            n_experiments=2,
        )
        with pytest.raises(ConfigurationError):
            thor_target.run_campaign(campaign)
