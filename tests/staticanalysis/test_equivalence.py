"""Unit tests for the static fault-equivalence engine."""

from repro.core import create_target
from repro.core.faultmodels import InjectionAction, InjectionPlan
from repro.core.locations import FaultLocation
from repro.core.trace import Trace, TraceStep
from repro.staticanalysis.cfg import build_cfg
from repro.staticanalysis.equivalence import (
    KIND_REGION,
    KIND_SINGLETON,
    KIND_STOP,
    EquivalencePreInjectionAnalysis,
    RegionCertifier,
    location_item,
)
from repro.staticanalysis.oracle import StaticPreInjectionAnalysis
from repro.thor.assembler import assemble
from tests.conftest import make_campaign


def reg_loc(n, bit=0):
    return FaultLocation("scan:internal", f"cpu.regfile.r{n}", bit)


def flip_plan(location, time):
    return InjectionPlan(
        actions=[InjectionAction(time=time, locations=(location,))]
    )


class TestLocationItem:
    def test_register_locations(self):
        assert location_item(reg_loc(7, bit=3)) == ("reg", 7)

    def test_psr_location(self):
        location = FaultLocation("scan:internal", "cpu.psr", 0)
        assert location_item(location) == ("flags",)

    def test_unwindowable_locations(self):
        for space, path in (
            ("memory:data", "word.0x0300"),
            ("scan:boundary", "pins.data_bus"),
            ("scan:internal", "cpu.pc"),
            ("scan:internal", "dcache.line0.word1"),
        ):
            assert location_item(FaultLocation(space, path, 0)) is None


class TestRegionCertifier:
    def _certifier(self, text):
        program = assemble(text)
        return program, RegionCertifier(build_cfg(program))

    def test_straightline_region_certified(self):
        program, certifier = self._certifier(
            """
            start: ldi r5, 1
                   ldi r1, 2
                   ldi r2, 3
                   addi r6, r5, 1
                   halt
            """
        )
        assert certifier.certify(
            ("reg", 5), program.entry, program.entry + 3
        )

    def test_intervening_read_refused(self):
        program, certifier = self._certifier(
            """
            start: ldi r5, 1
                   mov r7, r5
                   addi r6, r5, 1
                   halt
            """
        )
        assert not certifier.certify(
            ("reg", 5), program.entry, program.entry + 2
        )

    def test_trap_is_a_barrier(self):
        program, certifier = self._certifier(
            """
            start: ldi r5, 1
                   trap 1
                   addi r6, r5, 1
                   halt
            """
        )
        assert not certifier.certify(
            ("reg", 5), program.entry, program.entry + 2
        )

    def test_untouched_diamond_certified(self):
        program, certifier = self._certifier(
            """
            start: ldi r5, 1
                   cmpi r1, 0
                   beq other
                   ldi r2, 1
                   jmp join
            other: ldi r2, 2
            join:  addi r6, r5, 1
                   halt
            """
        )
        assert certifier.certify(
            ("reg", 5), program.entry, program.symbols["join"]
        )

    def test_touching_arm_refused(self):
        program, certifier = self._certifier(
            """
            start: ldi r5, 1
                   cmpi r1, 0
                   beq other
                   ldi r5, 9
                   jmp join
            other: ldi r2, 2
            join:  addi r6, r5, 1
                   halt
            """
        )
        assert not certifier.certify(
            ("reg", 5), program.entry, program.symbols["join"]
        )

    def test_folded_away_access_ignored(self):
        # The write to r5 sits behind a provably-not-taken branch, so the
        # conditional-constant-refined CFG certifies the region anyway.
        program, certifier = self._certifier(
            """
            start: ldi r5, 1
                   ldi r1, 1
                   cmpi r1, 0
                   beq dead
                   jmp join
            dead:  ldi r5, 9
            join:  addi r6, r5, 1
                   halt
            """
        )
        assert certifier.certify(
            ("reg", 5), program.entry, program.symbols["join"]
        )

    def test_loop_refusal_counted(self):
        program, certifier = self._certifier(
            """
            start: ldi r5, 0
            loop:  addi r5, r5, 1
                   cmpi r5, 3
                   blt loop
                   addi r6, r5, 1
                   halt
            """
        )
        loop = program.symbols["loop"]
        use = loop + 3
        assert certifier.loop_refusals == 0
        assert not certifier.certify(("reg", 5), loop, use)
        assert certifier.loop_refusals == 1

    def test_observation_sites_include_traps(self):
        program, certifier = self._certifier(
            """
            start: ldi r5, 1
                   trap 1
            """
        )
        sites = certifier.observation_sites(("reg", 5))
        assert program.entry in sites  # the write itself
        assert program.entry + 1 in sites  # the trap barrier

    def test_flags_observation_sites(self):
        program, certifier = self._certifier(
            """
            start: cmpi r1, 0
                   beq start
                   halt
            """
        )
        sites = certifier.observation_sites(("flags",))
        assert program.entry in sites  # writer
        assert program.entry + 1 in sites  # reader


#: Straight-line fixture shared by the analysis tests: r5 written at the
#: entry, untouched for two instructions, read at entry+3.
STRAIGHTLINE = """
start: ldi r5, 1
       ldi r1, 2
       ldi r2, 3
       addi r6, r5, 1
       halt
"""


def make_analysis():
    program = assemble(STRAIGHTLINE)
    entry = program.entry
    steps = []
    accesses = [
        dict(reg_writes=(5,)),
        dict(reg_writes=(1,)),
        dict(reg_writes=(2,)),
        dict(reg_reads=(5,), reg_writes=(6,), writes_flags=True),
        dict(),
    ]
    for i, kw in enumerate(accesses):
        steps.append(
            TraceStep(
                index=i,
                pc=entry + i,
                cycle_before=i * 10,
                cycle_after=i * 10 + 10,
                **kw,
            )
        )
    return program, EquivalencePreInjectionAnalysis(program, Trace(steps))


class TestStopSteps:
    def test_breakpoint_lands_on_first_step_at_or_after(self):
        _, analysis = make_analysis()
        assert analysis.stop_step(0) == 0
        assert analysis.stop_step(5) == 1
        assert analysis.stop_step(10) == 1
        assert analysis.stop_step(11) == 2
        assert analysis.stop_step(35) == 4

    def test_beyond_end_of_run(self):
        _, analysis = make_analysis()
        assert analysis.stop_step(10_000) == 5  # == len(trace): no injection


class TestClassKeys:
    def test_same_window_same_key(self):
        _, analysis = make_analysis()
        keys = set()
        for time in (5, 15, 25):
            key, kind = analysis.class_key(flip_plan(reg_loc(5), time))
            assert kind == KIND_REGION
            keys.add(key)
        assert len(keys) == 1

    def test_different_bits_split_classes(self):
        _, analysis = make_analysis()
        key0, _ = analysis.class_key(flip_plan(reg_loc(5, bit=0), 5))
        key1, _ = analysis.class_key(flip_plan(reg_loc(5, bit=1), 5))
        assert key0 != key1

    def test_injection_across_access_splits_windows(self):
        _, analysis = make_analysis()
        # t=5 stops before the read of r5 (step 3); t=35 stops after it.
        key_before, _ = analysis.class_key(flip_plan(reg_loc(5), 5))
        key_after, _ = analysis.class_key(flip_plan(reg_loc(5), 35))
        assert key_before != key_after

    def test_memory_location_falls_back_to_stop_point(self):
        _, analysis = make_analysis()
        location = FaultLocation("memory:data", "word.0x0300", 0)
        key_a, kind = analysis.class_key(flip_plan(location, 5))
        assert kind == KIND_STOP
        # Same stop step merges; a different stop step does not.
        key_b, _ = analysis.class_key(flip_plan(location, 7))
        key_c, _ = analysis.class_key(flip_plan(location, 15))
        assert key_a == key_b
        assert key_a != key_c

    def test_non_injecting_experiments_share_a_stop_class(self):
        _, analysis = make_analysis()
        key_a, kind = analysis.class_key(flip_plan(reg_loc(5), 9_000))
        key_b, _ = analysis.class_key(flip_plan(reg_loc(5), 9_999))
        assert kind == KIND_STOP
        assert key_a == key_b

    def test_multi_action_plan_is_singleton(self):
        _, analysis = make_analysis()
        plan = InjectionPlan(
            actions=[
                InjectionAction(time=5, locations=(reg_loc(5),)),
                InjectionAction(time=15, locations=(reg_loc(5),)),
            ]
        )
        _, kind = analysis.class_key(plan)
        assert kind == KIND_SINGLETON

    def test_liveness_delegates_to_static_oracle(self):
        program, analysis = make_analysis()
        static = StaticPreInjectionAnalysis(program)
        for time in (1, 10, 100):
            for n in (1, 5, 9):
                assert analysis.is_live(reg_loc(n), time) == static.is_live(
                    reg_loc(n), time
                )


class TestPartition:
    def test_partition_covers_all_plans_exactly_once(self):
        _, analysis = make_analysis()
        plans = {
            i: flip_plan(reg_loc(5), time)
            for i, time in enumerate((5, 15, 25, 35, 9_000))
        }
        partition = analysis.partition(plans)
        members = [m for c in partition.classes for m in c.members]
        assert sorted(members) == sorted(plans)

    def test_region_class_and_representative(self):
        _, analysis = make_analysis()
        plans = {
            i: flip_plan(reg_loc(5), time)
            for i, time in enumerate((5, 15, 25))
        }
        partition = analysis.partition(plans)
        assert len(partition.classes) == 1
        cls = partition.classes[0]
        assert cls.kind == KIND_REGION
        assert cls.representative == 0
        assert cls.n_derived == 2
        assert partition.derived_map() == {1: 0, 2: 0}
        assert partition.derived_members_of(0) == [1, 2]
        assert partition.derived_members_of(1) == []

    def test_stats_accounting(self):
        _, analysis = make_analysis()
        plans = {
            i: flip_plan(reg_loc(5), time)
            for i, time in enumerate((5, 15, 35, 9_000, 9_999))
        }
        stats = analysis.partition(plans).stats()
        assert stats.n_experiments == 5
        assert stats.n_executed + stats.n_derived == 5
        assert stats.n_executed == stats.n_classes
        # {5,15} region class, {9000,9999} stop class, {35} singleton.
        assert stats.n_region_classes == 1
        assert stats.n_stop_classes == 1
        assert stats.n_singletons == 1
        assert stats.collapse_ratio == 5 / 3
        assert 0.0 < stats.singleton_fraction < 1.0
        payload = stats.to_dict()
        assert payload["n_experiments"] == 5
        assert payload["collapse_ratio"] == stats.collapse_ratio

    def test_single_member_class_downgraded_to_singleton(self):
        _, analysis = make_analysis()
        partition = analysis.partition({0: flip_plan(reg_loc(5), 5)})
        assert partition.classes[0].kind == KIND_SINGLETON


class TestTargetIntegration:
    def test_partition_of_a_real_campaign(self):
        campaign = make_campaign(
            preinjection_mode="equivalence",
            use_preinjection=True,
            location_patterns=["scan:internal/cpu.regfile.r5"],
            n_experiments=24,
        )
        target = create_target("thor-rd")
        reference = target.prepare_run(campaign)
        analysis = target._equivalence
        assert analysis is not None
        plans = {
            i: target.plan_experiment(i, reference)
            for i in range(campaign.n_experiments)
        }
        partition = analysis.partition(plans)
        stats = partition.stats()
        assert stats.n_experiments == 24
        assert stats.n_derived > 0  # r5 has few access windows in vecsum
        members = sorted(m for c in partition.classes for m in c.members)
        assert members == list(range(24))
        for member, rep in partition.derived_map().items():
            assert partition.class_of(member) is partition.class_of(rep)
