"""Unit tests for def/use extraction and reaching definitions."""

from repro.staticanalysis.defuse import (
    FLAGS,
    ReachingDefinitions,
    instruction_defuse,
    program_defuse,
)
from repro.staticanalysis.cfg import build_cfg
from repro.thor import isa
from repro.thor.assembler import assemble
from repro.thor.isa import Instruction, Opcode


class TestInstructionDefUse:
    def test_alu_r3(self):
        fact = instruction_defuse(
            0x100, Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        )
        assert fact.uses == frozenset({2, 3})
        assert fact.defs == frozenset({1})
        assert fact.writes_flags and not fact.reads_flags
        assert fact.flow == isa.FLOW_NEXT

    def test_load_and_store_memory_classes(self):
        load = instruction_defuse(0, Instruction(Opcode.LD, rd=1, rs1=2))
        store = instruction_defuse(0, Instruction(Opcode.ST, rd=1, rs1=2))
        assert load.is_memory_read and not load.is_memory_write
        assert store.is_memory_write and not store.is_memory_read
        # A store *reads* both the address base and the stored register.
        assert store.uses == frozenset({1, 2})
        assert store.defs == frozenset()

    def test_stack_ops_use_stack_pointer(self):
        push = instruction_defuse(0, Instruction(Opcode.PUSH, rd=3))
        pop = instruction_defuse(0, Instruction(Opcode.POP, rd=3))
        assert isa.REG_SP in push.uses and isa.REG_SP in push.defs
        assert 3 in push.uses
        assert isa.REG_SP in pop.uses and {3, isa.REG_SP} <= pop.defs

    def test_call_defines_link_register(self):
        call = instruction_defuse(0, Instruction(Opcode.CALL, imm=0x200))
        ret = instruction_defuse(0, Instruction(Opcode.RET))
        assert call.defs == frozenset({isa.REG_LR})
        assert call.flow == isa.FLOW_CALL
        assert ret.uses == frozenset({isa.REG_LR})
        assert ret.flow == isa.FLOW_RETURN

    def test_branch_reads_flags(self):
        cmp = instruction_defuse(0, Instruction(Opcode.CMP, rs1=1, rs2=2))
        beq = instruction_defuse(0, Instruction(Opcode.BEQ, imm=3))
        assert cmp.writes_flags and not cmp.reads_flags
        assert beq.reads_flags and not beq.writes_flags
        assert beq.flow == isa.FLOW_BRANCH


class TestProgramDefUse:
    def test_skips_data_words(self):
        program = assemble(
            """
            start: ldi r1, 5
                   halt
            value: .word 0x1234
            """
        )
        facts = program_defuse(program)
        assert set(facts) == set(program.code_addresses())
        assert program.symbols["value"] not in facts

    def test_every_code_word_covered(self):
        program = assemble(
            """
            loop: addi r1, r1, 1
                  cmpi r1, 10
                  blt loop
                  halt
            """
        )
        facts = program_defuse(program)
        assert len(facts) == 4


class TestReachingDefinitions:
    def _solve(self, text):
        program = assemble(text)
        cfg = build_cfg(program)
        return program, cfg, ReachingDefinitions(
            cfg.defuse, cfg.successors, cfg.entry
        )

    def test_definition_reaches_use(self):
        program, cfg, rd = self._solve(
            """
            start: ldi r1, 5
                   addi r2, r1, 1
                   halt
            """
        )
        entry = program.entry
        assert rd.definitions_reaching(entry + 1, 1) == [entry]

    def test_killed_definition_does_not_reach(self):
        program, cfg, rd = self._solve(
            """
            start: ldi r1, 5
                   ldi r1, 6
                   addi r2, r1, 1
                   halt
            """
        )
        entry = program.entry
        # Only the second definition of r1 reaches the use.
        assert rd.definitions_reaching(entry + 2, 1) == [entry + 1]

    def test_dead_definitions_found(self):
        program, cfg, rd = self._solve(
            """
            start: ldi r1, 5
                   ldi r1, 6
                   addi r2, r1, 1
                   halt
            """
        )
        entry = program.entry
        dead = rd.dead_definitions(reachable=cfg.reachable)
        # The first ldi r1 is overwritten unread; r2 is never read.
        assert (entry, 1) in dead
        assert (entry + 2, 2) in dead
        assert (entry + 1, 1) not in dead

    def test_loop_carried_definition_reaches(self):
        program, cfg, rd = self._solve(
            """
            start: ldi r1, 0
            loop:  addi r1, r1, 1
                   cmpi r1, 3
                   blt loop
                   halt
            """
        )
        loop = program.symbols["loop"]
        # Both the init and the loop-carried increment reach the add.
        assert rd.definitions_reaching(loop, 1) == sorted(
            [program.entry, loop]
        )


class TestSemanticsTableRegression:
    """Every opcode's def/use facts against the full isa.SEMANTICS table.

    The equivalence engine certifies def-use regions from these facts, so
    a silently dropped implicit operand (an ALU flag write, a branch flag
    read, the PUSH/POP stack pointer, the CALL link register) would make
    it merge experiments that are *not* equivalent. This regression pins
    instruction_defuse to the operand-semantics table for all opcodes.
    """

    @staticmethod
    def _roles_to_registers(instr, roles):
        resolved = set()
        for role in roles:
            if role == isa.ROLE_RD:
                resolved.add(instr.rd)
            elif role == isa.ROLE_RS1:
                resolved.add(instr.rs1)
            elif role == isa.ROLE_RS2:
                resolved.add(instr.rs2)
            elif role == isa.ROLE_SP:
                resolved.add(isa.REG_SP)
            elif role == isa.ROLE_LR:
                resolved.add(isa.REG_LR)
            else:  # pragma: no cover - new role must be added here
                raise AssertionError(f"unknown operand role {role!r}")
        return frozenset(resolved)

    def test_explicit_operands_match_table(self):
        for opcode, sem in isa.SEMANTICS.items():
            instr = Instruction(opcode, rd=1, rs1=2, rs2=3, imm=1)
            fact = instruction_defuse(0x200, instr)
            assert fact.uses == self._roles_to_registers(instr, sem.reads), (
                opcode
            )
            assert fact.defs == self._roles_to_registers(instr, sem.writes), (
                opcode
            )

    def test_implicit_flag_operands_match_table(self):
        for opcode, sem in isa.SEMANTICS.items():
            instr = Instruction(opcode, rd=1, rs1=2, rs2=3, imm=1)
            fact = instruction_defuse(0x200, instr)
            assert (FLAGS in fact.item_uses) == sem.reads_flags, opcode
            assert (FLAGS in fact.item_defs) == sem.writes_flags, opcode
            # The FLAGS pseudo-item is the *only* thing item_* adds.
            assert fact.item_uses - {FLAGS} == fact.uses, opcode
            assert fact.item_defs - {FLAGS} == fact.defs, opcode

    def test_flow_and_memory_class_match_table(self):
        for opcode, sem in isa.SEMANTICS.items():
            instr = Instruction(opcode, rd=1, rs1=2, rs2=3, imm=1)
            fact = instruction_defuse(0x200, instr)
            assert fact.flow == sem.flow, opcode
            assert fact.mem == sem.mem, opcode

    def test_table_exercises_both_flag_directions(self):
        # Sanity on the fixture itself: the table must contain both flag
        # writers (ALU/CMP) and flag readers (conditional branches).
        assert any(sem.writes_flags for sem in isa.SEMANTICS.values())
        assert any(sem.reads_flags for sem in isa.SEMANTICS.values())


class TestFlagChains:
    def test_cmp_chains_to_its_branch(self):
        program = assemble(
            """
            start: ldi r1, 5
                   cmpi r1, 3
                   beq done
                   addi r2, r1, 1
            done:  halt
            """
        )
        cfg = build_cfg(program)
        rd = ReachingDefinitions(cfg.defuse, cfg.successors, cfg.entry)
        cmp_address = program.entry + 1
        branch_address = program.entry + 2
        chains = rd.def_use_chains()
        assert branch_address in chains[(cmp_address, FLAGS)]
        assert rd.use_def_chains()[(branch_address, FLAGS)] == (cmp_address,)

    def test_flag_redefinition_kills_older_chain(self):
        program = assemble(
            """
            start: cmpi r1, 1
                   cmpi r1, 2
                   beq start
                   halt
            """
        )
        cfg = build_cfg(program)
        rd = ReachingDefinitions(cfg.defuse, cfg.successors, cfg.entry)
        first_cmp = program.entry
        second_cmp = program.entry + 1
        branch = program.entry + 2
        chains = rd.def_use_chains()
        assert chains[(first_cmp, FLAGS)] == ()
        assert branch in chains[(second_cmp, FLAGS)]

    def test_dead_definitions_exclude_flags_by_default(self):
        program = assemble(
            """
            start: addi r1, r1, 1
                   halt
            """
        )
        cfg = build_cfg(program)
        rd = ReachingDefinitions(cfg.defuse, cfg.successors, cfg.entry)
        entry = program.entry
        default = rd.dead_definitions(reachable=cfg.reachable)
        with_flags = rd.dead_definitions(
            reachable=cfg.reachable, include_flags=True
        )
        # The incidental flag write of addi is dead but only reported on
        # request — nearly every ALU op writes flags incidentally.
        assert (entry, FLAGS) not in default
        assert (entry, FLAGS) in with_flags
