"""Unit tests for the backward liveness dataflow analysis."""

from repro.staticanalysis.cfg import build_cfg
from repro.staticanalysis.liveness import FLAGS, compute_liveness
from repro.thor.assembler import assemble


def liveness_of(text):
    cfg = build_cfg(assemble(text))
    return cfg, compute_liveness(cfg)


class TestStraightLine:
    def test_read_register_is_live(self):
        cfg, result = liveness_of(
            """
            start: ldi r1, 5
                   addi r2, r1, 1
                   st r2, [r3+0]
                   halt
            """
        )
        assert {1, 2, 3} <= set(result.ever_live_registers)

    def test_unread_register_is_dead(self):
        cfg, result = liveness_of(
            """
            start: ldi r1, 5
                   ldi r2, 6
                   halt
            """
        )
        assert result.ever_live_registers == frozenset()
        assert result.dead_registers() == frozenset(range(16))

    def test_live_at_program_points(self):
        cfg, result = liveness_of(
            """
            start: ldi r1, 5
                   addi r2, r1, 1
                   halt
            """
        )
        # r1 is live *into* the add (about to be read) ...
        assert 1 in result.live_at(cfg.entry + 1)
        # ... but not into the ldi that defines it.
        assert 1 not in result.live_at(cfg.entry)
        # Non-code addresses have an empty live set.
        assert result.live_at(0xDEAD) == frozenset()


class TestFlags:
    def test_flags_live_when_branch_reads_them(self):
        cfg, result = liveness_of(
            """
            start: cmpi r1, 0
                   beq done
                   nop
            done:  halt
            """
        )
        assert result.flags_ever_live
        assert FLAGS in result.live_at(cfg.entry + 1)

    def test_flags_dead_without_reader(self):
        cfg, result = liveness_of(
            """
            start: cmpi r1, 0
                   halt
            """
        )
        assert not result.flags_ever_live

    def test_flags_not_reported_as_register(self):
        cfg, result = liveness_of(
            """
            start: cmpi r1, 0
                   beq done
            done:  halt
            """
        )
        assert FLAGS not in result.ever_live_registers


class TestLoops:
    def test_loop_carried_register_live_around_backedge(self):
        cfg, result = liveness_of(
            """
            start: ldi r1, 0
            loop:  addi r1, r1, 1
                   cmpi r1, 5
                   blt loop
                   halt
            """
        )
        loop = cfg.entry + 1
        assert 1 in result.live_at(loop)
        # Live-out of the branch includes r1 (the backedge reads it).
        assert 1 in result.live_out[cfg.entry + 3]

    def test_fixpoint_terminates_on_infinite_loop(self):
        cfg, result = liveness_of(
            """
            loop: addi r1, r1, 1
                  jmp loop
            """
        )
        assert 1 in result.ever_live_registers


class TestUnreachableCode:
    def test_unreachable_reads_do_not_pollute_summary(self):
        cfg, result = liveness_of(
            """
            start: ldi r1, 5
                   halt
            stray: addi r2, r9, 1
                   halt
            """
        )
        # r9 is only read by unreachable code; ever_live unions over
        # *reachable* points only.
        assert 9 not in result.ever_live_registers
        assert 9 in result.dead_registers()
