"""Unit tests for the campaign lint pass."""

import pytest

from repro.core.campaign import CampaignData
from repro.core.framework import create_target, setup_campaign
from repro.core.locations import LocationCell, LocationSpace
from repro.core.triggers import TriggerSpec
from repro.staticanalysis.lint import lint_campaign, lint_errors
from repro.util.errors import CampaignError

from tests.conftest import make_campaign


def rules(findings):
    return {f.rule for f in findings}


def lint_on_thor(campaign, reference_duration=None):
    target = create_target("thor-rd")
    target.read_campaign_data(campaign)
    return lint_campaign(
        campaign,
        target.location_space(),
        program=target.workload_program(),
        reference_duration=reference_duration,
    )


class TestPatternChecks:
    def test_zero_match_pattern_is_error(self):
        campaign = make_campaign(
            location_patterns=[
                "scan:internal/cpu.regfile.*",
                "scan:internal/cpu.bogus_unit.*",
            ]
        )
        findings = lint_on_thor(campaign)
        assert "zero-match-pattern" in rules(findings)
        assert any(
            f.severity == "error" and "bogus_unit" in f.message
            for f in findings
        )

    def test_read_only_pattern_is_error(self):
        space = LocationSpace(
            [
                LocationCell("scan:internal", "cpu.status", 8, read_only=True),
                LocationCell("scan:internal", "cpu.regfile.r1", 32),
            ]
        )
        campaign = make_campaign(
            location_patterns=["scan:internal/cpu.status"]
        )
        findings = lint_campaign(campaign, space)
        assert "read-only-pattern" in rules(findings)

    def test_clean_campaign_has_no_errors(self):
        findings = lint_on_thor(make_campaign())
        assert lint_errors(findings) == []


class TestTriggerChecks:
    def test_trigger_beyond_reference_duration(self):
        campaign = make_campaign(
            trigger=TriggerSpec(kind="time-fixed", time=5000)
        )
        findings = lint_on_thor(campaign, reference_duration=100)
        assert "injection-window" in rules(lint_errors(findings))

    def test_nonpositive_fixed_trigger(self):
        campaign = make_campaign(
            trigger=TriggerSpec(kind="time-fixed", time=0)
        )
        findings = lint_on_thor(campaign)
        assert "injection-window" in rules(lint_errors(findings))

    def test_clock_period_beyond_duration(self):
        campaign = make_campaign(
            trigger=TriggerSpec(kind="clock", period=10_000)
        )
        findings = lint_on_thor(campaign, reference_duration=100)
        assert "injection-window" in rules(lint_errors(findings))

    def test_timeout_too_tight_warns(self):
        campaign = make_campaign(timeout_cycles=50)
        findings = lint_on_thor(campaign, reference_duration=100)
        tight = [f for f in findings if f.rule == "timeout-too-tight"]
        assert tight and tight[0].severity == "warning"


class TestStaticLivenessChecks:
    def test_dead_register_warning(self):
        campaign = make_campaign(workload_name="vecsum")
        findings = lint_on_thor(campaign)
        dead = [f for f in findings if f.rule == "dead-register"]
        assert dead and all(f.severity == "warning" for f in dead)
        # vecsum never reads r9.
        assert any("r9" in f.message for f in dead)

    def test_only_dead_registers_is_error(self):
        campaign = make_campaign(
            workload_name="vecsum",
            location_patterns=["scan:internal/cpu.regfile.r9"],
        )
        findings = lint_on_thor(campaign)
        assert "no-live-location" in rules(lint_errors(findings))

    def test_dead_store_info(self):
        findings = lint_on_thor(make_campaign(workload_name="vecsum"))
        stores = [f for f in findings if f.rule == "dead-store"]
        assert stores and stores[0].severity == "info"

    def test_no_static_checks_without_program(self):
        target = create_target("thor-rd")
        campaign = make_campaign()
        target.read_campaign_data(campaign)
        findings = lint_campaign(campaign, target.location_space())
        assert "dead-register" not in rules(findings)


class TestSetupCampaign:
    def test_strict_setup_rejects_broken_campaign(self):
        # One good pattern so binding succeeds; the zero-match pattern
        # must still be rejected by the lint gate.
        campaign = make_campaign(
            location_patterns=[
                "scan:internal/cpu.regfile.*",
                "scan:internal/cpu.nothing.*",
            ]
        )
        with pytest.raises(CampaignError):
            setup_campaign(create_target("thor-rd"), campaign)

    def test_non_strict_setup_returns_findings(self):
        campaign = make_campaign(
            workload_name="vecsum",
            location_patterns=["scan:internal/cpu.regfile.r9"],
        )
        findings = setup_campaign(
            create_target("thor-rd"), campaign, strict=False
        )
        assert lint_errors(findings)

    def test_clean_campaign_passes_strict_setup(self):
        findings = setup_campaign(create_target("thor-rd"), make_campaign())
        assert lint_errors(findings) == []

    def test_finding_str_format(self):
        campaign = make_campaign(
            location_patterns=[
                "scan:internal/cpu.regfile.*",
                "scan:internal/cpu.nothing.*",
            ]
        )
        findings = setup_campaign(
            create_target("thor-rd"), campaign, strict=False
        )
        text = str(lint_errors(findings)[0])
        assert text.startswith("[error] zero-match-pattern:")


class TestConditionalReachabilityChecks:
    def test_unreachable_location_warning(self):
        from repro.thor.assembler import assemble

        program = assemble(
            """
            start: ldi r1, 0
                   cmpi r1, 0
                   beq skip
                   ldi r2, 1
            skip:  halt
            """
        )
        dead = program.entry + 3  # behind the always-taken beq
        space = LocationSpace(
            [
                LocationCell("memory:code", f"word.{dead:#06x}", 32),
                LocationCell("scan:internal", "cpu.regfile.r1", 32),
            ]
        )
        campaign = make_campaign(
            location_patterns=[
                f"memory:code/word.{dead:#06x}",
                "scan:internal/cpu.regfile.r1",
            ]
        )
        findings = lint_campaign(campaign, space, program=program)
        hits = [f for f in findings if f.rule == "unreachable-location"]
        assert hits and hits[0].severity == "warning"
        assert f"{dead:#06x}" in hits[0].message
        # The plain-CFG rule must NOT fire: only folding proves it dead.
        assert "unreachable-code" not in rules(findings)

    def test_no_unreachable_location_without_folding(self):
        findings = lint_on_thor(make_campaign(workload_name="vecsum"))
        assert "unreachable-location" not in rules(findings)

    def test_constant_dead_write_info(self):
        findings = lint_on_thor(make_campaign(workload_name="vecsum"))
        hits = [f for f in findings if f.rule == "constant-dead-write"]
        assert hits and hits[0].severity == "info"
        # The message names the register, address and constant value.
        assert "@" in hits[0].message and "=" in hits[0].message


class TestPartitionCheck:
    @staticmethod
    def _stats(n_experiments=40, n_classes=36, n_singletons=33):
        from repro.staticanalysis.equivalence import PartitionStats

        n_derived = n_experiments - n_classes
        return PartitionStats(
            n_experiments=n_experiments,
            n_classes=n_classes,
            n_executed=n_classes,
            n_derived=n_derived,
            n_singletons=n_singletons,
            n_region_classes=2,
            n_stop_classes=1,
        )

    def test_singleton_heavy_partition_warns(self):
        campaign = make_campaign()
        target = create_target("thor-rd")
        target.read_campaign_data(campaign)
        findings = lint_campaign(
            campaign,
            target.location_space(),
            partition_stats=self._stats(),
        )
        hits = [f for f in findings if f.rule == "class-singleton-heavy"]
        assert hits and hits[0].severity == "warning"

    def test_collapsing_partition_is_clean(self):
        campaign = make_campaign()
        target = create_target("thor-rd")
        target.read_campaign_data(campaign)
        findings = lint_campaign(
            campaign,
            target.location_space(),
            partition_stats=self._stats(n_classes=10, n_singletons=2),
        )
        assert "class-singleton-heavy" not in rules(findings)

    def test_small_campaigns_exempt(self):
        campaign = make_campaign()
        target = create_target("thor-rd")
        target.read_campaign_data(campaign)
        findings = lint_campaign(
            campaign,
            target.location_space(),
            partition_stats=self._stats(
                n_experiments=10, n_classes=10, n_singletons=10
            ),
        )
        assert "class-singleton-heavy" not in rules(findings)

    def test_no_partition_stats_no_check(self):
        findings = lint_on_thor(make_campaign())
        assert "class-singleton-heavy" not in rules(findings)
