"""Unit tests for the campaign lint pass."""

import pytest

from repro.core.campaign import CampaignData
from repro.core.framework import create_target, setup_campaign
from repro.core.locations import LocationCell, LocationSpace
from repro.core.triggers import TriggerSpec
from repro.staticanalysis.lint import lint_campaign, lint_errors
from repro.util.errors import CampaignError

from tests.conftest import make_campaign


def rules(findings):
    return {f.rule for f in findings}


def lint_on_thor(campaign, reference_duration=None):
    target = create_target("thor-rd")
    target.read_campaign_data(campaign)
    return lint_campaign(
        campaign,
        target.location_space(),
        program=target.workload_program(),
        reference_duration=reference_duration,
    )


class TestPatternChecks:
    def test_zero_match_pattern_is_error(self):
        campaign = make_campaign(
            location_patterns=[
                "scan:internal/cpu.regfile.*",
                "scan:internal/cpu.bogus_unit.*",
            ]
        )
        findings = lint_on_thor(campaign)
        assert "zero-match-pattern" in rules(findings)
        assert any(
            f.severity == "error" and "bogus_unit" in f.message
            for f in findings
        )

    def test_read_only_pattern_is_error(self):
        space = LocationSpace(
            [
                LocationCell("scan:internal", "cpu.status", 8, read_only=True),
                LocationCell("scan:internal", "cpu.regfile.r1", 32),
            ]
        )
        campaign = make_campaign(
            location_patterns=["scan:internal/cpu.status"]
        )
        findings = lint_campaign(campaign, space)
        assert "read-only-pattern" in rules(findings)

    def test_clean_campaign_has_no_errors(self):
        findings = lint_on_thor(make_campaign())
        assert lint_errors(findings) == []


class TestTriggerChecks:
    def test_trigger_beyond_reference_duration(self):
        campaign = make_campaign(
            trigger=TriggerSpec(kind="time-fixed", time=5000)
        )
        findings = lint_on_thor(campaign, reference_duration=100)
        assert "injection-window" in rules(lint_errors(findings))

    def test_nonpositive_fixed_trigger(self):
        campaign = make_campaign(
            trigger=TriggerSpec(kind="time-fixed", time=0)
        )
        findings = lint_on_thor(campaign)
        assert "injection-window" in rules(lint_errors(findings))

    def test_clock_period_beyond_duration(self):
        campaign = make_campaign(
            trigger=TriggerSpec(kind="clock", period=10_000)
        )
        findings = lint_on_thor(campaign, reference_duration=100)
        assert "injection-window" in rules(lint_errors(findings))

    def test_timeout_too_tight_warns(self):
        campaign = make_campaign(timeout_cycles=50)
        findings = lint_on_thor(campaign, reference_duration=100)
        tight = [f for f in findings if f.rule == "timeout-too-tight"]
        assert tight and tight[0].severity == "warning"


class TestStaticLivenessChecks:
    def test_dead_register_warning(self):
        campaign = make_campaign(workload_name="vecsum")
        findings = lint_on_thor(campaign)
        dead = [f for f in findings if f.rule == "dead-register"]
        assert dead and all(f.severity == "warning" for f in dead)
        # vecsum never reads r9.
        assert any("r9" in f.message for f in dead)

    def test_only_dead_registers_is_error(self):
        campaign = make_campaign(
            workload_name="vecsum",
            location_patterns=["scan:internal/cpu.regfile.r9"],
        )
        findings = lint_on_thor(campaign)
        assert "no-live-location" in rules(lint_errors(findings))

    def test_dead_store_info(self):
        findings = lint_on_thor(make_campaign(workload_name="vecsum"))
        stores = [f for f in findings if f.rule == "dead-store"]
        assert stores and stores[0].severity == "info"

    def test_no_static_checks_without_program(self):
        target = create_target("thor-rd")
        campaign = make_campaign()
        target.read_campaign_data(campaign)
        findings = lint_campaign(campaign, target.location_space())
        assert "dead-register" not in rules(findings)


class TestSetupCampaign:
    def test_strict_setup_rejects_broken_campaign(self):
        # One good pattern so binding succeeds; the zero-match pattern
        # must still be rejected by the lint gate.
        campaign = make_campaign(
            location_patterns=[
                "scan:internal/cpu.regfile.*",
                "scan:internal/cpu.nothing.*",
            ]
        )
        with pytest.raises(CampaignError):
            setup_campaign(create_target("thor-rd"), campaign)

    def test_non_strict_setup_returns_findings(self):
        campaign = make_campaign(
            workload_name="vecsum",
            location_patterns=["scan:internal/cpu.regfile.r9"],
        )
        findings = setup_campaign(
            create_target("thor-rd"), campaign, strict=False
        )
        assert lint_errors(findings)

    def test_clean_campaign_passes_strict_setup(self):
        findings = setup_campaign(create_target("thor-rd"), make_campaign())
        assert lint_errors(findings) == []

    def test_finding_str_format(self):
        campaign = make_campaign(
            location_patterns=[
                "scan:internal/cpu.regfile.*",
                "scan:internal/cpu.nothing.*",
            ]
        )
        findings = setup_campaign(
            create_target("thor-rd"), campaign, strict=False
        )
        text = str(lint_errors(findings)[0])
        assert text.startswith("[error] zero-match-pattern:")
