"""Unit tests for sparse conditional constant propagation."""

from repro.staticanalysis.cfg import build_cfg
from repro.staticanalysis.constprop import NAC, propagate_constants
from repro.staticanalysis.defuse import FLAGS
from repro.thor.assembler import assemble


def _solve(text):
    program = assemble(text)
    cfg = build_cfg(program)
    return program, propagate_constants(cfg)


class TestConstantLattice:
    def test_straightline_arithmetic_folds(self):
        program, result = _solve(
            """
            start: ldi r1, 5
                   addi r2, r1, 3
                   muli r3, r2, 2
                   halt
            """
        )
        halt = program.entry + 3
        assert result.constant_at(halt, 1) == 5
        assert result.constant_at(halt, 2) == 8
        assert result.constant_at(halt, 3) == 16

    def test_memory_load_is_not_a_constant(self):
        program, result = _solve(
            """
            start: ldi r2, 0x80
                   ld r1, [r2+0]
                   halt
            """
        )
        halt = program.entry + 2
        assert result.constant_at(halt, 2) == 0x80
        assert result.constant_at(halt, 1) is None

    def test_never_written_register_is_unknown(self):
        program, result = _solve(
            """
            start: ldi r1, 1
                   halt
            """
        )
        assert result.constant_at(program.entry + 1, 7) is None

    def test_flags_nibble_tracked_as_item(self):
        program, result = _solve(
            """
            start: ldi r1, 0
                   cmpi r1, 0
                   halt
            """
        )
        halt = program.entry + 2
        # cmp 0, 0: result 0 -> Z set; subtraction of 0 borrows nothing
        # on this ALU, so C is set too (carry-out of a - 0).
        nibble = result.env_in[halt][FLAGS]
        assert isinstance(nibble, int)
        assert nibble & 1  # Z

    def test_ranges_summarise_constant_observations(self):
        program, result = _solve(
            """
            start: ldi r1, 3
                   addi r1, r1, 4
                   halt
            """
        )
        lo, hi = result.ranges[1]
        assert lo == 3 and hi == 7

    def test_unknown_write_poisons_range(self):
        program, result = _solve(
            """
            start: ldi r2, 0x80
                   ld r1, [r2+0]
                   addi r1, r1, 1
                   halt
            """
        )
        assert 1 not in result.ranges


class TestBranchFolding:
    def test_constant_branch_folds_taken(self):
        program, result = _solve(
            """
            start: ldi r1, 0
                   cmpi r1, 0
                   beq skip
                   ldi r2, 1
            skip:  halt
            """
        )
        branch = program.entry + 2
        dead_write = program.entry + 3
        assert result.folded_branches[branch] is True
        assert dead_write not in result.executable
        assert dead_write in result.refined_unreachable()
        # The plain CFG still reaches it — only folding proves it dead.
        assert dead_write in result.cfg.reachable

    def test_constant_branch_folds_fallthrough(self):
        program, result = _solve(
            """
            start: ldi r1, 1
                   cmpi r1, 0
                   beq skip
                   ldi r2, 1
            skip:  halt
            """
        )
        branch = program.entry + 2
        fallthrough = program.entry + 3
        assert result.folded_branches[branch] is False
        assert fallthrough in result.executable

    def test_unknown_condition_keeps_both_edges(self):
        program, result = _solve(
            """
            start: ldi r3, 0x80
                   ld r1, [r3+0]
                   cmpi r1, 0
                   beq skip
                   ldi r2, 1
            skip:  halt
            """
        )
        branch = program.entry + 3
        assert branch not in result.folded_branches
        assert program.entry + 4 in result.executable
        assert result.refined_unreachable() == []

    def test_conflicting_constants_meet_to_nac_at_join(self):
        program, result = _solve(
            """
            start: ldi r3, 0x80
                   ld r1, [r3+0]
                   cmpi r1, 0
                   beq other
                   ldi r2, 1
                   jmp join
            other: ldi r2, 2
            join:  halt
            """
        )
        join = program.symbols["join"]
        # r2 is 1 on one path, 2 on the other: not a constant at the join.
        assert result.constant_at(join, 2) is None
        assert result.env_in[join][2] is NAC

    def test_executable_is_subset_of_reachable(self):
        _, result = _solve(
            """
            start: ldi r1, 0
                   cmpi r1, 1
                   beq skip
                   addi r1, r1, 1
            skip:  halt
            """
        )
        assert set(result.executable) <= set(result.cfg.reachable)


class TestConstantDeadWrites:
    def _dead(self, program, result):
        from repro.staticanalysis.defuse import ReachingDefinitions

        cfg = result.cfg
        rd = ReachingDefinitions(cfg.defuse, cfg.successors, cfg.entry)
        return rd.dead_definitions(reachable=cfg.reachable)

    def test_constant_dead_store_reported_with_value(self):
        program, result = _solve(
            """
            start: ldi r9, 7
                   ldi r1, 1
                   addi r2, r1, 1
                   halt
            """
        )
        dead = self._dead(program, result)
        rows = result.constant_dead_writes(dead)
        assert (program.entry, 9, 7) in rows

    def test_unknown_valued_dead_store_not_reported(self):
        program, result = _solve(
            """
            start: ldi r3, 0x80
                   ld r9, [r3+0]
                   halt
            """
        )
        dead = self._dead(program, result)
        assert (program.entry + 1, 9) in dead
        rows = result.constant_dead_writes(dead)
        assert all(item != 9 for _, item, _ in rows)

    def test_folded_away_dead_store_not_reported(self):
        program, result = _solve(
            """
            start: ldi r1, 0
                   cmpi r1, 0
                   beq skip
                   ldi r9, 7
            skip:  halt
            """
        )
        dead_write = program.entry + 3
        dead = self._dead(program, result)
        rows = result.constant_dead_writes(dead)
        assert all(address != dead_write for address, _, _ in rows)
