"""Unit tests for CFG construction over assembled THOR-lite programs."""

from repro.staticanalysis.cfg import build_cfg
from repro.thor.assembler import assemble


def cfg_of(text):
    return build_cfg(assemble(text))


class TestStraightLine:
    def test_single_block(self):
        cfg = cfg_of(
            """
            start: ldi r1, 1
                   addi r1, r1, 1
                   halt
            """
        )
        assert len(cfg.blocks) == 1
        (block,) = cfg.blocks.values()
        assert block.start == cfg.entry
        assert len(block) == 3
        assert block.successors == []

    def test_halt_has_no_successors(self):
        cfg = cfg_of("start: halt")
        assert cfg.successors[cfg.entry] == ()

    def test_trap_has_no_successors(self):
        cfg = cfg_of(
            """
            start: trap 3
                   nop
            """
        )
        assert cfg.successors[cfg.entry] == ()
        # The word after a trap is only reachable via an explicit edge.
        assert cfg.entry + 1 not in cfg.reachable


class TestBranchesAndJumps:
    def test_conditional_branch_has_two_successors(self):
        cfg = cfg_of(
            """
            start: cmpi r1, 0
                   beq done
                   addi r1, r1, 1
            done:  halt
            """
        )
        branch = cfg.entry + 1
        assert set(cfg.successors[branch]) == {cfg.entry + 2, cfg.entry + 3}

    def test_unconditional_jump_single_successor(self):
        cfg = cfg_of(
            """
            start: jmp done
                   ldi r1, 1
            done:  halt
            """
        )
        assert cfg.successors[cfg.entry] == (cfg.entry + 2,)
        assert cfg.entry + 1 not in cfg.reachable

    def test_loop_block_structure(self):
        cfg = cfg_of(
            """
            start: ldi r1, 0
            loop:  addi r1, r1, 1
                   cmpi r1, 5
                   blt loop
                   halt
            """
        )
        loop = cfg.entry + 1
        assert loop in cfg.blocks
        back = cfg.blocks[loop]
        assert loop in cfg.blocks[back.successors[0]].addresses or (
            loop in back.successors
        )


class TestCallsAndReturns:
    TEXT = """
    start: call func
           ldi r2, 2
           halt
    func:  ldi r1, 1
           ret
    """

    def test_call_edges(self):
        cfg = cfg_of(self.TEXT)
        call = cfg.entry
        func = cfg.entry + 3
        assert set(cfg.successors[call]) == {call + 1, func}

    def test_ret_targets_call_return_sites(self):
        cfg = cfg_of(self.TEXT)
        ret = cfg.entry + 4
        assert cfg.successors[ret] == (cfg.entry + 1,)
        assert not cfg.has_unresolved_indirect

    def test_ret_with_tampered_lr_is_unresolved(self):
        cfg = cfg_of(
            """
            start: call func
                   halt
            func:  ldi r15, 0x105
                   ret
            nowhere: halt
            """
        )
        ret = cfg.entry + 3
        # A non-CALL write of the link register makes RET unconstrained:
        # every code address is a potential successor.
        assert cfg.has_unresolved_indirect
        assert set(cfg.successors[ret]) == set(cfg.defuse)

    def test_jr_is_unresolved_indirect(self):
        cfg = cfg_of(
            """
            start: ldi r1, 0x102
                   jr r1
                   halt
            """
        )
        assert cfg.has_unresolved_indirect
        assert set(cfg.successors[cfg.entry + 1]) == set(cfg.defuse)
        # Conservatively everything is reachable through the indirect.
        assert cfg.reachable == frozenset(cfg.defuse)


class TestReachability:
    def test_unreachable_code_detected(self):
        cfg = cfg_of(
            """
            start: ldi r1, 1
                   halt
            stray: addi r1, r1, 1
                   halt
            """
        )
        assert cfg.unreachable_addresses() == [cfg.entry + 2, cfg.entry + 3]
        blocks = cfg.unreachable_blocks()
        assert len(blocks) == 1
        assert blocks[0].start == cfg.entry + 2

    def test_fully_reachable_program(self):
        cfg = cfg_of(
            """
            start: cmpi r1, 0
                   beq done
                   addi r1, r1, 1
            done:  halt
            """
        )
        assert cfg.unreachable_blocks() == []
        assert cfg.reachable == frozenset(cfg.defuse)

    def test_block_of(self):
        cfg = cfg_of(
            """
            start: ldi r1, 1
                   halt
            """
        )
        block = cfg.block_of(cfg.entry + 1)
        assert block is not None and cfg.entry + 1 in block.addresses
        assert cfg.block_of(0xDEAD) is None


class TestRender:
    def test_render_mentions_blocks_and_entry(self):
        cfg = cfg_of(
            """
            start: ldi r1, 1
                   halt
            stray: halt
            """
        )
        text = cfg.render()
        assert f"entry: {cfg.entry:#06x}" in text
        assert "[unreachable]" in text
        assert "ldi r1, 1" in text
