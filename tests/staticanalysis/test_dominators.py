"""Unit tests for the dominator tree and natural-loop detection."""

from repro.staticanalysis.cfg import build_cfg
from repro.staticanalysis.dominators import (
    build_dominator_tree,
    loop_blocks,
    natural_loops,
)
from repro.thor.assembler import assemble

#: A diamond (if/else) followed by a single-block counting loop.
DIAMOND_AND_LOOP = """
start: ldi r1, 0
       cmpi r1, 5
       blt then
       ldi r2, 1
       jmp join
then:  ldi r2, 2
join:  ldi r3, 0
loop:  addi r3, r3, 1
       cmpi r3, 3
       blt loop
       halt
"""


def _build(text):
    program = assemble(text)
    cfg = build_cfg(program)
    tree = build_dominator_tree(cfg)
    assert tree is not None
    return program, cfg, tree


def _block_of(cfg, address):
    """Start address of the basic block containing ``address``."""
    for start, block in cfg.blocks.items():
        if address in block.addresses:
            return start
    raise AssertionError(f"no block contains {address:#06x}")


class TestDominatorTree:
    def test_entry_dominates_every_reachable_block(self):
        program, cfg, tree = _build(DIAMOND_AND_LOOP)
        assert tree.entry_block == program.entry
        for block in tree.idom:
            assert tree.dominates(tree.entry_block, block)

    def test_dominance_is_reflexive(self):
        _, _, tree = _build(DIAMOND_AND_LOOP)
        for block in tree.idom:
            assert tree.dominates(block, block)

    def test_diamond_arms_do_not_dominate_join(self):
        program, cfg, tree = _build(DIAMOND_AND_LOOP)
        then_block = _block_of(cfg, program.symbols["then"])
        else_block = _block_of(cfg, program.entry + 3)  # ldi r2, 1
        join_block = _block_of(cfg, program.symbols["join"])
        assert not tree.dominates(then_block, join_block)
        assert not tree.dominates(else_block, join_block)
        # The join's immediate dominator is the branching entry block.
        assert tree.idom[join_block] == _block_of(cfg, program.entry)

    def test_dominators_of_lists_entry_first(self):
        program, cfg, tree = _build(DIAMOND_AND_LOOP)
        join_block = _block_of(cfg, program.symbols["join"])
        chain = tree.dominators_of(join_block)
        assert chain[0] == tree.entry_block
        assert chain[-1] == join_block

    def test_depth_counts_tree_edges(self):
        program, cfg, tree = _build(DIAMOND_AND_LOOP)
        assert tree.depth(tree.entry_block) == 0
        join_block = _block_of(cfg, program.symbols["join"])
        assert tree.depth(join_block) == tree.depth(tree.entry_block) + 1

    def test_unknown_blocks_never_dominate(self):
        _, _, tree = _build(DIAMOND_AND_LOOP)
        assert not tree.dominates(0xDEAD, tree.entry_block)
        assert not tree.dominates(tree.entry_block, 0xDEAD)
        assert tree.dominators_of(0xDEAD) == []

    def test_straightline_program_is_a_chain(self):
        program, cfg, tree = _build(
            """
            start: ldi r1, 1
                   halt
            """
        )
        # One block, dominated only by itself.
        assert list(tree.idom) == [program.entry]
        assert tree.idom[program.entry] == program.entry


class TestNaturalLoops:
    def test_single_block_loop_found(self):
        program, cfg, tree = _build(DIAMOND_AND_LOOP)
        loops = natural_loops(tree)
        assert len(loops) == 1
        loop = loops[0]
        loop_start = _block_of(cfg, program.symbols["loop"])
        assert loop.header == loop_start
        assert loop.body == frozenset({loop_start})
        assert loop.back_edges == ((loop_start, loop_start),)
        assert loop.contains_block(loop_start)
        assert not loop.contains_block(tree.entry_block)

    def test_multi_block_loop_body(self):
        program, cfg, tree = _build(
            """
            start: ldi r1, 0
            head:  cmpi r1, 4
                   bge done
                   addi r1, r1, 1
                   jmp head
            done:  halt
            """
        )
        loops = natural_loops(tree)
        assert len(loops) == 1
        loop = loops[0]
        head = _block_of(cfg, program.symbols["head"])
        body_block = _block_of(cfg, program.symbols["head"] + 2)
        assert loop.header == head
        assert {head, body_block} <= loop.body
        assert _block_of(cfg, program.symbols["done"]) not in loop.body

    def test_loop_free_program_has_no_loops(self):
        _, _, tree = _build(
            """
            start: ldi r1, 1
                   cmpi r1, 0
                   beq out
                   ldi r2, 2
            out:   halt
            """
        )
        assert natural_loops(tree) == []
        assert loop_blocks([]) == frozenset()

    def test_loop_blocks_union(self):
        program, cfg, tree = _build(DIAMOND_AND_LOOP)
        loops = natural_loops(tree)
        assert loop_blocks(loops) == loops[0].body
