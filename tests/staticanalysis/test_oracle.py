"""Unit tests for the static pre-injection liveness oracle."""

from repro.core.locations import FaultLocation
from repro.staticanalysis.oracle import StaticPreInjectionAnalysis
from repro.thor.assembler import assemble

PROGRAM_TEXT = """
start: ldi r1, 5
       addi r2, r1, 1
       ldi r5, 0x300
       st r2, [r5+0]
       halt
stray: addi r3, r4, 1
       halt
"""

LOOP_TEXT = """
start: ldi r1, 0x300
       ld r2, [r1+0]
       cmpi r2, 0
       beq done
       addi r2, r2, 1
done:  halt
"""


def reg_loc(n, bit=0):
    return FaultLocation("scan:internal", f"cpu.regfile.r{n}", bit)


def code_loc(address, bit=0):
    return FaultLocation("memory:code", f"word.{address:#06x}", bit)


def data_loc(address, bit=0):
    return FaultLocation("memory:data", f"word.{address:#06x}", bit)


class TestRegisterOracle:
    def test_live_register(self):
        oracle = StaticPreInjectionAnalysis(assemble(PROGRAM_TEXT))
        assert oracle.is_live(reg_loc(1), 10)
        assert oracle.is_live(reg_loc(2), 10)  # read by the store
        assert oracle.is_live(reg_loc(5), 10)  # store base address

    def test_dead_register(self):
        oracle = StaticPreInjectionAnalysis(assemble(PROGRAM_TEXT))
        # r4 is only read by unreachable code; r9 never appears.
        assert not oracle.is_live(reg_loc(4), 10)
        assert not oracle.is_live(reg_loc(9), 10)
        assert {4, 9} <= set(oracle.dead_registers)

    def test_duration_bounds_liveness(self):
        oracle = StaticPreInjectionAnalysis(
            assemble(PROGRAM_TEXT), duration=100
        )
        assert oracle.is_live(reg_loc(1), 100)
        assert not oracle.is_live(reg_loc(1), 101)

    def test_unbounded_without_duration(self):
        oracle = StaticPreInjectionAnalysis(assemble(PROGRAM_TEXT))
        assert oracle.duration is None
        assert oracle.is_live(reg_loc(1), 10**9)


class TestSpecialCells:
    def test_pc_and_ir_live_during_run(self):
        oracle = StaticPreInjectionAnalysis(
            assemble(PROGRAM_TEXT), duration=50
        )
        pc = FaultLocation("scan:internal", "cpu.pc", 0)
        ir = FaultLocation("scan:internal", "cpu.pipeline.ir", 0)
        assert oracle.is_live(pc, 50) and oracle.is_live(ir, 50)
        assert not oracle.is_live(pc, 51) and not oracle.is_live(ir, 51)

    def test_psr_live_iff_flags_read(self):
        psr = FaultLocation("scan:internal", "cpu.psr", 0)
        with_branch = StaticPreInjectionAnalysis(assemble(LOOP_TEXT))
        without = StaticPreInjectionAnalysis(assemble(PROGRAM_TEXT))
        assert with_branch.is_live(psr, 5)
        assert not without.is_live(psr, 5)

    def test_unknown_cells_conservatively_live(self):
        oracle = StaticPreInjectionAnalysis(
            assemble(PROGRAM_TEXT), duration=10
        )
        cache = FaultLocation("scan:internal", "dcache.line3.word2", 1)
        mar = FaultLocation("scan:internal", "cpu.pipeline.mar", 0)
        assert oracle.is_live(cache, 5)
        # Unknown cells stay live even past the duration: no claim made.
        assert oracle.is_live(mar, 999)


class TestMemoryOracle:
    def test_reachable_code_word_live(self):
        program = assemble(PROGRAM_TEXT)
        oracle = StaticPreInjectionAnalysis(program)
        assert oracle.is_live(code_loc(program.entry), 10)

    def test_unreachable_code_word_dead(self):
        program = assemble(PROGRAM_TEXT)
        oracle = StaticPreInjectionAnalysis(program)
        stray = program.symbols["stray"]
        assert stray in oracle.unreachable_code_addresses()
        assert not oracle.is_live(code_loc(stray), 10)

    def test_data_live_only_when_program_loads(self):
        loads = StaticPreInjectionAnalysis(assemble(LOOP_TEXT))
        stores_only = StaticPreInjectionAnalysis(assemble(PROGRAM_TEXT))
        assert loads.is_live(data_loc(0x300), 10)
        assert not stores_only.is_live(data_loc(0x300), 10)


class TestLiveFraction:
    def test_fraction_bounds_and_sampling(self):
        oracle = StaticPreInjectionAnalysis(
            assemble(PROGRAM_TEXT), duration=100
        )
        locations = [reg_loc(n) for n in range(16)]
        times = list(range(1, 101))
        full = oracle.live_fraction(locations, times)
        sampled = oracle.live_fraction(locations, times, max_samples=64)
        assert 0.0 < full < 1.0
        assert 0.0 <= sampled <= 1.0
        # Deterministic: the same sample gives the same answer.
        assert sampled == oracle.live_fraction(
            locations, times, max_samples=64
        )

    def test_empty_inputs(self):
        oracle = StaticPreInjectionAnalysis(assemble(PROGRAM_TEXT))
        assert oracle.live_fraction([], [1]) == 0.0
