"""Tests for the canned database queries and auto-analysis generation."""

import pytest

from repro.db.autoanalysis import generate_analysis_script, run_auto_analysis
from repro.db.queries import (
    campaign_wall_time,
    detection_breakdown,
    injection_locations,
    rerun_tree,
    termination_breakdown,
)
from tests.conftest import make_campaign


@pytest.fixture
def populated(db, thor_target):
    campaign = make_campaign(
        n_experiments=25,
        location_patterns=[
            "scan:internal/cpu.regfile.*",
            "scan:internal/icache.*",
        ],
        seed=9,
    )
    thor_target.run_campaign(campaign, sink=db)
    return campaign


class TestBreakdowns:
    def test_termination_breakdown_sums_to_total(self, db, populated):
        counts = termination_breakdown(db, populated.campaign_name)
        assert sum(counts.values()) == 25

    def test_detection_breakdown_subset_of_traps(self, db, populated):
        terminations = termination_breakdown(db, populated.campaign_name)
        detections = detection_breakdown(db, populated.campaign_name)
        assert sum(detections.values()) == terminations.get("trap", 0)

    def test_injection_locations_counts(self, db, populated):
        rows = injection_locations(db, populated.campaign_name)
        assert sum(count for _, count in rows) == 25
        # Sorted by frequency, descending.
        counts = [count for _, count in rows]
        assert counts == sorted(counts, reverse=True)

    def test_wall_time_positive(self, db, populated):
        assert campaign_wall_time(db, populated.campaign_name) > 0


class TestRerunTree:
    def test_empty_without_reruns(self, db, populated):
        assert rerun_tree(db, populated.campaign_name) == {}

    def test_tracks_rerun(self, db, thor_target, populated):
        thor_target.rerun_experiment(populated, 2, sink=db)
        tree = rerun_tree(db, populated.campaign_name)
        parent = f"{populated.campaign_name}-exp00002"
        assert tree == {parent: [f"{parent}-rerun"]}


class TestAutoAnalysis:
    def test_report_contains_taxonomy(self, db, populated):
        report = run_auto_analysis(db, populated.campaign_name)
        for label in ("effective", "detected", "latent", "overwritten",
                      "detection coverage"):
            assert label in report

    def test_generated_script_compiles(self, db, populated):
        script = generate_analysis_script("some.db", populated.campaign_name)
        compile(script, "<generated>", "exec")
        assert populated.campaign_name in script

    def test_generated_script_runs_against_file_db(self, tmp_path, thor_target):
        import subprocess
        import sys

        from repro.db import GoofiDatabase

        path = str(tmp_path / "auto.db")
        campaign = make_campaign(n_experiments=5)
        with GoofiDatabase(path) as db:
            thor_target.run_campaign(campaign, sink=db)
        script_path = tmp_path / "analyse.py"
        script_path.write_text(
            generate_analysis_script(path, campaign.campaign_name)
        )
        proc = subprocess.run(
            [sys.executable, str(script_path)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "detection coverage" in proc.stdout
