"""Unit tests for the state-vector codec."""

import pytest

from repro.db.statevector import decode_state_payload, encode_state_payload
from repro.util.errors import DatabaseError


class TestRoundTrip:
    def test_final_only(self):
        final = {"scan:internal/cpu.pc": 0x123, "memory:data/word.0x0200": 7}
        payload = decode_state_payload(encode_state_payload(final))
        assert payload["final"] == final
        assert payload["detail"] == []

    def test_with_detail_states(self):
        final = {"a": 1}
        detail = [{"a": 0}, {"a": 1}]
        payload = decode_state_payload(encode_state_payload(final, detail))
        assert payload["detail"] == detail

    def test_empty_vector(self):
        payload = decode_state_payload(encode_state_payload({}))
        assert payload["final"] == {}

    def test_compression_effective_on_detail(self):
        final = {"cell": 1}
        detail = [{"cell": i % 3} for i in range(500)]
        blob = encode_state_payload(final, detail)
        import json

        raw = len(json.dumps(detail).encode())
        assert len(blob) < raw / 2

    def test_deterministic(self):
        final = {"b": 2, "a": 1}
        assert encode_state_payload(final) == encode_state_payload(
            {"a": 1, "b": 2}
        )


class TestErrors:
    def test_bad_magic_rejected(self):
        with pytest.raises(DatabaseError):
            decode_state_payload(b"XXXXcorrupt")

    def test_incomplete_payload_rejected(self):
        import json
        import zlib

        blob = b"GSV1" + zlib.compress(json.dumps({"final": {}}).encode())
        with pytest.raises(DatabaseError):
            decode_state_payload(blob)
