"""Edge-case tests for the database layer."""

import sqlite3

import pytest

from repro.db import GoofiDatabase
from repro.db.schema import SCHEMA_VERSION
from repro.util.errors import DatabaseError


class TestSchemaVersioning:
    def test_fresh_db_stamps_version(self, tmp_path):
        path = str(tmp_path / "v.db")
        with GoofiDatabase(path):
            pass
        conn = sqlite3.connect(path)
        row = conn.execute("SELECT version FROM SchemaInfo").fetchone()
        conn.close()
        assert row[0] == SCHEMA_VERSION

    def test_reopening_same_version_ok(self, tmp_path):
        path = str(tmp_path / "v.db")
        with GoofiDatabase(path):
            pass
        with GoofiDatabase(path):
            pass

    def test_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "v.db")
        with GoofiDatabase(path):
            pass
        conn = sqlite3.connect(path)
        conn.execute("UPDATE SchemaInfo SET version = 999")
        conn.commit()
        conn.close()
        with pytest.raises(DatabaseError):
            GoofiDatabase(path)


class TestBlobIntegrity:
    def test_corrupted_state_vector_surfaces_as_database_error(self, db):
        from tests.conftest import make_campaign
        from tests.db.test_database import make_reference, make_result

        campaign = make_campaign()
        db.log_reference(campaign, make_reference())
        db.log_experiment(campaign, make_result(0))
        db._conn.execute(
            "UPDATE LoggedSystemState SET stateVector = X'DEADBEEF' "
            "WHERE isReference = 0"
        )
        db._conn.commit()
        with pytest.raises(DatabaseError):
            db.load_experiments(campaign.campaign_name)

    def test_upsert_overwrites_experiment(self, db):
        from tests.conftest import make_campaign
        from tests.db.test_database import make_reference, make_result

        campaign = make_campaign()
        db.log_reference(campaign, make_reference())
        db.log_experiment(campaign, make_result(0, outputs={"total": 1}))
        db.log_experiment(campaign, make_result(0, outputs={"total": 2}))
        assert db.count_experiments(campaign.campaign_name) == 1
        assert db.load_experiments(campaign.campaign_name)[0].outputs == {
            "total": 2
        }


class TestCompletedIndicesEdges:
    def test_empty_campaign(self, db):
        assert db.completed_indices("nothing") == []

    def test_out_of_order_logging(self, db):
        from tests.conftest import make_campaign
        from tests.db.test_database import make_reference, make_result

        campaign = make_campaign()
        db.log_reference(campaign, make_reference())
        for index in (4, 0, 2):
            db.log_experiment(campaign, make_result(index))
        assert db.completed_indices(campaign.campaign_name) == [0, 2, 4]


class TestSchemaMigration:
    @staticmethod
    def _downgrade_to_v2(path):
        """Rewrite a fresh DB into v2 shape: no derivedFrom column."""
        conn = sqlite3.connect(path)
        columns = [
            row[1]
            for row in conn.execute(
                "PRAGMA table_info(LoggedSystemState)"
            )
        ]
        assert "derivedFrom" in columns
        if sqlite3.sqlite_version_info >= (3, 35, 0):
            conn.execute(
                "ALTER TABLE LoggedSystemState DROP COLUMN derivedFrom"
            )
        else:  # pragma: no cover - old sqlite fallback
            keep = ", ".join(c for c in columns if c != "derivedFrom")
            conn.executescript(
                "CREATE TABLE _old AS SELECT {0} FROM LoggedSystemState;"
                "DROP TABLE LoggedSystemState;"
                "ALTER TABLE _old RENAME TO LoggedSystemState;".format(keep)
            )
        conn.execute("UPDATE SchemaInfo SET version = 2")
        conn.commit()
        conn.close()

    def test_v2_database_migrates_in_place(self, tmp_path):
        path = str(tmp_path / "v2.db")
        with GoofiDatabase(path):
            pass
        self._downgrade_to_v2(path)
        with GoofiDatabase(path):
            pass
        conn = sqlite3.connect(path)
        version = conn.execute(
            "SELECT version FROM SchemaInfo"
        ).fetchone()[0]
        columns = [
            row[1]
            for row in conn.execute(
                "PRAGMA table_info(LoggedSystemState)"
            )
        ]
        conn.close()
        assert version == SCHEMA_VERSION
        assert "derivedFrom" in columns

    def test_migrated_database_round_trips_derived_from(self, tmp_path):
        from tests.conftest import make_campaign
        from tests.db.test_database import make_reference, make_result

        path = str(tmp_path / "v2rt.db")
        with GoofiDatabase(path):
            pass
        self._downgrade_to_v2(path)
        campaign = make_campaign()
        with GoofiDatabase(path) as db:
            db.log_reference(campaign, make_reference())
            rep = make_result(0)
            member = make_result(1)
            member.derived_from = rep.name
            db.log_experiment(campaign, rep)
            db.log_experiment(campaign, member)
            loaded = db.load_experiments(campaign.campaign_name)
        by_index = {r.index: r for r in loaded}
        assert by_index[0].derived_from is None
        assert by_index[1].derived_from == rep.name
