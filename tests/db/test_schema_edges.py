"""Edge-case tests for the database layer."""

import sqlite3

import pytest

from repro.db import GoofiDatabase
from repro.db.schema import SCHEMA_VERSION
from repro.util.errors import DatabaseError


class TestSchemaVersioning:
    def test_fresh_db_stamps_version(self, tmp_path):
        path = str(tmp_path / "v.db")
        with GoofiDatabase(path):
            pass
        conn = sqlite3.connect(path)
        row = conn.execute("SELECT version FROM SchemaInfo").fetchone()
        conn.close()
        assert row[0] == SCHEMA_VERSION

    def test_reopening_same_version_ok(self, tmp_path):
        path = str(tmp_path / "v.db")
        with GoofiDatabase(path):
            pass
        with GoofiDatabase(path):
            pass

    def test_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "v.db")
        with GoofiDatabase(path):
            pass
        conn = sqlite3.connect(path)
        conn.execute("UPDATE SchemaInfo SET version = 999")
        conn.commit()
        conn.close()
        with pytest.raises(DatabaseError):
            GoofiDatabase(path)


class TestBlobIntegrity:
    def test_corrupted_state_vector_surfaces_as_database_error(self, db):
        from tests.conftest import make_campaign
        from tests.db.test_database import make_reference, make_result

        campaign = make_campaign()
        db.log_reference(campaign, make_reference())
        db.log_experiment(campaign, make_result(0))
        db._conn.execute(
            "UPDATE LoggedSystemState SET stateVector = X'DEADBEEF' "
            "WHERE isReference = 0"
        )
        db._conn.commit()
        with pytest.raises(DatabaseError):
            db.load_experiments(campaign.campaign_name)

    def test_upsert_overwrites_experiment(self, db):
        from tests.conftest import make_campaign
        from tests.db.test_database import make_reference, make_result

        campaign = make_campaign()
        db.log_reference(campaign, make_reference())
        db.log_experiment(campaign, make_result(0, outputs={"total": 1}))
        db.log_experiment(campaign, make_result(0, outputs={"total": 2}))
        assert db.count_experiments(campaign.campaign_name) == 1
        assert db.load_experiments(campaign.campaign_name)[0].outputs == {
            "total": 2
        }


class TestCompletedIndicesEdges:
    def test_empty_campaign(self, db):
        assert db.completed_indices("nothing") == []

    def test_out_of_order_logging(self, db):
        from tests.conftest import make_campaign
        from tests.db.test_database import make_reference, make_result

        campaign = make_campaign()
        db.log_reference(campaign, make_reference())
        for index in (4, 0, 2):
            db.log_experiment(campaign, make_result(index))
        assert db.completed_indices(campaign.campaign_name) == [0, 2, 4]
