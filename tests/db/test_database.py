"""Tests for the GOOFI database (Figure 4 schema, foreign keys, sink)."""

import pytest

from repro.core.campaign import CampaignData
from repro.core.experiment import (
    ExperimentResult,
    Injection,
    ReferenceRun,
    Termination,
)
from repro.core.locations import FaultLocation
from repro.db import GoofiDatabase
from repro.util.errors import DatabaseError
from tests.conftest import make_campaign


def make_reference(**kw):
    defaults = dict(
        duration_cycles=100,
        duration_instructions=50,
        termination=Termination(kind="halt", pc=0x110, cycle=100),
        state_vector={"scan:internal/cpu.pc": 0x110},
        outputs={"total": 55},
    )
    defaults.update(kw)
    return ReferenceRun(**defaults)


def make_result(index=0, campaign="test-campaign", **kw):
    defaults = dict(
        name=f"{campaign}-exp{index:05d}",
        index=index,
        campaign_name=campaign,
        injections=[
            Injection(
                time=7,
                location=FaultLocation("scan:internal", "cpu.psr", 1),
                op="flip",
                bit_before=0,
                bit_after=1,
            )
        ],
        termination=Termination(kind="halt", pc=0x110, cycle=101),
        state_vector={"scan:internal/cpu.pc": 0x110},
        outputs={"total": 55},
        wall_seconds=0.02,
    )
    defaults.update(kw)
    return ExperimentResult(**defaults)


class TestTargetTable:
    def test_save_load(self, db):
        db.save_target("thor-rd", {"memory_size": 65536})
        assert db.load_target("thor-rd") == {"memory_size": 65536}

    def test_upsert(self, db):
        db.save_target("t", {"v": 1})
        db.save_target("t", {"v": 2})
        assert db.load_target("t")["v"] == 2
        assert db.list_targets() == ["t"]

    def test_missing_target_raises(self, db):
        with pytest.raises(DatabaseError):
            db.load_target("nothing")


class TestCampaignTable:
    def test_save_load_round_trip(self, db):
        campaign = make_campaign()
        db.save_campaign(campaign)
        loaded = db.load_campaign("test-campaign")
        assert loaded.to_dict() == campaign.to_dict()

    def test_save_creates_target_row(self, db):
        db.save_campaign(make_campaign())
        assert "thor-rd" in db.list_targets()

    def test_missing_campaign_raises(self, db):
        with pytest.raises(DatabaseError):
            db.load_campaign("ghost")

    def test_delete_campaign_cascades_experiments(self, db):
        campaign = make_campaign()
        db.log_reference(campaign, make_reference())
        db.log_experiment(campaign, make_result(0))
        db.delete_campaign(campaign.campaign_name)
        assert db.count_experiments(campaign.campaign_name) == 0
        assert db.list_campaigns() == []


class TestForeignKeys:
    def test_orphan_experiment_rejected(self, db):
        # Inserting a LoggedSystemState row for a non-existent campaign
        # must violate the foreign key (Figure 4's consistency property).
        import sqlite3

        with pytest.raises(sqlite3.IntegrityError):
            db._conn.execute(
                "INSERT INTO LoggedSystemState"
                "(experimentName, campaignName, experimentData, stateVector)"
                " VALUES ('x', 'ghost', '{}', X'00')"
            )

    def test_target_with_campaigns_protected(self, db):
        import sqlite3

        db.save_campaign(make_campaign())
        with pytest.raises(sqlite3.IntegrityError):
            db._conn.execute(
                "DELETE FROM TargetSystemData WHERE targetName='thor-rd'"
            )


class TestLoggedSystemState:
    def test_reference_round_trip(self, db):
        campaign = make_campaign()
        reference = make_reference()
        db.log_reference(campaign, reference)
        loaded = db.load_reference(campaign.campaign_name)
        assert loaded.duration_cycles == 100
        assert loaded.outputs == {"total": 55}
        assert loaded.state_vector == reference.state_vector
        assert loaded.termination.kind == "halt"

    def test_experiment_round_trip(self, db):
        campaign = make_campaign()
        db.log_reference(campaign, make_reference())
        result = make_result(3)
        db.log_experiment(campaign, result)
        loaded = db.load_experiment(result.name)
        assert loaded.index == 3
        assert loaded.injections == result.injections
        assert loaded.termination.kind == "halt"
        assert loaded.outputs == {"total": 55}
        assert loaded.wall_seconds == pytest.approx(0.02)

    def test_load_experiments_sorted(self, db):
        campaign = make_campaign()
        db.log_reference(campaign, make_reference())
        for index in (2, 0, 1):
            db.log_experiment(campaign, make_result(index))
        loaded = db.load_experiments(campaign.campaign_name)
        assert [r.index for r in loaded] == [0, 1, 2]

    def test_reference_excluded_from_experiments(self, db):
        campaign = make_campaign()
        db.log_reference(campaign, make_reference())
        db.log_experiment(campaign, make_result(0))
        assert db.count_experiments(campaign.campaign_name) == 1

    def test_parent_experiment_tracking(self, db):
        campaign = make_campaign()
        db.log_reference(campaign, make_reference())
        original = make_result(0)
        db.log_experiment(campaign, original)
        rerun = make_result(0, name=f"{original.name}-rerun",
                            parent_experiment=original.name)
        rerun.name = f"{original.name}-rerun"
        db.log_experiment(campaign, rerun)
        assert db.children_of(original.name) == [rerun.name]
        assert db.load_experiment(rerun.name).parent_experiment == original.name

    def test_detail_states_round_trip(self, db):
        campaign = make_campaign()
        db.log_reference(campaign, make_reference())
        result = make_result(0, detail_states=[{"a": 1}, {"a": 2}])
        db.log_experiment(campaign, result)
        assert db.load_experiment(result.name).detail_states == [
            {"a": 1},
            {"a": 2},
        ]

    def test_missing_experiment_raises(self, db):
        with pytest.raises(DatabaseError):
            db.load_experiment("nothing")


class TestAsSink:
    def test_campaign_logs_into_database(self, db, thor_target):
        campaign = make_campaign(n_experiments=5)
        thor_target.run_campaign(campaign, sink=db)
        assert db.count_experiments(campaign.campaign_name) == 5
        reference = db.load_reference(campaign.campaign_name)
        assert reference.duration_cycles > 0
        results = db.load_experiments(campaign.campaign_name)
        assert all(r.termination is not None for r in results)

    def test_file_database_persists(self, tmp_path, thor_target):
        path = str(tmp_path / "goofi.db")
        with GoofiDatabase(path) as db:
            thor_target.run_campaign(make_campaign(n_experiments=3), sink=db)
        with GoofiDatabase(path) as db:
            assert db.count_experiments("test-campaign") == 3
            assert db.list_campaigns() == ["test-campaign"]

    def test_query_raw_sql(self, db, thor_target):
        thor_target.run_campaign(make_campaign(n_experiments=2), sink=db)
        rows = db.query(
            "SELECT COUNT(*) AS n FROM LoggedSystemState WHERE isReference=0"
        )
        assert rows[0]["n"] == 2
