"""Tests for the analytics DB surface: batched cursors, read-only
connections and the v4 → v5 index migration."""

import sqlite3

import pytest

from repro.db import GoofiDatabase
from repro.db.schema import SCHEMA_VERSION
from repro.util.errors import DatabaseError
from tests.conftest import make_campaign
from tests.db.test_database import make_reference, make_result

V5_INDICES = (
    "idx_logged_campaign_outcome",
    "idx_logged_campaign_location_time",
)


def _index_names(path):
    conn = sqlite3.connect(path)
    names = {
        row[0]
        for row in conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )
    }
    conn.close()
    return names


def _populate(db, n=10):
    campaign = make_campaign(n_experiments=n)
    db.save_campaign(campaign)
    db.log_reference(campaign, make_reference())
    db.log_experiments(campaign, [make_result(i) for i in range(n)])
    return campaign


class TestIterExperiments:
    def test_matches_load_experiments(self, db):
        _populate(db, n=23)
        loaded = db.load_experiments("test-campaign")
        streamed = list(db.iter_experiments("test-campaign", batch_size=7))
        assert [r.name for r in streamed] == [r.name for r in loaded]
        assert [r.to_dict() if hasattr(r, "to_dict") else r.experiment_data()
                for r in streamed] == [
            r.to_dict() if hasattr(r, "to_dict") else r.experiment_data()
            for r in loaded
        ]

    def test_excludes_the_reference_row(self, db):
        _populate(db, n=5)
        names = [r.name for r in db.iter_experiments("test-campaign")]
        assert all("reference" not in name for name in names)
        assert len(names) == 5

    def test_empty_campaign_yields_nothing(self, db):
        assert list(db.iter_experiments("ghost")) == []

    def test_batch_size_one(self, db):
        _populate(db, n=4)
        assert len(list(db.iter_experiments("test-campaign", 1))) == 4

    def test_invalid_batch_size(self, db):
        with pytest.raises(DatabaseError):
            next(db.iter_experiments("test-campaign", batch_size=0))


class TestReadonlyConnections:
    def test_reads_committed_rows(self, tmp_path):
        path = str(tmp_path / "ro.db")
        with GoofiDatabase(path) as db:
            _populate(db, n=6)
        with GoofiDatabase(path, readonly=True) as ro:
            assert ro.count_experiments("test-campaign") == 6
            assert len(list(ro.iter_experiments("test-campaign"))) == 6
            ro.load_reference("test-campaign")

    def test_rejects_writes(self, tmp_path):
        path = str(tmp_path / "ro.db")
        campaign = make_campaign()
        with GoofiDatabase(path) as db:
            db.save_campaign(campaign)
            db.log_reference(campaign, make_reference())
        with GoofiDatabase(path, readonly=True) as ro:
            with pytest.raises(sqlite3.OperationalError):
                ro.log_experiment(campaign, make_result(0))

    def test_memory_path_rejected(self):
        with pytest.raises(DatabaseError):
            GoofiDatabase(":memory:", readonly=True)

    def test_missing_file_is_an_error_not_a_creation(self, tmp_path):
        path = str(tmp_path / "nothing.db")
        with pytest.raises(DatabaseError):
            GoofiDatabase(path, readonly=True)
        assert not (tmp_path / "nothing.db").exists()

    def test_reader_does_not_block_writer(self, tmp_path):
        path = str(tmp_path / "wal.db")
        writer = GoofiDatabase(path)
        campaign = _populate(writer, n=8)
        reader = GoofiDatabase(path, readonly=True)
        # Hold a cursor mid-iteration while the writer keeps committing.
        iterator = reader.iter_experiments("test-campaign", batch_size=2)
        next(iterator)
        writer.log_experiment(campaign, make_result(100))
        writer._conn.commit()
        remaining = list(iterator)
        assert len(remaining) >= 7
        # A fresh reader connection sees the newly committed row.
        with GoofiDatabase(path, readonly=True) as fresh:
            assert fresh.count_experiments("test-campaign") == 9
        reader.close()
        writer.close()

    def test_accepts_older_migratable_version(self, tmp_path):
        path = str(tmp_path / "v4.db")
        with GoofiDatabase(path):
            pass
        conn = sqlite3.connect(path)
        for name in V5_INDICES:
            conn.execute(f"DROP INDEX {name}")
        conn.execute("UPDATE SchemaInfo SET version = 4")
        conn.commit()
        conn.close()
        with GoofiDatabase(path, readonly=True) as ro:
            assert ro.count_experiments("anything") == 0
        # Read-only never migrates: the file stays v4 untouched.
        conn = sqlite3.connect(path)
        assert conn.execute(
            "SELECT version FROM SchemaInfo"
        ).fetchone()[0] == 4
        conn.close()

    def test_rejects_unknown_version(self, tmp_path):
        path = str(tmp_path / "weird.db")
        with GoofiDatabase(path):
            pass
        conn = sqlite3.connect(path)
        conn.execute("UPDATE SchemaInfo SET version = 999")
        conn.commit()
        conn.close()
        with pytest.raises(DatabaseError):
            GoofiDatabase(path, readonly=True)


class TestV5Migration:
    @staticmethod
    def _downgrade_to_v4(path):
        conn = sqlite3.connect(path)
        for name in V5_INDICES:
            conn.execute(f"DROP INDEX {name}")
        conn.execute("UPDATE SchemaInfo SET version = 4")
        conn.commit()
        conn.close()

    def test_fresh_db_has_the_v5_indices(self, tmp_path):
        path = str(tmp_path / "fresh.db")
        with GoofiDatabase(path):
            pass
        names = _index_names(path)
        for index in V5_INDICES:
            assert index in names

    def test_v4_database_migrates_in_place(self, tmp_path):
        path = str(tmp_path / "v4.db")
        with GoofiDatabase(path) as db:
            _populate(db, n=3)
        self._downgrade_to_v4(path)
        assert not (set(V5_INDICES) & _index_names(path))
        with GoofiDatabase(path) as db:
            # Data survives and the indices are back.
            assert db.count_experiments("test-campaign") == 3
        names = _index_names(path)
        for index in V5_INDICES:
            assert index in names
        conn = sqlite3.connect(path)
        assert conn.execute(
            "SELECT version FROM SchemaInfo"
        ).fetchone()[0] == SCHEMA_VERSION
        conn.close()

    def test_migration_round_trips_experiment_rows(self, tmp_path):
        path = str(tmp_path / "v4rt.db")
        with GoofiDatabase(path) as db:
            campaign = _populate(db, n=5)
            before = [r.name for r in db.load_experiments("test-campaign")]
        self._downgrade_to_v4(path)
        with GoofiDatabase(path) as db:
            after = [r.name for r in db.load_experiments("test-campaign")]
            db.log_experiment(campaign, make_result(50))
            assert db.count_experiments("test-campaign") == 6
        assert before == after

    def test_indexed_outcome_query_agrees_with_python(self, tmp_path):
        from repro.core.experiment import Termination

        path = str(tmp_path / "q.db")
        with GoofiDatabase(path) as db:
            campaign = make_campaign()
            db.save_campaign(campaign)
            db.log_reference(campaign, make_reference())
            results = []
            for i in range(12):
                kw = {}
                if i % 3 == 0:
                    kw["termination"] = Termination(
                        kind="trap", pc=1, cycle=5, trap_name="wdog"
                    )
                results.append(make_result(i, **kw))
            db.log_experiments(campaign, results)
            rows = db.query(
                "SELECT json_extract(experimentData, '$.termination.kind') "
                "AS kind, COUNT(*) AS n FROM LoggedSystemState "
                "WHERE campaignName = ? AND isReference = 0 GROUP BY kind",
                ("test-campaign",),
            )
        counts = {row["kind"]: row["n"] for row in rows}
        assert counts == {"trap": 4, "halt": 8}
