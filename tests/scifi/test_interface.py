"""Tests for the Thor RD target interface (the SCIFI port)."""

import pytest

from repro.core.faultmodels import InjectionAction
from repro.core.locations import FaultLocation
from repro.scifi.interface import ThorRDInterface
from repro.util.errors import CampaignError
from tests.conftest import make_campaign


@pytest.fixture
def bound_target():
    target = ThorRDInterface()
    target.read_campaign_data(make_campaign())
    return target


class TestLocationSpace:
    def test_space_covers_all_categories(self, bound_target):
        spaces = {cell.space for cell in bound_target.location_space().cells()}
        assert {"scan:internal", "scan:boundary", "memory:code",
                "memory:data", "swreg"} <= spaces

    def test_memory_cells_match_workload_image(self, bound_target):
        cells = bound_target.location_space().select_cells(["memory:code/*"])
        workload = bound_target._workload
        assert len(cells) == len(workload.program.code_addresses())

    def test_input_data_outside_image_included(self):
        target = ThorRDInterface()
        target.read_campaign_data(make_campaign(workload_name="bubblesort"))
        cells = target.location_space().select_cells(["memory:data/*"])
        workload = target._workload
        data_addresses = set(workload.program.data_addresses()) | set(
            workload.input_writes
        )
        assert len(cells) == len(data_addresses)

    def test_read_only_cells_marked(self, bound_target):
        cell = bound_target.location_space().cell(
            "scan:internal", "cpu.cycle_counter"
        )
        assert cell.read_only


class TestScifiInjection:
    def test_inject_fault_flips_chain_bit(self, bound_target):
        bound_target.init_test_card()
        bound_target.load_workload()
        chains = bound_target.read_scan_chain()
        location = FaultLocation("scan:internal", "cpu.regfile.r3", 7)
        action = InjectionAction(time=5, locations=(location,))
        injections = bound_target.inject_fault(chains, action)
        assert len(injections) == 1
        offset = bound_target.card.chain("internal").bit_offset(
            "cpu.regfile.r3", 7
        )
        assert chains["internal"][offset] == injections[0].bit_after
        assert injections[0].bit_before != injections[0].bit_after

    def test_write_back_applies_fault_to_target(self, bound_target):
        bound_target.init_test_card()
        bound_target.load_workload()
        chains = bound_target.read_scan_chain()
        location = FaultLocation("scan:internal", "cpu.regfile.r3", 7)
        bound_target.inject_fault(
            chains, InjectionAction(time=5, locations=(location,))
        )
        bound_target.write_scan_chain(chains)
        assert bound_target.card.cpu.regs[3] == 1 << 7

    def test_scifi_rejects_memory_locations(self, bound_target):
        chains = {"internal": [], "boundary": []}
        location = FaultLocation("memory:code", "word.0x0100", 0)
        with pytest.raises(CampaignError):
            bound_target.inject_fault(
                chains, InjectionAction(time=1, locations=(location,))
            )


class TestPreRuntimeInjection:
    def test_flips_image_bit(self, bound_target):
        bound_target.init_test_card()
        bound_target.load_workload()
        address = bound_target._workload.program.code_addresses()[0]
        before_word = bound_target.card.read_memory(address)
        location = FaultLocation("memory:code", f"word.0x{address:04x}", 4)
        injections = bound_target.inject_fault_preruntime(
            InjectionAction(time=0, locations=(location,))
        )
        assert injections[0].time == 0
        assert bound_target.card.read_memory(address) == before_word ^ (1 << 4)


class TestDirectInjection:
    def test_direct_register_flip(self, bound_target):
        bound_target.init_test_card()
        bound_target.load_workload()
        location = FaultLocation("scan:internal", "cpu.regfile.r5", 0)
        bound_target.inject_fault_direct(
            InjectionAction(time=1, locations=(location,))
        )
        assert bound_target.card.cpu.regs[5] == 1

    def test_direct_read_only_rejected(self, bound_target):
        location = FaultLocation("scan:internal", "cpu.cycle_counter", 0)
        with pytest.raises(CampaignError):
            bound_target.inject_fault_direct(
                InjectionAction(time=1, locations=(location,))
            )

    def test_direct_memory_flip_invalidates_caches(self, bound_target):
        bound_target.init_test_card()
        bound_target.load_workload()
        address = bound_target._workload.program.code_addresses()[0]
        # Warm the icache at that address.
        bound_target.card.cpu.icache.read(address, bound_target.card.cpu.memory)
        location = FaultLocation("memory:code", f"word.0x{address:04x}", 1)
        bound_target.inject_fault_direct(
            InjectionAction(time=1, locations=(location,))
        )
        value, extra = bound_target.card.cpu.icache.read(
            address, bound_target.card.cpu.memory
        )
        assert extra > 0  # line was invalidated -> refill
        assert value == bound_target.card.read_memory(address)


class TestObservation:
    def test_capture_state_vector_keys_match_observe_patterns(
        self, bound_target
    ):
        bound_target.init_test_card()
        bound_target.load_workload()
        vector = bound_target.capture_state_vector()
        assert "scan:internal/cpu.pc" in vector
        assert any("regfile" in key for key in vector)

    def test_outputs_read_back(self, bound_target):
        bound_target.init_test_card()
        bound_target.load_workload()
        bound_target.write_memory()
        bound_target.run_workload()
        bound_target.wait_for_termination(10**6, None)
        outputs = bound_target.read_memory()
        assert outputs["total"] == bound_target._workload.expected["total"][0]

    def test_trace_collection(self, bound_target):
        bound_target.init_test_card()
        bound_target.load_workload()
        bound_target.write_memory()
        bound_target.start_trace()
        bound_target.run_workload()
        bound_target.wait_for_termination(10**6, None)
        trace = bound_target.stop_trace()
        assert len(trace) > 10
        assert trace.duration_cycles > 0
        # vecsum has a backward jump each iteration.
        assert trace.branch_steps()

    def test_detail_logging_produces_per_step_states(self, bound_target):
        bound_target.init_test_card()
        bound_target.load_workload()
        bound_target.write_memory()
        bound_target.set_detail_logging(True)
        bound_target.run_workload()
        bound_target.wait_for_termination(10**6, None)
        states = bound_target.drain_detail_states()
        assert len(states) > 10
        # Draining clears the buffer.
        assert bound_target.drain_detail_states() == []


class TestEnvironmentValidation:
    def test_env_workload_without_env_rejected(self):
        target = ThorRDInterface()
        with pytest.raises(CampaignError):
            target.read_campaign_data(
                make_campaign(workload_name="pid-control", max_iterations=10)
            )

    def test_describe_target_structure(self, bound_target):
        description = bound_target.describe_target()
        assert description["memory_size"] == 65536
        assert "internal" in description["chains"]
        assert "boundary" in description["chains"]


class TestRestrictedScanShift:
    """The restricted scan round-trip (PR 5 satellite): SCIFI reads and
    writes only the chains an injection action touches, unless the
    campaign opts back into ``full_scan_shift``. Outcomes must be
    identical either way — the restriction is purely a cycle saver."""

    def _run(self, full_scan_shift):
        target = ThorRDInterface()
        campaign = make_campaign(
            campaign_name="scan-restrict",
            n_experiments=6,
            full_scan_shift=full_scan_shift,
        )
        sink = target.run_campaign(campaign)
        rows = [
            (r.termination.kind, r.injections, r.outputs, r.state_vector)
            for r in sink.results
        ]
        return target.card.total_scan_cycles, rows

    def test_restricted_is_cheaper_and_identical(self):
        full_cycles, full_rows = self._run(True)
        restricted_cycles, restricted_rows = self._run(False)
        assert restricted_rows == full_rows
        assert restricted_cycles < full_cycles

    def test_read_scan_chain_names_subset(self, bound_target):
        bound_target.init_test_card()
        bound_target.load_workload()
        chains = bound_target.read_scan_chain(["internal"])
        assert set(chains) == {"internal"}

    def test_action_chain_names(self):
        scan = FaultLocation("scan:internal", "cpu.regfile.r3", 7)
        boundary = FaultLocation("scan:boundary", "pins.data_bus", 0)
        memory = FaultLocation("memory:data", "0x100", 0)
        names = ThorRDInterface._action_chain_names
        assert names(InjectionAction(time=1, locations=(scan,))) == [
            "internal"
        ]
        assert names(
            InjectionAction(time=1, locations=(scan, boundary))
        ) == ["boundary", "internal"]
        assert names(
            InjectionAction(time=1, locations=(scan, memory))
        ) is None
