"""Tests for pin-level fault injection (boundary-scan EXTEST forcing)."""

import pytest

from repro.core import CampaignData, create_target
from repro.core.faultmodels import InjectionAction
from repro.core.locations import FaultLocation
from repro.scifi.interface import ThorRDInterface
from repro.thor.memory import Memory, MemoryBus
from repro.util.errors import CampaignError
from tests.conftest import make_campaign


class TestMemoryBusForcing:
    def test_unforced_bus_is_transparent(self):
        memory = Memory(64)
        memory.poke(3, 0xABCD)
        bus = MemoryBus(memory)
        assert bus.read(3) == 0xABCD

    def test_forced_bits_override_reads(self):
        memory = Memory(64)
        memory.poke(3, 0b1010)
        bus = MemoryBus(memory)
        bus.arm_force(mask=0b0110, value=0b0100, reads=2)
        assert bus.read(3) == 0b1100  # bits 1,2 forced to 0,1
        assert bus.read(3) == 0b1100
        assert bus.read(3) == 0b1010  # force exhausted

    def test_force_counts_transactions_not_time(self):
        memory = Memory(64)
        memory.poke(1, 0)
        memory.poke(2, 0)
        bus = MemoryBus(memory)
        bus.arm_force(mask=1, value=1, reads=1)
        assert bus.read(1) == 1
        assert bus.read(2) == 0

    def test_writes_unaffected(self):
        memory = Memory(64)
        bus = MemoryBus(memory)
        bus.arm_force(mask=0xFF, value=0xFF, reads=10)
        bus.write(5, 0)
        assert memory.peek(5) == 0

    def test_reset_force(self):
        memory = Memory(64)
        bus = MemoryBus(memory)
        bus.arm_force(1, 1, 5)
        bus.reset_force()
        assert not bus.forcing


class TestForcePinsBlock:
    @pytest.fixture
    def bound(self):
        target = ThorRDInterface()
        target.read_campaign_data(
            make_campaign(
                technique="pinlevel",
                location_patterns=["scan:boundary/pins.data_bus"],
            )
        )
        target.init_test_card()
        target.load_workload()
        return target

    def test_force_arms_the_bus(self, bound):
        location = FaultLocation("scan:boundary", "pins.data_bus", 4)
        injections = bound.force_pins(
            InjectionAction(time=9, locations=(location,), op="stuck1")
        )
        bus = bound.card.cpu.bus
        assert bus.force_mask == 1 << 4
        assert bus.force_value & (1 << 4)
        assert bus.force_reads == 1  # transient fault model
        assert injections[0].bit_after == 1

    def test_force_duration_follows_fault_model(self):
        from repro.core.campaign import FaultModelSpec

        target = ThorRDInterface()
        target.read_campaign_data(
            make_campaign(
                technique="pinlevel",
                location_patterns=["scan:boundary/pins.data_bus"],
                fault_model=FaultModelSpec(kind="permanent", stuck_value=1),
            )
        )
        target.init_test_card()
        target.load_workload()
        location = FaultLocation("scan:boundary", "pins.data_bus", 0)
        target.force_pins(
            InjectionAction(time=1, locations=(location,), op="stuck1")
        )
        assert target.card.cpu.bus.force_reads == 255

    def test_rejects_non_bus_locations(self, bound):
        location = FaultLocation("scan:internal", "cpu.regfile.r1", 0)
        with pytest.raises(CampaignError):
            bound.force_pins(
                InjectionAction(time=1, locations=(location,))
            )

    def test_forcing_pays_scan_cost(self, bound):
        before = bound.card.total_scan_cycles
        location = FaultLocation("scan:boundary", "pins.data_bus", 2)
        bound.force_pins(InjectionAction(time=1, locations=(location,)))
        assert bound.card.total_scan_cycles > before


class TestPinFaultSemantics:
    def test_forced_fill_is_parity_consistent(self):
        """The key physical property: a pin fault corrupts the word
        *before* the cache computes fill parity, so the parity mechanism
        cannot see it — unlike a fault in the cache array itself."""
        from repro.thor.cpu import Cpu

        cpu = Cpu()
        cpu.memory.poke(0x200, 0b0)
        cpu.bus.arm_force(mask=1, value=1, reads=10)
        value, _ = cpu.dcache.read(0x200, cpu.bus)
        assert value == 1  # corrupted on the bus
        # Re-read from the cache after the force expires: still corrupted,
        # still no parity error.
        cpu.bus.reset_force()
        value, extra = cpu.dcache.read(0x200, cpu.bus)
        assert value == 1 and extra == 0

    def test_campaign_end_to_end(self):
        campaign = make_campaign(
            campaign_name="pin-e2e",
            technique="pinlevel",
            workload_name="bubblesort",
            location_patterns=["scan:boundary/pins.data_bus"],
            n_experiments=20,
            seed=91,
        )
        target = create_target("thor-rd")
        sink = target.run_campaign(campaign)
        assert len(sink.results) == 20
        assert all(len(r.injections) == 1 for r in sink.results)

    def test_pin_faults_evade_cache_parity(self):
        """Campaign-level shape: pin-level escapes are mostly undetected
        wrong results, never cache-parity detections."""
        from repro.analysis import classify_campaign

        campaign = make_campaign(
            campaign_name="pin-evade",
            technique="pinlevel",
            workload_name="bubblesort",
            location_patterns=["scan:boundary/pins.data_bus"],
            n_experiments=60,
            seed=12,
        )
        target = create_target("thor-rd")
        sink = target.run_campaign(campaign)
        summary = classify_campaign(sink.results, sink.reference)
        assert summary.escaped > 0
        assert "dcache_parity" not in summary.detections_by_mechanism
        assert "icache_parity" not in summary.detections_by_mechanism


class TestPinForceDurations:
    def test_intermittent_model_forces_burst_length_reads(self):
        from repro.core.campaign import FaultModelSpec
        from tests.conftest import make_campaign

        target = ThorRDInterface()
        target.read_campaign_data(
            make_campaign(
                technique="pinlevel",
                location_patterns=["scan:boundary/pins.data_bus"],
                fault_model=FaultModelSpec(
                    kind="intermittent", burst_length=4, burst_spacing=10
                ),
            )
        )
        target.init_test_card()
        target.load_workload()
        location = FaultLocation("scan:boundary", "pins.data_bus", 3)
        target.force_pins(
            InjectionAction(time=2, locations=(location,), op="stuck0")
        )
        assert target.card.cpu.bus.force_reads == 4

    def test_campaign_with_permanent_pin_fault(self):
        from repro.analysis import classify_campaign
        from repro.core.campaign import FaultModelSpec
        from tests.conftest import make_campaign

        campaign = make_campaign(
            campaign_name="pin-perm",
            technique="pinlevel",
            workload_name="vecsum",
            location_patterns=["scan:boundary/pins.data_bus"],
            fault_model=FaultModelSpec(kind="permanent", stuck_value=1,
                                       reassert_interval=60),
            n_experiments=15,
            seed=14,
        )
        target = create_target("thor-rd")
        sink = target.run_campaign(campaign)
        summary = classify_campaign(sink.results, sink.reference)
        # A permanently stuck bus line is far more damaging than a
        # single-transaction glitch.
        assert summary.effective > summary.total / 2
