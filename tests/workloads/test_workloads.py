"""Tests for the workload library: every workload runs fault-free to its
golden outputs on the real simulator."""

import pytest

from repro.thor.testcard import DebugEventKind, TestCard
from repro.util.errors import ConfigurationError
from repro.workloads import available_workloads, get_workload


def run_workload(definition, max_iterations=None, timeout=5_000_000):
    card = TestCard()
    card.init()
    card.load_program(definition.program)
    for address, value in definition.input_writes.items():
        card.write_memory(address, value)
    event = card.run(timeout_cycles=timeout, max_iterations=max_iterations)
    outputs = {}
    for name, (base, count) in definition.outputs.items():
        values = card.read_memory_block(base, count)
        outputs[name] = values
    return card, event, outputs


BATCH_WORKLOADS = ["bubblesort", "quicksort", "matmul", "fibonacci",
                   "crc32", "vecsum", "binsearch", "countprimes"]


class TestGoldenOutputs:
    @pytest.mark.parametrize("name", BATCH_WORKLOADS)
    def test_fault_free_run_matches_golden(self, name):
        definition = get_workload(name)
        card, event, outputs = run_workload(definition)
        assert event.kind is DebugEventKind.HALT
        for key, expected in definition.expected.items():
            assert outputs[key] == expected, f"{name}:{key}"

    @pytest.mark.parametrize("name,params", [
        ("bubblesort", {"n": 5, "seed": 1}),
        ("bubblesort", {"n": 32, "seed": 2}),
        ("quicksort", {"n": 25, "seed": 3}),
        ("matmul", {"dim": 3, "seed": 4}),
        ("fibonacci", {"n": 40}),
        ("crc32", {"n": 3, "seed": 5}),
        ("vecsum", {"n": 30, "seed": 6}),
        ("binsearch", {"n": 8, "m": 4, "seed": 9}),
        ("countprimes", {"n": 30}),
    ])
    def test_parameterised_variants(self, name, params):
        definition = get_workload(name, params)
        card, event, outputs = run_workload(definition)
        assert event.kind is DebugEventKind.HALT
        for key, expected in definition.expected.items():
            assert outputs[key] == expected

    def test_sorted_output_is_sorted(self):
        definition = get_workload("bubblesort", {"n": 20, "seed": 99})
        _, _, outputs = run_workload(definition)
        assert outputs["sorted"] == sorted(outputs["sorted"])

    def test_quicksort_agrees_with_bubblesort(self):
        bubble = get_workload("bubblesort", {"n": 20, "seed": 42})
        quick = get_workload("quicksort", {"n": 20, "seed": 42})
        _, _, bubble_out = run_workload(bubble)
        _, _, quick_out = run_workload(quick)
        assert bubble_out["sorted"] == quick_out["sorted"]


class TestRegistry:
    def test_all_workloads_listed(self):
        listed = available_workloads()
        for name in BATCH_WORKLOADS + ["pid-control"]:
            assert name in listed

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            get_workload("doom")

    def test_label_lookup(self):
        definition = get_workload("vecsum")
        assert definition.label("total") > 0
        with pytest.raises(ConfigurationError):
            definition.label("nothing")

    def test_output_addresses(self):
        definition = get_workload("vecsum", {"n": 4})
        assert len(definition.output_addresses()) == 1


class TestControlWorkload:
    def test_is_loop_with_environment(self):
        definition = get_workload("pid-control")
        assert definition.is_loop
        assert definition.uses_environment
        assert definition.default_max_iterations

    def test_protected_and_unprotected_differ_in_code(self):
        protected = get_workload("pid-control", {"assertions": True})
        unprotected = get_workload("pid-control", {"assertions": False})
        assert len(protected.program.words) > len(unprotected.program.words)
        assert "recover" in protected.program.symbols
        assert "recover" not in unprotected.program.symbols

    def test_loop_terminates_only_by_iteration_bound(self):
        definition = get_workload("pid-control")
        card = TestCard()
        card.init()
        card.load_program(definition.program)
        # Static input window (no environment attached): still must loop.
        card.write_memory(0xFF00, 0)
        card.write_memory(0xFF01, 0)
        event = card.run(timeout_cycles=10_000_000, max_iterations=20)
        assert event.kind is DebugEventKind.MAX_ITERATIONS
        assert event.iteration == 20

    def test_q8_gain_encoding(self):
        definition = get_workload("pid-control", {"kp": 1.5})
        # Sanity: the program assembled (gains encode without range
        # errors) and declares the documented outputs.
        assert set(definition.outputs) == {"integ", "prev_u", "rec_count"}


class TestDeterminism:
    def test_same_params_same_image(self):
        a = get_workload("bubblesort", {"n": 8, "seed": 3})
        b = get_workload("bubblesort", {"n": 8, "seed": 3})
        assert a.program.words == b.program.words
        assert a.input_writes == b.input_writes

    def test_different_seed_different_inputs(self):
        a = get_workload("bubblesort", {"n": 8, "seed": 3})
        b = get_workload("bubblesort", {"n": 8, "seed": 4})
        assert a.input_writes != b.input_writes
