"""Shared fixtures for the repro test suite."""

import pytest

from repro.core import CampaignData, create_target
from repro.db import GoofiDatabase
from repro.thor.testcard import TestCard


@pytest.fixture
def card():
    """A freshly initialised THOR-lite test card."""
    card = TestCard()
    card.init()
    return card


@pytest.fixture
def db():
    """An in-memory GOOFI database."""
    database = GoofiDatabase(":memory:")
    yield database
    database.close()


@pytest.fixture
def thor_target():
    """A fresh Thor RD target interface."""
    return create_target("thor-rd")


def make_campaign(**overrides) -> CampaignData:
    """A small, fast campaign definition for integration tests."""
    defaults = dict(
        campaign_name="test-campaign",
        target_name="thor-rd",
        technique="scifi",
        workload_name="vecsum",
        location_patterns=["scan:internal/cpu.regfile.*"],
        n_experiments=10,
        seed=1234,
    )
    defaults.update(overrides)
    return CampaignData(**defaults)


@pytest.fixture
def quick_campaign():
    return make_campaign


def run_program(source: str, timeout_cycles: int = 1_000_000,
                max_iterations=None):
    """Assemble and run a program on a fresh card; returns (card, event)."""
    from repro.thor.assembler import assemble

    program = assemble(source)
    card = TestCard()
    card.init()
    card.load_program(program)
    event = card.run(timeout_cycles=timeout_cycles,
                     max_iterations=max_iterations)
    return card, program, event
