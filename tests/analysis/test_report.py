"""Unit tests for report rendering."""

import pytest

from repro.analysis.classify import CampaignClassification, Outcome
from repro.analysis.report import render_campaign_report, render_comparison


def make_summary(detected=3, escaped=1, latent=2, overwritten=4,
                 mechanism="icache_parity"):
    summary = CampaignClassification(
        total=detected + escaped + latent + overwritten
    )
    summary.counts = {
        Outcome.DETECTED: detected,
        Outcome.ESCAPED_VALUE: escaped,
        Outcome.LATENT: latent,
        Outcome.OVERWRITTEN: overwritten,
    }
    if detected:
        summary.detections_by_mechanism = {mechanism: detected}
    return summary


class TestCampaignReport:
    def test_contains_counts_and_fractions(self):
        text = render_campaign_report("camp", make_summary())
        assert "camp" in text
        assert "30.0%" in text  # detected 3/10
        assert "by icache_parity" in text

    def test_contains_coverage_lines(self):
        text = render_campaign_report("camp", make_summary())
        assert "detection coverage" in text
        assert "effectiveness ratio" in text

    def test_custom_title(self):
        text = render_campaign_report("camp", make_summary(), title="Custom!")
        assert text.startswith("Custom!")


class TestComparison:
    def test_side_by_side(self):
        text = render_comparison(
            ["a", "b"], [make_summary(), make_summary(detected=0)]
        )
        assert "a" in text and "b" in text
        assert "effective" in text

    def test_mechanism_rows_unioned(self):
        text = render_comparison(
            ["a", "b"],
            [
                make_summary(mechanism="icache_parity"),
                make_summary(mechanism="watchdog"),
            ],
        )
        assert "by icache_parity" in text
        assert "by watchdog" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_comparison(["a"], [])


class TestJsonExport:
    def test_report_to_dict_round_trips_through_json(self):
        import json

        from repro.analysis.report import report_to_dict

        payload = report_to_dict("camp", make_summary())
        restored = json.loads(json.dumps(payload))
        assert restored["total"] == 10
        assert restored["outcomes"]["detected"]["count"] == 3
        assert restored["detections_by_mechanism"] == {"icache_parity": 3}
        lo, hi = restored["detection_coverage"]["interval"]
        assert 0.0 <= lo <= restored["detection_coverage"]["estimate"] <= hi

    def test_dict_numbers_match_text_report(self):
        from repro.analysis.report import report_to_dict

        summary = make_summary()
        payload = report_to_dict("camp", summary)
        text = render_campaign_report("camp", summary)
        for label, data in payload["outcomes"].items():
            assert f"{data['fraction']:.1%}"[:4] in text or data["count"] == 0
