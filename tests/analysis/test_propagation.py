"""Unit tests for error-propagation analysis (detail mode)."""

from repro.analysis.propagation import analyse_propagation


def states(values):
    return [{"cell.a": a, "cell.b": b} for a, b in values]


class TestDivergence:
    def test_identical_runs_do_not_diverge(self):
        reference = states([(1, 1), (2, 2), (3, 3)])
        report = analyse_propagation(reference, states([(1, 1), (2, 2), (3, 3)]))
        assert not report.diverged
        assert report.first_divergence_step is None
        assert report.max_infected == 0

    def test_first_divergence_located(self):
        reference = states([(1, 1), (2, 2), (3, 3)])
        experiment = states([(1, 1), (2, 9), (3, 9)])
        report = analyse_propagation(reference, experiment)
        assert report.diverged
        assert report.first_divergence_step == 1
        assert report.first_infected_cells == ["cell.b"]

    def test_infection_growth_tracked(self):
        reference = states([(1, 1), (2, 2), (3, 3)])
        experiment = states([(1, 1), (2, 9), (8, 9)])
        report = analyse_propagation(reference, experiment)
        assert report.infected_counts == [0, 1, 2]
        assert report.max_infected == 2
        assert report.final_infected == 2

    def test_infection_can_die_out(self):
        # An overwritten fault: state diverges then reconverges.
        reference = states([(1, 1), (2, 2), (3, 3)])
        experiment = states([(1, 9), (2, 2), (3, 3)])
        report = analyse_propagation(reference, experiment)
        assert report.first_divergence_step == 0
        assert report.final_infected == 0

    def test_length_difference_counts_as_divergence(self):
        reference = states([(1, 1), (2, 2), (3, 3)])
        experiment = states([(1, 1), (2, 2)])
        report = analyse_propagation(reference, experiment)
        assert report.diverged
        assert report.first_divergence_step == 2

    def test_describe_readable(self):
        reference = states([(1, 1), (2, 2)])
        report = analyse_propagation(reference, states([(1, 1), (2, 9)]))
        assert "diverged at step 1" in report.describe()
        clean = analyse_propagation(reference, reference)
        assert "no divergence" in clean.describe()


class TestEndToEndPropagation:
    def test_detail_mode_propagation_of_real_fault(self, thor_target):
        """E8 functional core: inject into a live register in detail mode
        and watch the infection through per-instruction states."""
        from tests.conftest import make_campaign

        campaign = make_campaign(
            n_experiments=6,
            logging_mode="detail",
            use_preinjection=True,  # live faults give non-trivial traces
            observe_patterns=[
                "scan:internal/cpu.regfile.*",
                "scan:internal/cpu.pc",
            ],
            seed=31,
        )
        sink = thor_target.run_campaign(campaign)
        assert sink.reference.detail_states
        diverged = 0
        for result in sink.results:
            report = analyse_propagation(
                sink.reference.detail_states, result.detail_states
            )
            if report.diverged:
                diverged += 1
        assert diverged > 0
