"""Tests for detection-latency analysis."""

import pytest

from repro.analysis.latency import LatencyReport, LatencySample, detection_latency
from repro.core.experiment import ExperimentResult, Injection, Termination
from repro.core.locations import FaultLocation
from tests.conftest import make_campaign


def make_detected(name, injected_at, detected_at, mechanism="dcache_parity"):
    return ExperimentResult(
        name=name,
        index=0,
        campaign_name="c",
        injections=[
            Injection(
                time=injected_at,
                location=FaultLocation("scan:internal", "dcache.line0.word0", 3),
                op="flip",
                bit_before=0,
                bit_after=1,
            )
        ],
        termination=Termination(kind="trap", trap_name=mechanism, pc=0,
                                cycle=detected_at),
    )


def make_undetected(name):
    return ExperimentResult(
        name=name,
        index=0,
        campaign_name="c",
        termination=Termination(kind="halt", pc=0, cycle=100),
    )


class TestCollection:
    def test_only_detected_errors_sampled(self):
        report = detection_latency(
            [make_detected("a", 10, 60), make_undetected("b")]
        )
        assert len(report) == 1
        assert report.samples[0].latency == 50

    def test_latency_never_negative(self):
        # A trap at the injection boundary itself.
        report = detection_latency([make_detected("a", 60, 60)])
        assert report.samples[0].latency == 0

    def test_per_mechanism_split(self):
        report = detection_latency(
            [
                make_detected("a", 0, 10, "dcache_parity"),
                make_detected("b", 0, 90, "illegal_opcode"),
            ]
        )
        assert report.mechanisms() == ["dcache_parity", "illegal_opcode"]
        assert report.latencies("dcache_parity") == [10]
        assert report.latencies() == [10, 90]

    def test_multi_injection_uses_earliest(self):
        result = make_detected("a", 30, 100)
        result.injections.append(
            Injection(
                time=10,
                location=FaultLocation("scan:internal", "cpu.psr", 0),
                op="flip",
                bit_before=0,
                bit_after=1,
            )
        )
        report = detection_latency([result])
        assert report.samples[0].latency == 90


class TestStatistics:
    def test_summary_values(self):
        report = LatencyReport(
            samples=[
                LatencySample("a", "m", 0, 10),
                LatencySample("b", "m", 0, 20),
                LatencySample("c", "m", 0, 30),
            ]
        )
        stats = report.summary()
        assert stats["count"] == 3
        assert stats["min"] == 10
        assert stats["median"] == 20
        assert stats["max"] == 30
        assert stats["mean"] == pytest.approx(20.0)

    def test_empty_summary(self):
        assert LatencyReport().summary()["count"] == 0

    def test_render(self):
        report = LatencyReport(samples=[LatencySample("a", "m", 5, 25)])
        text = report.render()
        assert "Detection latency" in text
        assert "m" in text


class TestEndToEnd:
    def test_cache_campaign_latencies(self, thor_target):
        """Cache-parity detections fire on the next access to the
        corrupted word — latencies are positive and bounded by the
        experiment length."""
        campaign = make_campaign(
            workload_name="bubblesort",
            location_patterns=["scan:internal/dcache.*"],
            n_experiments=40,
            seed=44,
        )
        sink = thor_target.run_campaign(campaign)
        report = detection_latency(sink.results)
        assert len(report) > 0
        budget = sink.reference.duration_cycles * campaign.timeout_factor
        for sample in report.samples:
            assert 0 <= sample.latency <= budget
