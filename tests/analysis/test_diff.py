"""Tests for cross-campaign diffing and the analyze regression gate."""

import pytest

from repro.analysis.diff import diff_reports
from repro.analysis.engine import analyze_campaign
from repro.core.experiment import Injection, Termination
from repro.core.locations import FaultLocation
from repro.db import GoofiDatabase
from tests.conftest import make_campaign
from tests.db.test_database import make_reference, make_result


def _result(i, detected: bool, campaign="test-campaign"):
    termination = (
        Termination(kind="trap", pc=1, cycle=50, trap_name="wdog")
        if detected
        else Termination(kind="timeout", pc=2, cycle=999)
    )
    return make_result(
        i,
        campaign=campaign,
        termination=termination,
        injections=[
            Injection(
                time=i % 90,
                location=FaultLocation(
                    "scan:internal", f"cpu.regfile.r{i % 4}", i % 8
                ),
                op="flip",
                bit_before=0,
                bit_after=1,
            )
        ],
    )


def _report(detected_count, total, campaign_kw=None):
    """An analyzed in-memory campaign with the given detected/total mix.

    Every experiment is effective (trap or timeout), so detection
    coverage is detected/total exactly."""
    db = GoofiDatabase(":memory:")
    campaign = make_campaign(
        n_experiments=total, **(campaign_kw or {})
    )
    db.save_campaign(campaign)
    db.log_reference(campaign, make_reference())
    db.log_experiments(
        campaign,
        [
            _result(
                i,
                detected=i < detected_count,
                campaign=campaign.campaign_name,
            )
            for i in range(total)
        ],
    )
    report = analyze_campaign(db, campaign.campaign_name)
    config = db.load_campaign(campaign.campaign_name).to_dict()
    db.close()
    return report, config


class TestSameConfigDiff:
    def test_identical_runs_pass(self):
        base, base_config = _report(40, 100)
        fresh, fresh_config = _report(40, 100)
        diff = diff_reports(base, fresh, base_config, fresh_config)
        assert diff.same_config
        assert not diff.regressed
        assert diff.config_delta == {}
        assert diff.tv_distance == pytest.approx(0.0)

    def test_significant_coverage_drop_regresses(self):
        base, base_config = _report(80, 100)
        fresh, fresh_config = _report(30, 100)
        diff = diff_reports(base, fresh, base_config, fresh_config)
        assert diff.same_config
        assert diff.regressed
        by_name = {metric.name: metric for metric in diff.metrics}
        assert by_name["detection_coverage"].regressed
        assert by_name["detection_coverage"].comparison.significant_05

    def test_drift_inside_tolerance_band_passes(self):
        # 80.0% -> 78.5% detection (and 20% -> 21.5% escaped) stays
        # inside a 10% relative band on both gated metrics, so the gate
        # must not fire regardless of what the z-test says.
        base, base_config = _report(800, 1000)
        fresh, fresh_config = _report(785, 1000)
        diff = diff_reports(
            base, fresh, base_config, fresh_config, tolerance=0.1
        )
        assert not diff.regressed

    def test_insignificant_drop_outside_band_passes(self):
        # Tiny samples: 4/5 -> 2/5 leaves the band but cannot be
        # statistically significant, so the gate must not fire.
        base, base_config = _report(4, 5)
        fresh, fresh_config = _report(2, 5)
        diff = diff_reports(base, fresh, base_config, fresh_config)
        assert not diff.regressed

    def test_improvement_never_regresses(self):
        base, base_config = _report(30, 100)
        fresh, fresh_config = _report(80, 100)
        diff = diff_reports(base, fresh, base_config, fresh_config)
        assert not diff.regressed

    def test_outcome_delta_has_z_tests(self):
        base, base_config = _report(80, 100)
        fresh, fresh_config = _report(30, 100)
        diff = diff_reports(base, fresh, base_config, fresh_config)
        row = diff.outcome_delta["detected"]
        assert row["base_count"] == 80
        assert row["fresh_count"] == 30
        assert row["significant_05"]
        assert diff.tv_distance == pytest.approx(0.5)

    def test_render_verdict(self):
        base, base_config = _report(80, 100)
        fresh, fresh_config = _report(30, 100)
        diff = diff_reports(base, fresh, base_config, fresh_config)
        assert "verdict: REGRESSION" in diff.render()


class TestChangedConfigDiff:
    def test_config_delta_reported_and_never_gated(self):
        base, base_config = _report(80, 100)
        fresh, fresh_config = _report(
            30, 100, campaign_kw={"seed": 999, "workload_name": "bubblesort"}
        )
        diff = diff_reports(base, fresh, base_config, fresh_config)
        assert not diff.same_config
        # Even a catastrophic coverage drop is not a regression when the
        # configs differ — it is an expected consequence of the change.
        assert not diff.regressed
        assert "seed" in diff.config_delta
        assert diff.config_delta["seed"] == {"base": 1234, "fresh": 999}
        assert "workload_name" in diff.config_delta
        text = diff.render()
        assert "configs differ" in text
        assert "seed" in text

    def test_invalid_tolerance_rejected(self):
        base, base_config = _report(5, 10)
        with pytest.raises(ValueError):
            diff_reports(base, base, base_config, base_config, tolerance=1.0)
