"""Tests for exact (Clopper-Pearson) intervals and sequential stopping."""

import random

import pytest

from repro.analysis.coverage import wilson_interval
from repro.analysis.intervals import (
    clopper_pearson_interval,
    regularized_incomplete_beta,
)
from repro.analysis.stopping import stopping_advice


class TestRegularizedIncompleteBeta:
    def test_boundaries(self):
        assert regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
        assert regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0

    def test_uniform_case_is_identity(self):
        # Beta(1,1) is the uniform distribution: I_x(1,1) = x.
        for x in (0.1, 0.25, 0.5, 0.9):
            assert regularized_incomplete_beta(1.0, 1.0, x) == pytest.approx(x)

    def test_symmetry(self):
        # I_x(a,b) = 1 - I_{1-x}(b,a)
        value = regularized_incomplete_beta(3.0, 7.0, 0.2)
        mirror = regularized_incomplete_beta(7.0, 3.0, 0.8)
        assert value == pytest.approx(1.0 - mirror, abs=1e-10)

    def test_monotone_in_x(self):
        values = [
            regularized_incomplete_beta(4.5, 2.5, x / 20.0)
            for x in range(21)
        ]
        assert values == sorted(values)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            regularized_incomplete_beta(0.0, 1.0, 0.5)


class TestClopperPearsonGoldenValues:
    def test_published_5_of_10(self):
        # Classic textbook case: k=5, n=10 at 95%.
        lo, hi = clopper_pearson_interval(5, 10, 0.95)
        assert lo == pytest.approx(0.1871, abs=2e-4)
        assert hi == pytest.approx(0.8129, abs=2e-4)

    def test_zero_trials_is_vacuous(self):
        assert clopper_pearson_interval(0, 0) == (0.0, 1.0)

    def test_zero_successes_pins_lower(self):
        lo, hi = clopper_pearson_interval(0, 20, 0.95)
        assert lo == 0.0
        # Rule of three: upper ≈ 1 - (alpha/2)^(1/n)
        assert hi == pytest.approx(1.0 - 0.025 ** (1 / 20), abs=1e-9)

    def test_all_successes_pins_upper(self):
        lo, hi = clopper_pearson_interval(20, 20, 0.95)
        assert hi == 1.0
        assert lo == pytest.approx(0.025 ** (1 / 20), abs=1e-9)

    def test_invalid_samples_rejected(self):
        with pytest.raises(ValueError):
            clopper_pearson_interval(5, 3)
        with pytest.raises(ValueError):
            clopper_pearson_interval(-1, 3)
        with pytest.raises(ValueError):
            clopper_pearson_interval(1, 2, confidence=1.0)


class TestIntervalProperties:
    """Property tests over random (k, n, confidence) samples."""

    def _samples(self, n_samples=300, seed=20260808):
        rng = random.Random(seed)
        for _ in range(n_samples):
            n = rng.randint(1, 400)
            k = rng.randint(0, n)
            confidence = rng.choice([0.90, 0.95, 0.99])
            yield k, n, confidence

    def test_both_intervals_contain_the_point_estimate(self):
        for k, n, confidence in self._samples():
            p = k / n
            for fn in (wilson_interval, clopper_pearson_interval):
                lo, hi = fn(k, n, confidence)
                assert lo - 1e-12 <= p <= hi + 1e-12, (k, n, confidence, fn)

    def test_bounds_stay_in_unit_interval(self):
        for k, n, confidence in self._samples():
            for fn in (wilson_interval, clopper_pearson_interval):
                lo, hi = fn(k, n, confidence)
                assert 0.0 <= lo <= hi <= 1.0, (k, n, confidence, fn)

    def test_exact_interval_never_narrower_away_from_boundary(self):
        # Mathematical caveat: Clopper-Pearson is NOT uniformly wider
        # than Wilson — very close to k=0 / k=n (min(k, n-k) ≤ ~6 at
        # 99% confidence) the exact interval's pinned endpoint can make
        # it the narrower one. Away from that boundary band the
        # conservative-exact ordering holds, which is what this asserts.
        checked = 0
        for k, n, confidence in self._samples(n_samples=600):
            if min(k, n - k) < 8:
                continue
            w_lo, w_hi = wilson_interval(k, n, confidence)
            c_lo, c_hi = clopper_pearson_interval(k, n, confidence)
            assert (c_hi - c_lo) >= (w_hi - w_lo) - 1e-9, (k, n, confidence)
            checked += 1
        assert checked > 100  # the filter must not hollow out the test

    def test_higher_confidence_widens(self):
        for k, n in [(3, 10), (50, 100), (1, 30)]:
            widths = []
            for confidence in (0.90, 0.95, 0.99):
                lo, hi = clopper_pearson_interval(k, n, confidence)
                widths.append(hi - lo)
            assert widths == sorted(widths)


class TestStoppingAdvice:
    def test_no_trials_is_vacuous_and_unsatisfied(self):
        advice = stopping_advice(0, 0, target_half_width=0.05)
        assert not advice.satisfied
        assert advice.half_width == pytest.approx(0.5)
        assert advice.additional_trials >= 1

    def test_tight_sample_satisfies(self):
        advice = stopping_advice(500, 1000, target_half_width=0.05)
        assert advice.satisfied
        assert advice.additional_trials == 0
        assert advice.half_width <= 0.05

    def test_half_width_matches_wilson(self):
        advice = stopping_advice(8, 24, target_half_width=0.05)
        lo, hi = wilson_interval(8, 24, 0.95)
        assert advice.half_width == pytest.approx((hi - lo) / 2.0)

    def test_additional_trials_shrinks_as_sample_grows(self):
        small = stopping_advice(5, 20, target_half_width=0.02)
        large = stopping_advice(50, 200, target_half_width=0.02)
        assert large.additional_trials < small.additional_trials

    def test_boundary_estimate_is_clamped_in_planning(self):
        # A lucky 0/5 must not claim the goal is one experiment away.
        advice = stopping_advice(0, 5, target_half_width=0.05)
        assert advice.additional_trials > 10

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            stopping_advice(1, 2, target_half_width=0.0)

    def test_describe_and_to_dict(self):
        advice = stopping_advice(8, 24, target_half_width=0.1)
        text = advice.describe()
        assert "8/24" in text and "continue" in text
        payload = advice.to_dict()
        assert payload["satisfied"] is False
        assert payload["metric"] == "detection_coverage"
