"""Tests for fault-space accounting and planning statistics."""

import pytest

from repro.analysis.faultspace import (
    FaultSpace,
    PrunedFaultSpace,
    campaign_fault_space,
    compare_proportions,
    effective_fault_space,
    required_experiments,
)
from tests.conftest import make_campaign


class TestFaultSpace:
    def test_size_and_fraction(self):
        space = FaultSpace(n_locations=512, n_instants=1000)
        assert space.size == 512_000
        assert space.sampled_fraction(512) == pytest.approx(1e-3)

    def test_describe(self):
        text = FaultSpace(10, 100).describe(n_experiments=5)
        assert "10 locations" in text
        assert "5 experiments" in text

    def test_from_campaign(self, thor_target):
        campaign = make_campaign()
        thor_target.read_campaign_data(campaign)
        reference = thor_target.make_reference_run()
        space = campaign_fault_space(
            campaign, thor_target.location_space(), reference.duration_cycles
        )
        assert space.n_locations == 16 * 32  # the register file
        assert space.n_instants == reference.duration_cycles


class TestPrunedFaultSpace:
    def test_effective_size_and_ratio(self):
        pruned = PrunedFaultSpace(
            raw=FaultSpace(100, 10), live_fraction=0.25
        )
        assert pruned.effective_size == 250
        assert pruned.pruning_ratio == pytest.approx(0.75)
        assert "75.0% pruned" in pruned.describe()

    @pytest.mark.parametrize("mode", ["dynamic", "static", "hybrid"])
    def test_from_campaign_oracles(self, thor_target, mode):
        campaign = make_campaign(
            use_preinjection=True, preinjection_mode=mode
        )
        thor_target.read_campaign_data(campaign)
        reference = thor_target.make_reference_run()
        oracle = thor_target.build_preinjection_analysis(reference.trace)
        pruned = effective_fault_space(
            campaign,
            thor_target.location_space(),
            reference.duration_cycles,
            oracle,
            max_samples=2048,
        )
        assert 0.0 < pruned.live_fraction < 1.0
        assert pruned.pruning_ratio > 0.0
        assert 0 < pruned.effective_size < pruned.raw.size

    def test_static_never_prunes_more_than_dynamic(self, thor_target):
        campaign = make_campaign(use_preinjection=True)
        thor_target.read_campaign_data(campaign)
        reference = thor_target.make_reference_run()
        fractions = {}
        for mode in ("dynamic", "static"):
            thor_target.read_campaign_data(
                campaign.modified(preinjection_mode=mode)
            )
            oracle = thor_target.build_preinjection_analysis(reference.trace)
            fractions[mode] = effective_fault_space(
                campaign,
                thor_target.location_space(),
                reference.duration_cycles,
                oracle,
                max_samples=2048,
            ).live_fraction
        assert fractions["static"] >= fractions["dynamic"]


class TestSampleSizePlanning:
    def test_worst_case_95(self):
        # The classic n = 384 for +-5% at 95% on p=0.5.
        assert required_experiments(0.5, 0.05) == 385

    def test_narrower_needs_more(self):
        assert required_experiments(0.5, 0.01) > required_experiments(0.5, 0.05)

    def test_known_small_proportion_needs_fewer(self):
        assert required_experiments(0.1, 0.05) < required_experiments(0.5, 0.05)

    def test_higher_confidence_needs_more(self):
        assert required_experiments(0.5, 0.05, 0.99) > required_experiments(
            0.5, 0.05, 0.95
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            required_experiments(1.5, 0.05)
        with pytest.raises(ValueError):
            required_experiments(0.5, 0.0)


class TestProportionComparison:
    def test_clear_difference_significant(self):
        result = compare_proportions(60, 100, 20, 100)
        assert result.significant_05
        assert result.z > 0
        assert result.p_value < 0.001

    def test_identical_not_significant(self):
        result = compare_proportions(30, 100, 30, 100)
        assert not result.significant_05
        assert result.p_value == pytest.approx(1.0)

    def test_small_samples_usually_not_significant(self):
        result = compare_proportions(3, 10, 1, 10)
        assert not result.significant_05

    def test_direction_of_z(self):
        assert compare_proportions(10, 100, 40, 100).z < 0

    def test_degenerate_zero_se(self):
        result = compare_proportions(0, 10, 0, 10)
        assert result.p_value == 1.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            compare_proportions(5, 0, 1, 10)
        with pytest.raises(ValueError):
            compare_proportions(11, 10, 1, 10)

    def test_describe(self):
        text = compare_proportions(60, 100, 20, 100).describe()
        assert "significant" in text
        assert "z=" in text


class TestCollapsedFaultSpace:
    @staticmethod
    def _collapsed(n_experiments=40, n_executed=16):
        from repro.analysis.faultspace import collapsed_fault_space
        from repro.staticanalysis.equivalence import PartitionStats

        pruned = PrunedFaultSpace(
            raw=FaultSpace(n_locations=64, n_instants=1000),
            live_fraction=0.5,
        )
        stats = PartitionStats(
            n_experiments=n_experiments,
            n_classes=n_executed,
            n_executed=n_executed,
            n_derived=n_experiments - n_executed,
            n_singletons=4,
            n_region_classes=10,
            n_stop_classes=2,
        )
        return collapsed_fault_space(pruned, stats)

    def test_collapse_ratio(self):
        collapsed = self._collapsed()
        assert collapsed.collapse_ratio == pytest.approx(2.5)
        assert collapsed.n_derived == 24

    def test_degenerate_zero_executed(self):
        collapsed = self._collapsed(n_experiments=0, n_executed=0)
        assert collapsed.collapse_ratio == 1.0

    def test_describe_chains_all_accountings(self):
        text = self._collapsed().describe()
        assert "equivalence classes" in text
        assert "2.50x collapse" in text
        assert "pruned" in text  # the wrapped PrunedFaultSpace line

    def test_duck_typed_stats_accepted(self):
        from repro.analysis.faultspace import collapsed_fault_space

        class FakeStats:
            n_experiments = 10
            n_classes = 5
            n_executed = 5
            n_derived = 5
            n_singletons = 1

        pruned = PrunedFaultSpace(
            raw=FaultSpace(8, 100), live_fraction=1.0
        )
        collapsed = collapsed_fault_space(pruned, FakeStats())
        assert collapsed.collapse_ratio == 2.0
