"""Tests for the streaming analytics engine (``goofi analyze``)."""

import pytest

from repro.analysis import classify_campaign
from repro.analysis.engine import analyze_campaign
from repro.analysis.heatmap import OutcomeHeatmap, PropagationHeatmap
from repro.core.experiment import Injection, Termination
from repro.core.locations import FaultLocation
from repro.observability.runmeta import campaign_config_hash
from tests.conftest import make_campaign
from tests.db.test_database import make_reference, make_result


def _mixed_results(n=40, campaign="test-campaign"):
    """Deterministic mix of every outcome class, with injections that
    sweep locations and injection times."""
    results = []
    for i in range(n):
        kw = {
            "injections": [
                Injection(
                    time=(i * 13) % 100,
                    location=FaultLocation(
                        "scan:internal", f"cpu.regfile.r{i % 4}", i % 8
                    ),
                    op="flip" if i % 2 else "stuck0",
                    bit_before=0,
                    bit_after=1,
                )
            ]
        }
        if i % 5 == 0:
            kw["termination"] = Termination(
                kind="trap", pc=1, cycle=50, trap_name="wdog"
            )
        elif i % 5 == 1:
            kw["termination"] = Termination(kind="timeout", pc=2, cycle=999)
        elif i % 5 == 2:
            kw["outputs"] = {"total": 99}
        elif i % 5 == 3:
            kw["state_vector"] = {
                "scan:internal/cpu.pc": 0x110,
                "scan:internal/cpu.regfile.r2": 7,
            }
        if i % 7 == 0 and i > 0:
            kw["derived_from"] = f"{campaign}-exp00000"
        results.append(make_result(i, campaign=campaign, **kw))
    return results


def _populate(db, n=40, name="test-campaign", detail=False):
    campaign = make_campaign(campaign_name=name, n_experiments=n)
    db.save_campaign(campaign)
    ref_kw = {}
    if detail:
        ref_kw["detail_states"] = [
            {"scan:internal/cpu.pc": i, "scan:internal/cpu.regfile.r1": 5}
            for i in range(10)
        ]
    db.log_reference(campaign, make_reference(**ref_kw))
    db.log_experiments(campaign, _mixed_results(n, campaign=name))
    return campaign


class TestAnalyzeCampaign:
    def test_streaming_counts_match_batch_classifier(self, db):
        _populate(db, n=40)
        report = analyze_campaign(db, "test-campaign")
        reference = db.load_reference("test-campaign")
        batch = classify_campaign(
            db.load_experiments("test-campaign"), reference
        )
        assert report.summary.total == batch.total == 40
        assert report.summary.counts == batch.counts
        assert (
            report.summary.detections_by_mechanism
            == batch.detections_by_mechanism
        )

    def test_batch_size_does_not_change_the_report(self, db):
        _populate(db, n=37)
        small = analyze_campaign(db, "test-campaign", batch_size=3)
        large = analyze_campaign(db, "test-campaign", batch_size=4096)
        assert small.to_dict() == large.to_dict()

    def test_report_dict_is_deterministic_and_json_safe(self, db):
        import json

        _populate(db, n=20)
        first = analyze_campaign(db, "test-campaign").to_dict()
        second = analyze_campaign(db, "test-campaign").to_dict()
        assert first == second
        json.dumps(first)  # no exotic types

    def test_config_hash_matches_stored_campaign(self, db):
        campaign = _populate(db, n=10)
        report = analyze_campaign(db, "test-campaign")
        assert report.config_hash == campaign_config_hash(campaign)

    def test_equivalence_accounting(self, db):
        _populate(db, n=40)
        report = analyze_campaign(db, "test-campaign")
        expected_derived = len([i for i in range(40) if i % 7 == 0 and i > 0])
        assert report.n_derived == expected_derived
        assert report.n_executed == 40 - expected_derived
        assert report.n_representatives == 1
        payload = report.to_dict()["equivalence"]
        assert payload["derived"] == expected_derived
        assert payload["derived_fraction"] == pytest.approx(
            expected_derived / 40
        )

    def test_both_intervals_in_payload(self, db):
        _populate(db, n=40)
        payload = analyze_campaign(db, "test-campaign").to_dict()
        coverage = payload["detection_coverage"]
        w_lo, w_hi = coverage["interval"]
        c_lo, c_hi = coverage["exact_interval"]
        assert 0.0 <= w_lo <= w_hi <= 1.0
        assert 0.0 <= c_lo <= c_hi <= 1.0
        assert c_lo <= coverage["estimate"] <= c_hi

    def test_breakdowns_partition_the_injected_rows(self, db):
        _populate(db, n=40)
        payload = analyze_campaign(db, "test-campaign").to_dict()
        assert sum(
            row["total"] for row in payload["by_technique"].values()
        ) == 40
        assert sum(
            row["total"] for row in payload["by_location"].values()
        ) == 40
        assert set(payload["by_technique"]) == {"flip", "stuck0"}

    def test_propagation_heatmap_from_detail_rows(self, db):
        campaign = make_campaign()
        db.save_campaign(campaign)
        db.log_reference(
            campaign,
            make_reference(
                detail_states=[
                    {"scan:internal/cpu.regfile.r1": 5} for _ in range(10)
                ]
            ),
        )
        result = make_result(
            0,
            detail_states=[
                {"scan:internal/cpu.regfile.r1": 5 if i < 5 else 6}
                for i in range(10)
            ],
        )
        db.log_experiment(campaign, result)
        report = analyze_campaign(db, "test-campaign")
        prop = report.propagation.to_dict()
        assert prop["n_traces"] == 1
        assert "scan:internal/cpu.regfile.r1" in prop["rows"]
        # Infections live in the back half of the trace only.
        counts = prop["rows"]["scan:internal/cpu.regfile.r1"]
        mid = len(counts) // 2
        assert sum(counts[:mid]) == 0
        assert sum(counts[mid:]) == 5

    def test_stopping_advice_reflects_epsilon(self, db):
        _populate(db, n=40)
        loose = analyze_campaign(db, "test-campaign", epsilon=0.49)
        tight = analyze_campaign(db, "test-campaign", epsilon=0.01)
        assert loose.stopping.satisfied
        assert not tight.stopping.satisfied
        assert tight.stopping.additional_trials > 0

    def test_render_mentions_the_load_bearing_sections(self, db):
        _populate(db, n=40)
        text = analyze_campaign(db, "test-campaign").render()
        assert "detection coverage" in text
        assert "Clopper-Pearson" in text
        assert "stopping advice" in text
        assert "location x injection time" in text

    def test_missing_reference_raises(self, db):
        campaign = make_campaign()
        db.save_campaign(campaign)
        from repro.util.errors import DatabaseError

        with pytest.raises(DatabaseError):
            analyze_campaign(db, "test-campaign")

    def test_gauges_exported_when_metrics_enabled(self, db, tmp_path):
        from repro.observability import configure, disable, get_observability

        _populate(db, n=40)
        configure(metrics=True)
        try:
            analyze_campaign(db, "test-campaign", batch_size=8)
            snapshot = get_observability().metrics.snapshot()
        finally:
            disable()
        gauges = snapshot["gauges"]
        assert gauges["analysis.rows_processed"] == 40
        assert 0.0 < gauges["analysis.ci_half_width"] <= 0.5
        assert snapshot["counters"]["analysis.reports_total"] == 1


class TestOutcomeHeatmap:
    def test_bins_cover_and_clamp(self):
        heatmap = OutcomeHeatmap(max_time=100, time_bins=10)
        heatmap.add("s/cpu.a[0]", 0, True, False)
        heatmap.add("s/cpu.a[3]", 100, True, True)  # same cell, last bin
        heatmap.add("s/cpu.a[1]", 5000, False, False)  # overflow clamps
        payload = heatmap.to_dict()
        assert payload["n_locations"] == 1
        row = payload["rows"]["s/cpu.a"]
        assert row["counts"][0] == 1
        assert row["counts"][-1] == 2
        assert sum(row["effective"]) == 2
        assert sum(row["detected"]) == 1

    def test_row_cap_keeps_busiest(self):
        heatmap = OutcomeHeatmap(max_time=10, time_bins=4, max_rows=2)
        for i in range(5):
            for _ in range(i + 1):
                heatmap.add(f"s/cpu.r{i}[0]", 1, True, False)
        payload = heatmap.to_dict()
        assert payload["n_locations"] == 5
        assert set(payload["rows"]) == {"s/cpu.r4", "s/cpu.r3"}

    def test_render_empty(self):
        assert "(no data)" in OutcomeHeatmap(max_time=10).render()


class TestPropagationHeatmap:
    def test_normalises_trace_lengths(self):
        heatmap = PropagationHeatmap(time_bins=4)
        # Short trace infected at its end, long trace infected at its end:
        # both must land in the final bin.
        heatmap.add_trace([{"c": 0}] * 4, [{"c": 0}] * 3 + [{"c": 1}])
        heatmap.add_trace([{"c": 0}] * 40, [{"c": 0}] * 39 + [{"c": 1}])
        payload = heatmap.to_dict()
        assert payload["n_traces"] == 2
        assert payload["rows"]["c"][-1] == 2
        assert sum(payload["rows"]["c"][:-1]) == 0

    def test_empty_traces_ignored(self):
        heatmap = PropagationHeatmap()
        heatmap.add_trace([], [])
        assert heatmap.to_dict()["n_traces"] == 0
