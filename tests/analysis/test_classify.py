"""Unit tests for outcome classification (paper Section 3.4)."""

import pytest

from repro.analysis.classify import (
    Outcome,
    classify_campaign,
    classify_experiment,
    diff_outputs,
    diff_state_vectors,
)
from repro.core.experiment import ExperimentResult, ReferenceRun, Termination
from repro.util.errors import CampaignError


def make_reference():
    return ReferenceRun(
        duration_cycles=100,
        duration_instructions=50,
        termination=Termination(kind="halt", pc=0x110, cycle=100),
        state_vector={"scan:internal/cpu.regfile.r1": 5,
                      "scan:internal/cpu.cycle_counter": 100},
        outputs={"total": 55, "env.max_abs_error": 10},
    )


def make_result(
    kind="halt",
    trap_name="",
    outputs=None,
    state=None,
    **kw,
):
    return ExperimentResult(
        name="c-exp00000",
        index=0,
        campaign_name="c",
        termination=Termination(kind=kind, trap_name=trap_name, pc=0, cycle=0),
        outputs=outputs if outputs is not None else {"total": 55},
        state_vector=state
        if state is not None
        else {"scan:internal/cpu.regfile.r1": 5,
              "scan:internal/cpu.cycle_counter": 123},
        **kw,
    )


class TestSingleClassification:
    def test_trap_is_detected_with_mechanism(self):
        classification = classify_experiment(
            make_result(kind="trap", trap_name="dcache_parity"),
            make_reference(),
        )
        assert classification.outcome is Outcome.DETECTED
        assert classification.mechanism == "dcache_parity"

    def test_timeout_is_timing_escape(self):
        classification = classify_experiment(
            make_result(kind="timeout"), make_reference()
        )
        assert classification.outcome is Outcome.ESCAPED_TIMING

    def test_wrong_output_is_value_escape(self):
        classification = classify_experiment(
            make_result(outputs={"total": 99}), make_reference()
        )
        assert classification.outcome is Outcome.ESCAPED_VALUE
        assert classification.wrong_outputs == ("total",)

    def test_state_difference_is_latent(self):
        classification = classify_experiment(
            make_result(state={"scan:internal/cpu.regfile.r1": 6,
                               "scan:internal/cpu.cycle_counter": 100}),
            make_reference(),
        )
        assert classification.outcome is Outcome.LATENT
        assert "scan:internal/cpu.regfile.r1" in classification.diff_cells

    def test_identical_is_overwritten(self):
        classification = classify_experiment(make_result(), make_reference())
        assert classification.outcome is Outcome.OVERWRITTEN

    def test_cycle_counter_difference_ignored(self):
        # The volatile counters never make an experiment latent.
        classification = classify_experiment(
            make_result(state={"scan:internal/cpu.regfile.r1": 5,
                               "scan:internal/cpu.cycle_counter": 999}),
            make_reference(),
        )
        assert classification.outcome is Outcome.OVERWRITTEN

    def test_env_metrics_not_value_failures(self):
        classification = classify_experiment(
            make_result(outputs={"total": 55, "env.max_abs_error": 999}),
            make_reference(),
        )
        assert classification.outcome is not Outcome.ESCAPED_VALUE

    def test_changed_termination_kind_is_timing_escape(self):
        classification = classify_experiment(
            make_result(kind="max_iterations"), make_reference()
        )
        assert classification.outcome is Outcome.ESCAPED_TIMING

    def test_missing_termination_rejected(self):
        result = make_result()
        result.termination = None
        with pytest.raises(CampaignError):
            classify_experiment(result, make_reference())

    def test_effectiveness_property(self):
        assert Outcome.DETECTED.is_effective
        assert Outcome.ESCAPED_VALUE.is_effective
        assert not Outcome.LATENT.is_effective
        assert not Outcome.OVERWRITTEN.is_effective
        assert Outcome.ESCAPED_TIMING.is_escaped


class TestDiffs:
    def test_diff_state_vectors(self):
        diffs = diff_state_vectors({"a": 1, "b": 2}, {"a": 1, "b": 3})
        assert diffs == ["b"]

    def test_diff_missing_cell_ignored(self):
        assert diff_state_vectors({"a": 1}, {}) == []

    def test_diff_outputs(self):
        assert diff_outputs({"x": 1, "y": 2}, {"x": 1, "y": 9}) == ["y"]


class TestCampaignAggregation:
    def test_counts_and_fractions(self):
        reference = make_reference()
        results = [
            make_result(kind="trap", trap_name="icache_parity"),
            make_result(kind="trap", trap_name="icache_parity"),
            make_result(kind="trap", trap_name="illegal_opcode"),
            make_result(outputs={"total": 1}),
            make_result(kind="timeout"),
            make_result(),
            make_result(),
        ]
        summary = classify_campaign(results, reference)
        assert summary.total == 7
        assert summary.detected == 3
        assert summary.escaped == 2
        assert summary.effective == 5
        assert summary.non_effective == 2
        assert summary.detections_by_mechanism == {
            "icache_parity": 2,
            "illegal_opcode": 1,
        }
        assert summary.fraction(Outcome.DETECTED) == pytest.approx(3 / 7)

    def test_rows_cover_paper_taxonomy(self):
        summary = classify_campaign([make_result()], make_reference())
        labels = [row[0] for row in summary.as_rows()]
        assert "effective" in labels
        assert "non-effective" in labels
        assert "  latent" in labels
        assert "  overwritten" in labels

    def test_empty_campaign(self):
        summary = classify_campaign([], make_reference())
        assert summary.total == 0
        assert summary.effective == 0
        assert summary.fraction(Outcome.DETECTED) == 0.0
