"""Unit tests for coverage estimation."""

import pytest

from repro.analysis.classify import (
    Outcome,
    CampaignClassification,
)
from repro.analysis.coverage import (
    CoverageEstimate,
    detection_coverage,
    effectiveness_ratio,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.30 < hi

    def test_bounds_within_unit_interval(self):
        for successes, trials in [(0, 10), (10, 10), (1, 1), (5, 7)]:
            lo, hi = wilson_interval(successes, trials)
            assert 0.0 <= lo <= hi <= 1.0

    def test_zero_trials_gives_vacuous_interval(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrower_with_more_trials(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_higher_confidence_is_wider(self):
        lo90, hi90 = wilson_interval(50, 100, 0.90)
        lo99, hi99 = wilson_interval(50, 100, 0.99)
        assert (hi99 - lo99) > (hi90 - lo90)

    def test_perfect_coverage_interval_below_one(self):
        # With 14/14 the lower bound must be meaningfully below 1.0 — the
        # reason campaigns need intervals at all.
        lo, hi = wilson_interval(14, 14)
        assert hi == 1.0
        assert 0.7 < lo < 1.0

    def test_invalid_sample_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    def test_nonstandard_confidence_approximation(self):
        lo, hi = wilson_interval(50, 100, confidence=0.93)
        lo95, hi95 = wilson_interval(50, 100, confidence=0.95)
        lo90, hi90 = wilson_interval(50, 100, confidence=0.90)
        assert (hi90 - lo90) < (hi - lo) < (hi95 - lo95)


def make_summary(detected, escaped, latent, overwritten):
    summary = CampaignClassification(
        total=detected + escaped + latent + overwritten
    )
    summary.counts = {
        Outcome.DETECTED: detected,
        Outcome.ESCAPED_VALUE: escaped,
        Outcome.LATENT: latent,
        Outcome.OVERWRITTEN: overwritten,
    }
    return summary


class TestCoverageEstimates:
    def test_detection_coverage_uses_effective_only(self):
        summary = make_summary(detected=8, escaped=2, latent=5, overwritten=5)
        estimate = detection_coverage(summary)
        assert estimate.successes == 8
        assert estimate.trials == 10
        assert estimate.estimate == pytest.approx(0.8)

    def test_effectiveness_ratio_uses_total(self):
        summary = make_summary(detected=8, escaped=2, latent=5, overwritten=5)
        estimate = effectiveness_ratio(summary)
        assert estimate.trials == 20
        assert estimate.estimate == pytest.approx(0.5)

    def test_estimate_str_format(self):
        estimate = CoverageEstimate(successes=9, trials=10, confidence=0.95)
        text = str(estimate)
        assert "0.900" in text
        assert "9/10" in text

    def test_zero_trials(self):
        estimate = CoverageEstimate(successes=0, trials=0, confidence=0.95)
        assert estimate.estimate == 0.0
        assert estimate.interval == (0.0, 1.0)
