"""Integration tests for equivalence-collapsed campaign execution.

``preinjection_mode="equivalence"`` plans the same fault list as static
mode, partitions it, executes one representative per class, and derives
the remaining members' results statically. These tests pin the serial
path: byte-identical outcomes vs static mode, derived-result provenance,
the ``verify_equivalence`` hard-fail contract, and the exclusions
(detail logging, non-partitionable techniques).
"""

import dataclasses

import pytest

from repro.core import CampaignController, create_target
from repro.db import GoofiDatabase
from repro.util.errors import CampaignError
from tests.conftest import make_campaign

PATTERNS = [
    "scan:internal/cpu.regfile.r5",
    "scan:internal/cpu.regfile.r10",
]


def equivalence_campaign(**overrides):
    defaults = dict(
        campaign_name="equiv-test",
        preinjection_mode="equivalence",
        use_preinjection=True,
        location_patterns=PATTERNS,
        n_experiments=20,
    )
    defaults.update(overrides)
    return make_campaign(**defaults)


def canonical(sink):
    rows = []
    for result in sink.results:
        data = dataclasses.asdict(result)
        data["wall_seconds"] = 0.0
        data["derived_from"] = None
        rows.append(data)
    return rows


class TestSerialCollapse:
    def test_matches_static_mode_byte_for_byte(self):
        static = equivalence_campaign(preinjection_mode="static")
        equiv = equivalence_campaign()
        static_sink = create_target("thor-rd").run_campaign(static)
        equiv_sink = create_target("thor-rd").run_campaign(equiv)
        assert canonical(equiv_sink) == canonical(static_sink)

    def test_derived_results_present_and_attributed(self):
        campaign = equivalence_campaign()
        target = create_target("thor-rd")
        sink = target.run_campaign(campaign)
        derived = [r for r in sink.results if r.derived_from is not None]
        assert derived, "expected at least one collapsed experiment"
        names = {r.name for r in sink.results}
        for result in derived:
            # Derived results point at an executed representative...
            assert result.derived_from in names
            rep = next(
                r for r in sink.results if r.name == result.derived_from
            )
            assert rep.derived_from is None
            # ...and copy its terminal outcome verbatim.
            assert result.termination.to_dict() == rep.termination.to_dict()
            assert result.outputs == rep.outputs
            assert result.state_vector == rep.state_vector
            assert result.wall_seconds == 0.0

    def test_derived_injections_keep_member_times(self):
        campaign = equivalence_campaign()
        target = create_target("thor-rd")
        sink = target.run_campaign(campaign)
        reference = target.prepare_run(campaign)
        derived = [r for r in sink.results if r.derived_from is not None]
        assert derived
        for result in derived:
            plan = target.plan_experiment(result.index, reference)
            planned_times = [a.time for a in plan.sorted_actions()]
            assert [i.time for i in result.injections] == planned_times

    def test_full_verification_passes(self):
        campaign = equivalence_campaign(n_experiments=12)
        target = create_target("thor-rd")
        target.verify_equivalence = 1.0
        sink = target.run_campaign(campaign)
        assert len(sink.results) == 12

    def test_detail_mode_disables_collapse(self):
        campaign = equivalence_campaign(
            logging_mode="detail", n_experiments=6
        )
        sink = create_target("thor-rd").run_campaign(campaign)
        assert all(r.derived_from is None for r in sink.results)

    def test_swifi_never_collapses(self):
        campaign = equivalence_campaign(
            technique="swifi-runtime",
            location_patterns=["memory:data/*"],
            n_experiments=6,
        )
        sink = create_target("thor-rd").run_campaign(campaign)
        assert all(r.derived_from is None for r in sink.results)

    def test_static_mode_never_derives(self):
        campaign = equivalence_campaign(preinjection_mode="static")
        sink = create_target("thor-rd").run_campaign(campaign)
        assert all(r.derived_from is None for r in sink.results)


class TestVerificationContract:
    def _two_results(self):
        campaign = equivalence_campaign(n_experiments=8)
        target = create_target("thor-rd")
        sink = target.run_campaign(campaign)
        derived = next(
            r for r in sink.results if r.derived_from is not None
        )
        return target, derived

    def test_identical_results_accepted(self):
        target, derived = self._two_results()
        target.check_derived_outcome(derived.index, derived, derived)

    def test_output_divergence_raises(self):
        target, derived = self._two_results()
        actual = dataclasses.replace(derived)
        actual.outputs = dict(derived.outputs)
        actual.outputs["corrupted"] = 1
        with pytest.raises(CampaignError, match="outputs"):
            target.check_derived_outcome(derived.index, actual, derived)

    def test_state_vector_divergence_raises(self):
        target, derived = self._two_results()
        actual = dataclasses.replace(derived)
        actual.state_vector = dict(derived.state_vector)
        next_key = sorted(actual.state_vector)[0]
        actual.state_vector[next_key] = b"\x00"
        with pytest.raises(CampaignError, match="state_vector"):
            target.check_derived_outcome(derived.index, actual, derived)


class TestAccounting:
    def test_equivalence_metrics_counters(self):
        from repro.observability import configure, disable, get_observability

        configure(metrics=True)
        try:
            campaign = equivalence_campaign()
            create_target("thor-rd").run_campaign(campaign)
            snapshot = get_observability().metrics.snapshot()
            counters = snapshot.get("counters", snapshot)
            classes = counters.get("equivalence.classes", 0)
            executed = counters.get("equivalence.executed", 0)
            collapsed = counters.get("equivalence.collapsed", 0)
            assert classes >= 1
            assert executed == classes
            assert executed + collapsed == campaign.n_experiments
        finally:
            disable()

    def test_controller_progress_counts_derived(self):
        campaign = equivalence_campaign()
        controller = CampaignController(create_target("thor-rd"))
        controller.run(campaign)
        progress = controller.progress
        assert progress.n_derived > 0
        assert progress.n_derived < campaign.n_experiments

    def test_db_round_trip_preserves_provenance(self, db):
        campaign = equivalence_campaign()
        create_target("thor-rd").run_campaign(campaign, sink=db)
        loaded = db.load_experiments(campaign.campaign_name)
        assert len(loaded) == campaign.n_experiments
        derived = [r for r in loaded if r.derived_from is not None]
        assert derived
        names = {r.name for r in loaded}
        for result in derived:
            assert result.derived_from in names

    def test_derived_from_not_in_experiment_data_json(self, db):
        """Provenance lives in the derivedFrom column only — the
        experimentData JSON stays byte-identical to static mode."""
        campaign = equivalence_campaign()
        create_target("thor-rd").run_campaign(campaign, sink=db)
        rows = db.query(
            "SELECT experimentData FROM LoggedSystemState "
            "WHERE campaignName = ? AND isReference = 0",
            (campaign.campaign_name,),
        )
        assert rows
        for row in rows:
            assert "derived_from" not in row["experimentData"]
