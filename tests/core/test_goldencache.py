"""Unit tests for the golden-run disk cache (repro.core.goldencache).

Covers the store/load round trip, corruption and mislabel handling,
cache-hit reuse inside ``prepare_run`` (the second run skips the
reference execution entirely) and the invariant that a cached golden
run produces byte-identical campaign results.
"""

import pickle

import pytest

from repro.core import create_target
from repro.core.goldencache import (
    GoldenRun,
    GoldenRunCache,
    campaign_golden_key,
)
from tests.conftest import make_campaign


def prepared_target(cache, **overrides):
    target = create_target("thor-rd")
    target.golden_cache = cache
    campaign = make_campaign(n_experiments=2, **overrides)
    target.prepare_run(campaign)
    return target, campaign


class TestCacheBasics:
    def test_round_trip(self, tmp_path):
        cache = GoldenRunCache(tmp_path)
        target, campaign = prepared_target(cache)
        key = campaign_golden_key(campaign)
        assert cache.stores == 1 and len(cache) == 1

        entry = cache.load(key)
        assert isinstance(entry, GoldenRun)
        assert entry.config_hash == key
        assert entry.target_name == campaign.target_name
        assert (
            entry.reference.duration_cycles
            == target._reference.duration_cycles
        )
        assert entry.reference.outputs == target._reference.outputs

    def test_load_missing_key_is_miss(self, tmp_path):
        cache = GoldenRunCache(tmp_path)
        assert cache.load("deadbeef") is None
        assert cache.load(None) is None
        assert cache.misses == 1  # None key short-circuits, no miss.

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = GoldenRunCache(tmp_path)
        _, campaign = prepared_target(cache)
        key = campaign_golden_key(campaign)
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.load(key) is None

    def test_mislabelled_entry_is_miss(self, tmp_path):
        """An entry whose recorded hash disagrees with its filename key
        (e.g. a manually renamed file) must not be served."""
        cache = GoldenRunCache(tmp_path)
        _, campaign = prepared_target(cache)
        key = campaign_golden_key(campaign)
        entry = cache.load(key)
        entry.config_hash = "0" * 64
        with open(cache.path_for(key), "wb") as handle:
            pickle.dump(entry, handle)
        assert cache.load(key) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = GoldenRunCache(tmp_path)
        prepared_target(cache)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestVersionedKeys:
    """Cross-version adoption regression: entries produced by a
    different tool version or checkpoint-format version must be misses,
    never silently adopted."""

    def test_key_folds_tool_and_checkpoint_versions(self, monkeypatch):
        campaign = make_campaign()
        base_key = campaign_golden_key(campaign)

        import repro.observability.runmeta as runmeta
        monkeypatch.setattr(runmeta, "tool_version", lambda: "0.0.1-old")
        assert campaign_golden_key(campaign) != base_key

        monkeypatch.undo()
        import repro.core.goldencache as goldencache
        monkeypatch.setattr(goldencache, "CHECKPOINT_FORMAT", 999)
        assert campaign_golden_key(campaign) != base_key

    def test_store_stamps_versions(self, tmp_path):
        from repro.core.checkpoint import CHECKPOINT_FORMAT
        from repro.observability.runmeta import tool_version

        cache = GoldenRunCache(tmp_path)
        _, campaign = prepared_target(cache)
        entry = cache.load(campaign_golden_key(campaign))
        assert entry.tool_version == tool_version()
        assert entry.checkpoint_format == CHECKPOINT_FORMAT

    def test_stale_tool_version_is_miss(self, tmp_path):
        cache = GoldenRunCache(tmp_path)
        _, campaign = prepared_target(cache)
        key = campaign_golden_key(campaign)
        entry = cache.load(key)
        entry.tool_version = "0.0.1-old"
        with open(cache.path_for(key), "wb") as handle:
            pickle.dump(entry, handle)
        assert cache.load(key) is None

    def test_stale_checkpoint_format_is_miss(self, tmp_path):
        cache = GoldenRunCache(tmp_path)
        _, campaign = prepared_target(cache)
        key = campaign_golden_key(campaign)
        entry = cache.load(key)
        entry.checkpoint_format = 1
        with open(cache.path_for(key), "wb") as handle:
            pickle.dump(entry, handle)
        assert cache.load(key) is None

    def test_unstamped_legacy_entry_is_miss(self, tmp_path):
        """An entry pickled before the version stamps existed
        deserialises without the attributes — it must miss, exactly
        like a corrupt entry."""
        cache = GoldenRunCache(tmp_path)
        _, campaign = prepared_target(cache)
        key = campaign_golden_key(campaign)
        entry = cache.load(key)
        del entry.__dict__["tool_version"]
        del entry.__dict__["checkpoint_format"]
        with open(cache.path_for(key), "wb") as handle:
            pickle.dump(entry, handle)
        assert cache.load(key) is None


class TestPrepareRunIntegration:
    def test_second_prepare_skips_reference_run(self, tmp_path):
        cache = GoldenRunCache(tmp_path)
        prepared_target(cache)

        target, _ = prepared_target(cache)
        assert cache.hits == 1
        # The cached golden run was adopted without re-simulating: the
        # reference path calls run_workload, which leaves nonzero cycles
        # on a fresh card only if the reference actually executed.
        assert target.card.cpu.cycles == 0
        assert target._reference is not None
        assert target._checkpoints is not None

    def test_config_change_invalidates(self, tmp_path):
        cache = GoldenRunCache(tmp_path)
        prepared_target(cache)
        prepared_target(cache, seed=999)
        assert cache.hits == 0
        assert cache.stores == 2

    def test_cached_golden_gives_identical_results(self, tmp_path):
        cache = GoldenRunCache(tmp_path)

        def run(with_cache):
            target = create_target("thor-rd")
            if with_cache:
                target.golden_cache = cache
            campaign = make_campaign(n_experiments=3)
            sink = target.run_campaign(campaign)
            return [
                (r.termination.kind, r.outputs, r.state_vector)
                for r in sink.results
            ]

        uncached = run(False)
        first = run(True)   # populates the cache
        second = run(True)  # served from the cache
        assert cache.hits >= 1
        assert first == uncached
        assert second == uncached

    def test_shared_golden_wrong_target_rejected(self, tmp_path):
        """prepare_run(golden=...) for a different target falls back to
        a fresh reference run instead of adopting a foreign golden."""
        cache = GoldenRunCache(tmp_path)
        _, campaign = prepared_target(cache)
        key = campaign_golden_key(campaign)
        entry = cache.load(key)
        entry.target_name = "some-other-board"

        target = create_target("thor-rd")
        reference = target.prepare_run(
            make_campaign(n_experiments=2), golden=entry
        )
        assert reference is not None
        assert target.card.cpu.cycles > 0  # really re-ran the workload
