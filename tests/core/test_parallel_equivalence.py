"""Parallel execution of equivalence-collapsed campaigns.

The parallel engine partitions up front in the parent, dispatches only
representatives/singletons (plus verify-sampled members) to workers as
unsplittable units, and synthesizes derived members' results in the
parent when their representative's result arrives. These tests pin
serial/parallel equality and the class-aware sharding contract.
"""

import dataclasses
import multiprocessing

import pytest

from repro.core import ParallelConfig, create_target, worker_factory
from repro.core.parallel import (
    canonical_experiment_rows,
    run_parallel_campaign,
)
from repro.db import GoofiDatabase
from repro.util.errors import CampaignError
from tests.conftest import make_campaign

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel tests need the fork start method",
)

PATTERNS = [
    "scan:internal/cpu.regfile.r5",
    "scan:internal/cpu.regfile.r10",
]


def equivalence_campaign(**overrides):
    defaults = dict(
        campaign_name="equiv-parallel",
        preinjection_mode="equivalence",
        use_preinjection=True,
        location_patterns=PATTERNS,
        n_experiments=20,
    )
    defaults.update(overrides)
    return make_campaign(**defaults)


def _config(**overrides):
    defaults = dict(n_workers=2, start_method="fork", shard_size=3)
    defaults.update(overrides)
    return ParallelConfig(**defaults)


class TestParallelCollapse:
    def test_parallel_equals_serial_byte_for_byte(self, tmp_path):
        campaign = equivalence_campaign()
        serial_db = GoofiDatabase(str(tmp_path / "serial.db"))
        parallel_db = GoofiDatabase(str(tmp_path / "parallel.db"))
        try:
            create_target("thor-rd").run_campaign(campaign, sink=serial_db)
            run_parallel_campaign(
                campaign,
                worker_factory("thor-rd"),
                sink=parallel_db,
                config=_config(),
            )
            serial_rows = canonical_experiment_rows(
                serial_db, campaign.campaign_name
            )
            parallel_rows = canonical_experiment_rows(
                parallel_db, campaign.campaign_name
            )
            assert serial_rows == parallel_rows
        finally:
            serial_db.close()
            parallel_db.close()

    def test_derived_members_synthesized_in_parent(self):
        campaign = equivalence_campaign()
        sink = run_parallel_campaign(
            campaign, worker_factory("thor-rd"), config=_config()
        )
        results = {r.index: r for r in sink.results}
        assert sorted(results) == list(range(campaign.n_experiments))
        derived = [r for r in sink.results if r.derived_from is not None]
        assert derived
        names = {r.name for r in sink.results}
        for result in derived:
            assert result.derived_from in names
            assert result.wall_seconds == 0.0

    def test_verify_equivalence_passes_end_to_end(self):
        campaign = equivalence_campaign(n_experiments=12)
        sink = run_parallel_campaign(
            campaign,
            worker_factory("thor-rd"),
            config=_config(verify_equivalence=1.0),
        )
        assert len(sink.results) == 12
        # Full verification force-executes every member, so the derived
        # results are still reported as derived (the derivation stands).
        assert any(r.derived_from is not None for r in sink.results)

    def test_verify_sampling_fraction(self):
        campaign = equivalence_campaign()
        sink = run_parallel_campaign(
            campaign,
            worker_factory("thor-rd"),
            config=_config(verify_equivalence=0.5),
        )
        assert len(sink.results) == campaign.n_experiments


class TestConfigValidation:
    def test_negative_fraction_rejected(self):
        with pytest.raises(CampaignError):
            _config(verify_equivalence=-0.1).validate()

    def test_fraction_above_one_rejected(self):
        with pytest.raises(CampaignError):
            _config(verify_equivalence=1.5).validate()

    def test_boundary_fractions_accepted(self):
        _config(verify_equivalence=0.0).validate()
        _config(verify_equivalence=1.0).validate()
