"""Unit tests for fault models and injection plans."""

import random

import pytest

from repro.core.campaign import FaultModelSpec
from repro.core.faultmodels import (
    OP_FLIP,
    OP_STUCK0,
    OP_STUCK1,
    InjectionAction,
    IntermittentBitFlip,
    StuckAt,
    TransientBitFlip,
    apply_op,
    build_fault_model,
)
from repro.core.locations import FaultLocation
from repro.util.errors import ConfigurationError

LOCS = [FaultLocation("scan:internal", f"cpu.regfile.r{i}", 0) for i in range(8)]


class TestTransient:
    def test_single_flip_plan(self):
        model = TransientBitFlip()
        plan = model.plan(random.Random(0), LOCS, times=[50], max_time=100)
        assert len(plan.actions) == 1
        action = plan.actions[0]
        assert action.time == 50
        assert action.op == OP_FLIP
        assert len(action.locations) == 1

    def test_multiplicity(self):
        model = TransientBitFlip(multiplicity=3)
        assert model.locations_per_experiment() == 3
        plan = model.plan(random.Random(0), LOCS, times=[10], max_time=100)
        assert len(plan.actions[0].locations) == 3

    def test_zero_multiplicity_rejected(self):
        with pytest.raises(ConfigurationError):
            TransientBitFlip(multiplicity=0)

    def test_needs_time(self):
        with pytest.raises(ConfigurationError):
            TransientBitFlip().plan(random.Random(0), LOCS, [], 100)


class TestIntermittent:
    def test_burst_schedule(self):
        model = IntermittentBitFlip(burst_length=3, burst_spacing=10)
        plan = model.plan(random.Random(0), LOCS, times=[20], max_time=100)
        assert plan.times == [20, 30, 40]
        # All actions hit the same location.
        locations = {action.locations[0] for action in plan.actions}
        assert len(locations) == 1

    def test_burst_clipped_at_max_time(self):
        model = IntermittentBitFlip(burst_length=5, burst_spacing=50)
        plan = model.plan(random.Random(0), LOCS, times=[80], max_time=100)
        assert plan.times == [80]

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            IntermittentBitFlip(burst_length=0)
        with pytest.raises(ConfigurationError):
            IntermittentBitFlip(burst_spacing=0)


class TestStuckAt:
    def test_reassertion_schedule(self):
        model = StuckAt(stuck_value=1, reassert_interval=40)
        plan = model.plan(random.Random(0), LOCS, times=[10], max_time=100)
        assert plan.times == [10, 50, 90]
        assert all(action.op == OP_STUCK1 for action in plan.actions)

    def test_stuck_at_zero(self):
        model = StuckAt(stuck_value=0)
        plan = model.plan(random.Random(0), LOCS, times=[10], max_time=20)
        assert plan.actions[0].op == OP_STUCK0

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigurationError):
            StuckAt(stuck_value=2)

    def test_always_at_least_one_action(self):
        model = StuckAt(reassert_interval=1000)
        plan = model.plan(random.Random(0), LOCS, times=[150], max_time=100)
        assert len(plan.actions) >= 1


class TestPlanAndOps:
    def test_sorted_actions(self):
        plan = IntermittentBitFlip(3, 10).plan(
            random.Random(0), LOCS, [5], 1000
        )
        times = [action.time for action in plan.sorted_actions()]
        assert times == sorted(times)

    def test_all_locations(self):
        plan = TransientBitFlip(2).plan(random.Random(0), LOCS, [5], 10)
        assert len(plan.all_locations()) == 2

    def test_apply_op_semantics(self):
        assert apply_op(0, OP_FLIP) == 1
        assert apply_op(1, OP_FLIP) == 0
        assert apply_op(1, OP_STUCK0) == 0
        assert apply_op(0, OP_STUCK1) == 1

    def test_apply_op_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            apply_op(0, "sparkle")

    def test_action_validation(self):
        with pytest.raises(ConfigurationError):
            InjectionAction(time=-1, locations=(LOCS[0],))
        with pytest.raises(ConfigurationError):
            InjectionAction(time=0, locations=(LOCS[0],), op="melt")


class TestBuildFromSpec:
    def test_transient(self):
        model = build_fault_model(FaultModelSpec(kind="transient", multiplicity=2))
        assert isinstance(model, TransientBitFlip)
        assert model.multiplicity == 2

    def test_intermittent(self):
        model = build_fault_model(
            FaultModelSpec(kind="intermittent", burst_length=4, burst_spacing=9)
        )
        assert isinstance(model, IntermittentBitFlip)
        assert (model.burst_length, model.burst_spacing) == (4, 9)

    def test_permanent(self):
        model = build_fault_model(
            FaultModelSpec(kind="permanent", stuck_value=1, reassert_interval=33)
        )
        assert isinstance(model, StuckAt)
        assert model.stuck_value == 1

    def test_unknown_kind_rejected_at_spec(self):
        with pytest.raises(ConfigurationError):
            FaultModelSpec(kind="cosmic")
