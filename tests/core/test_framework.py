"""Tests for the Framework template and registries (Figures 1 and 3).

These are the F1/F3 experiments of DESIGN.md: the architecture's
extensibility claims, demonstrated as tests.
"""

import pytest

from repro.core.framework import (
    COMMON_BLOCKS,
    TECHNIQUE_BLOCKS,
    Framework,
    available_targets,
    available_techniques,
    create_target,
    generate_port_skeleton,
    implemented_blocks,
    missing_blocks,
    register_target,
    required_blocks,
    supported_techniques,
    supports_technique,
    unregister_target,
)
from repro.util.errors import ConfigurationError, NotImplementedByPort


class TestTemplateStubs:
    def test_framework_is_instantiable(self):
        # Unlike a raw ABC, the template can be instantiated; unused
        # blocks only fail when called.
        Framework()

    def test_stub_raises_write_your_code_here(self):
        framework = Framework()
        with pytest.raises(NotImplementedByPort) as excinfo:
            framework.load_workload()
        assert "load_workload" in str(excinfo.value)
        assert "Framework" in str(excinfo.value)

    def test_every_block_is_stubbed(self):
        framework = Framework()
        for name in required_blocks("scifi"):
            with pytest.raises(NotImplementedByPort):
                getattr(framework, name)()

    def test_implemented_blocks_empty_for_template(self):
        assert implemented_blocks(Framework) == []


class TestPartialPort:
    def test_partial_port_supports_only_filled_techniques(self):
        class PartialPort(Framework):
            pass

        for name in COMMON_BLOCKS:
            setattr(PartialPort, name, lambda self, *a, **k: None)
        for name in TECHNIQUE_BLOCKS["swifi-pre"]:
            setattr(PartialPort, name, lambda self, *a, **k: None)

        assert supports_technique(PartialPort, "swifi-pre")
        assert not supports_technique(PartialPort, "scifi")
        assert supported_techniques(PartialPort) == ["swifi-pre"]

    def test_missing_blocks_reported(self):
        class EmptyPort(Framework):
            pass

        missing = missing_blocks(EmptyPort, "scifi")
        assert "read_scan_chain" in missing
        assert "init_test_card" in missing

    def test_unknown_technique_rejected(self):
        with pytest.raises(ConfigurationError):
            required_blocks("pin-level")


class TestRegistry:
    def test_builtin_targets_registered(self):
        targets = available_targets()
        assert "thor-rd" in targets
        assert "thor-rd-sim" in targets

    def test_create_unknown_target_rejected(self):
        with pytest.raises(ConfigurationError):
            create_target("vax-11")

    def test_register_and_create_custom_target(self):
        @register_target("unit-test-target")
        class UnitTestTarget(Framework):
            pass

        try:
            target = create_target("unit-test-target")
            assert isinstance(target, UnitTestTarget)
            assert target.target_name == "unit-test-target"
        finally:
            unregister_target("unit-test-target")

    def test_double_registration_rejected(self):
        @register_target("unit-test-dup")
        class First(Framework):
            pass

        try:
            with pytest.raises(ConfigurationError):
                @register_target("unit-test-dup")
                class Second(Framework):
                    pass
        finally:
            unregister_target("unit-test-dup")

    def test_non_framework_class_rejected(self):
        with pytest.raises(ConfigurationError):
            register_target("unit-test-bad")(object)

    def test_available_techniques(self):
        assert set(available_techniques()) == {
            "scifi",
            "swifi-pre",
            "swifi-runtime",
            "simfi",
            "pinlevel",
        }


class TestThorPortCompleteness:
    """F1: the bundled Thor port fills in everything (layer separation
    holds: adding it required no change to the algorithms layer)."""

    def test_thor_supports_all_techniques(self):
        from repro.scifi.interface import ThorRDInterface

        assert supported_techniques(ThorRDInterface) == list(TECHNIQUE_BLOCKS)

    def test_sim_port_inherits_support(self):
        from repro.simfi.interface import ThorSimInterface

        assert supports_technique(ThorSimInterface, "simfi")


class TestSkeletonGeneration:
    def test_skeleton_contains_required_blocks(self):
        source = generate_port_skeleton("MyBoard", ["scifi"])
        for block in required_blocks("scifi"):
            assert f"def {block}" in source
        assert "Write your code here!" in source

    def test_skeleton_compiles(self):
        source = generate_port_skeleton("MyBoard", ["scifi", "swifi-pre"])
        compile(source, "<skeleton>", "exec")

    def test_skeleton_scopes_blocks_to_techniques(self):
        source = generate_port_skeleton("MyBoard", ["swifi-pre"])
        assert "inject_fault_preruntime" in source
        assert "read_scan_chain" not in source
