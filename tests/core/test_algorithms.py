"""Tests for the FaultInjectionAlgorithms layer (Figure 2).

Includes E1's functional half: the SCIFI experiment procedure performs the
Figure 2 building-block calls in the paper's exact order.
"""

import pytest

from repro.core.algorithms import FaultInjectionAlgorithms
from repro.core.campaign import FaultModelSpec
from repro.core.experiment import ReferenceRun
from repro.scifi.interface import ThorRDInterface
from repro.util.errors import CampaignError
from tests.conftest import make_campaign


class RecordingInterface(ThorRDInterface):
    """Thor port that records every building-block call."""

    def __init__(self):
        super().__init__()
        self.calls = []

    def _record(self, name):
        self.calls.append(name)


for _name in (
    "init_test_card",
    "load_workload",
    "write_memory",
    "read_memory",
    "run_workload",
    "wait_for_breakpoint",
    "read_scan_chain",
    "inject_fault",
    "write_scan_chain",
    "wait_for_termination",
    "inject_fault_preruntime",
    "instrument_workload",
    "inject_fault_direct",
):
    def _wrap(name=_name):
        original = getattr(ThorRDInterface, name)

        def method(self, *args, **kwargs):
            self._record(name)
            return original(self, *args, **kwargs)

        return method

    setattr(RecordingInterface, _name, _wrap())


class TestScifiCallOrder:
    def test_figure2_sequence(self):
        """The per-experiment block sequence of faultInjectorSCIFI.

        warm_start is disabled: the paper's Figure 2 sequence is the
        *cold* path (warm starts replace the prefix with a checkpoint
        restore; their equivalence is covered by test_checkpoint)."""
        target = RecordingInterface()
        campaign = make_campaign(n_experiments=1, warm_start=False)
        target.run_campaign(campaign)
        # Strip the reference run prefix (ends with its read_memory after
        # wait_for_termination).
        calls = target.calls
        first_init = calls.index("init_test_card", 1)
        experiment_calls = calls[first_init:]
        expected_prefix = [
            "init_test_card",
            "load_workload",
            "write_memory",
            "run_workload",
            "wait_for_breakpoint",
            "read_scan_chain",
            "inject_fault",
            "write_scan_chain",
        ]
        assert experiment_calls[: len(expected_prefix)] == expected_prefix
        # Termination wait and final readout follow.
        rest = experiment_calls[len(expected_prefix):]
        assert "wait_for_termination" in rest
        assert "read_memory" in rest

    def test_reference_run_comes_first(self):
        target = RecordingInterface()
        campaign = make_campaign(n_experiments=1)
        target.run_campaign(campaign)
        assert target.calls[:3] == [
            "init_test_card",
            "load_workload",
            "write_memory",
        ]

    def test_swifi_pre_injects_before_run(self):
        target = RecordingInterface()
        campaign = make_campaign(
            technique="swifi-pre",
            location_patterns=["memory:code/*"],
            n_experiments=1,
        )
        target.run_campaign(campaign)
        first_init = target.calls.index("init_test_card", 1)
        calls = target.calls[first_init:]
        assert calls.index("inject_fault_preruntime") < calls.index("run_workload")
        assert "read_scan_chain" not in calls

    def test_swifi_runtime_instruments(self):
        target = RecordingInterface()
        campaign = make_campaign(
            technique="swifi-runtime",
            location_patterns=["swreg/cpu.regfile.*"],
            n_experiments=1,
        )
        target.run_campaign(campaign)
        assert "instrument_workload" in target.calls

    def test_simfi_uses_direct_injection(self):
        target = RecordingInterface()
        campaign = make_campaign(technique="simfi", n_experiments=1)
        target.run_campaign(campaign)
        assert "inject_fault_direct" in target.calls
        assert "read_scan_chain" not in target.calls[1:]


class TestCampaignSemantics:
    def test_requires_read_campaign_data(self, thor_target):
        with pytest.raises(CampaignError):
            thor_target.make_reference_run()

    def test_technique_space_mismatch_rejected(self, thor_target):
        campaign = make_campaign(
            technique="scifi", location_patterns=["memory:code/*"]
        )
        with pytest.raises(CampaignError):
            thor_target.run_campaign(campaign)

    def test_swifi_pre_cannot_reach_scan(self, thor_target):
        campaign = make_campaign(
            technique="swifi-pre",
            location_patterns=["scan:internal/cpu.regfile.*"],
        )
        with pytest.raises(CampaignError):
            thor_target.run_campaign(campaign)

    def test_reproducible_with_same_seed(self):
        def run():
            from repro.core import create_target

            target = create_target("thor-rd")
            sink = target.run_campaign(make_campaign(n_experiments=6, seed=77))
            return [
                (r.termination.kind, [i.to_dict() for i in r.injections])
                for r in sink.results
            ]

        assert run() == run()

    def test_different_seeds_differ(self):
        from repro.core import create_target

        def run(seed):
            target = create_target("thor-rd")
            sink = target.run_campaign(
                make_campaign(n_experiments=6, seed=seed)
            )
            return [
                [i.to_dict() for i in r.injections] for r in sink.results
            ]

        assert run(1) != run(2)

    def test_experiment_names_are_stable(self, thor_target):
        sink = thor_target.run_campaign(make_campaign(n_experiments=3))
        assert [r.name for r in sink.results] == [
            "test-campaign-exp00000",
            "test-campaign-exp00001",
            "test-campaign-exp00002",
        ]

    def test_every_experiment_records_one_injection(self, thor_target):
        sink = thor_target.run_campaign(make_campaign(n_experiments=10))
        assert all(len(r.injections) == 1 for r in sink.results)

    def test_multiplicity_records_multiple_injections(self, thor_target):
        campaign = make_campaign(
            n_experiments=5,
            fault_model=FaultModelSpec(kind="transient", multiplicity=3),
        )
        sink = thor_target.run_campaign(campaign)
        assert all(len(r.injections) == 3 for r in sink.results)

    def test_injection_times_bounded_by_reference(self, thor_target):
        sink = thor_target.run_campaign(make_campaign(n_experiments=10))
        duration = sink.reference.duration_cycles
        for result in sink.results:
            for injection in result.injections:
                assert 1 <= injection.time <= duration

    def test_reference_outputs_match_workload_golden(self, thor_target):
        from repro.workloads import get_workload

        sink = thor_target.run_campaign(make_campaign(n_experiments=1))
        workload = get_workload("vecsum")
        assert sink.reference.outputs["total"] == workload.expected["total"][0]

    def test_preinjection_only_samples_live_locations(self, thor_target):
        campaign = make_campaign(n_experiments=20, use_preinjection=True)
        thor_target.read_campaign_data(campaign)
        reference = thor_target.make_reference_run()
        assert thor_target._liveness is not None
        for index in range(20):
            plan = thor_target.plan_experiment(index, reference)
            for action in plan.actions:
                for location in action.locations:
                    assert thor_target._liveness.is_live(location, action.time)


class TestRerunProvenance:
    def test_rerun_sets_parent_and_detail_states(self, thor_target):
        campaign = make_campaign(n_experiments=3)
        sink = thor_target.run_campaign(campaign)
        result = thor_target.rerun_experiment(campaign, 1)
        assert result.parent_experiment == "test-campaign-exp00001"
        assert result.name == "test-campaign-exp00001-rerun"
        assert len(result.detail_states) > 0

    def test_rerun_injects_same_fault(self, thor_target):
        campaign = make_campaign(n_experiments=3)
        sink = thor_target.run_campaign(campaign)
        original = sink.results[1]
        rerun = thor_target.rerun_experiment(campaign, 1)
        assert [i.location for i in rerun.injections] == [
            i.location for i in original.injections
        ]
        assert [i.time for i in rerun.injections] == [
            i.time for i in original.injections
        ]


class TestTechniqueTables:
    def test_technique_methods_cover_all(self):
        assert set(FaultInjectionAlgorithms.TECHNIQUE_METHODS) == set(
            FaultInjectionAlgorithms.TECHNIQUE_SPACES
        )
