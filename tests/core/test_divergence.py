"""Tests for divergence-window execution and outcome memoization
(repro.core.divergence + the algorithm-layer integration).

Covers the memo table's hit/miss/merge/drain mechanics, the memo key's
sensitivity to restore state and injection delta, the divergence
window's early-exit behaviour on the real Thor target (byte-identical
to full-tail execution, observable through the ``divergence.*``
counters, disabled by the ``early_exit`` knob), the warm-restore
strict-boundary regression (injection pinned exactly on checkpoint
cadence), and memo sharing across parallel workers.
"""

import multiprocessing

import pytest

from repro.core import create_target
from repro.core.divergence import (
    MemoEntry,
    OutcomeMemo,
    memo_key,
    plan_delta,
)
from repro.core.experiment import ExperimentResult, Termination
from repro.core.faultmodels import InjectionAction, InjectionPlan
from repro.core.locations import FaultLocation
from repro.core.triggers import TriggerSpec
from repro.observability import configure, disable, get_observability
from tests.conftest import make_campaign


def loc(path="cpu.regfile.r1", bit=0):
    return FaultLocation(space="scan:internal", path=path, bit=bit)


def plan(time=100, bit=0, op="flip", path="cpu.regfile.r1"):
    return InjectionPlan(
        actions=[
            InjectionAction(time=time, locations=(loc(path, bit),), op=op)
        ]
    )


def entry(kind="halt", outputs=None):
    return MemoEntry(
        termination={"kind": kind, "pc": 0, "cycle": 9, "iterations": 1,
                     "trap_name": None, "trap_detail": None,
                     "trap_code": None},
        outputs=dict(outputs or {"0x100": 7}),
        state_vector={"r1": 1},
        injections=[{"time": 100, "location": loc().key(), "op": "flip",
                     "bit_before": 0, "bit_after": 1}],
    )


class TestMemoKey:
    def test_same_plan_same_key(self):
        assert memo_key("abc", plan()) == memo_key("abc", plan())

    def test_restore_digest_distinguishes(self):
        assert memo_key("abc", plan()) != memo_key("def", plan())
        # None canonicalises to the cold sentinel, stably.
        assert memo_key(None, plan()) == memo_key(None, plan())
        assert memo_key(None, plan()) != memo_key("abc", plan())

    def test_delta_distinguishes_time_op_location(self):
        base = memo_key("abc", plan())
        assert memo_key("abc", plan(time=101)) != base
        assert memo_key("abc", plan(bit=1)) != base
        assert memo_key("abc", plan(op="stuck0")) != base
        assert memo_key("abc", plan(path="cpu.regfile.r2")) != base

    def test_delta_is_canonical(self):
        a = FaultLocation(space="scan:internal", path="cpu.regfile.r1", bit=0)
        b = FaultLocation(space="scan:internal", path="cpu.regfile.r2", bit=3)
        p1 = InjectionPlan(
            actions=[InjectionAction(time=50, locations=(a, b))]
        )
        p2 = InjectionPlan(
            actions=[InjectionAction(time=50, locations=(b, a))]
        )
        assert plan_delta(p1) == plan_delta(p2)
        assert memo_key("x", p1) == memo_key("x", p2)


class TestOutcomeMemo:
    def test_lookup_counts_hits_and_misses(self):
        memo = OutcomeMemo()
        key = memo_key(None, plan())
        assert memo.lookup(key) is None
        memo.record(key, entry())
        assert memo.lookup(key) is not None
        assert memo.hits == 1 and memo.misses == 1
        assert len(memo) == 1

    def test_record_ignores_duplicates(self):
        memo = OutcomeMemo()
        memo.record("k", entry(kind="halt"))
        memo.record("k", entry(kind="trap"))
        assert memo.lookup("k").termination["kind"] == "halt"
        assert len(memo) == 1

    def test_drain_new_returns_only_fresh_rows(self):
        memo = OutcomeMemo()
        memo.record("k1", entry())
        rows = memo.drain_new()
        assert [row["key"] for row in rows] == ["k1"]
        assert memo.drain_new() == []
        memo.record("k2", entry())
        assert [row["key"] for row in memo.drain_new()] == ["k2"]

    def test_merge_adopts_without_marking_new(self):
        source, sink = OutcomeMemo(), OutcomeMemo()
        source.record("k1", entry())
        assert sink.merge(source.drain_new()) == 1
        assert sink.lookup("k1") is not None
        # Merged rows never echo back on the next drain.
        assert sink.drain_new() == []
        # Re-merging the same rows is a no-op.
        source2 = OutcomeMemo()
        source2.record("k1", entry(kind="trap"))
        assert sink.merge(source2.drain_new()) == 0
        assert sink.lookup("k1").termination["kind"] == "halt"

    def test_rows_since_cursor(self):
        memo = OutcomeMemo()
        memo.record("k1", entry())
        memo.record("k2", entry())
        rows, cursor = memo.rows_since(0)
        assert [row["key"] for row in rows] == ["k1", "k2"]
        rows, cursor = memo.rows_since(cursor)
        assert rows == []
        memo.merge([{"key": "k3", "entry": entry().to_row()}])
        rows, cursor = memo.rows_since(cursor)
        assert [row["key"] for row in rows] == ["k3"]

    def test_entry_round_trip_and_fresh_copies(self):
        original = entry()
        row = original.to_row()
        restored = MemoEntry.from_row(row)
        result = ExperimentResult(name="e", index=0, campaign_name="c")
        restored.apply(result)
        assert result.termination.kind == "halt"
        assert result.outputs == original.outputs
        assert result.state_vector == original.state_vector
        assert [i.to_dict() for i in result.injections] == original.injections
        # apply() hands out copies: mutating one result never leaks into
        # the shared entry or a second application.
        result.outputs["0x100"] = 999
        result2 = ExperimentResult(name="e2", index=1, campaign_name="c")
        restored.apply(result2)
        assert result2.outputs["0x100"] == 7
        assert result.termination is not result2.termination


def _late_trigger_campaign(name, duration, **overrides):
    """A SCIFI campaign with a fixed late trigger — the divergence
    window's target regime (long golden tail after injection)."""
    defaults = dict(
        campaign_name=name,
        workload_name="bubblesort",
        workload_params={"n": 16},
        n_experiments=6,
        seed=77,
        trigger=TriggerSpec(
            kind="time-fixed", time=max(1, duration // 4)
        ),
        warm_start=True,
    )
    defaults.update(overrides)
    return make_campaign(**defaults)


def _reference_duration(**overrides):
    target = create_target("thor-rd")
    probe = _late_trigger_campaign("probe", duration=4, n_experiments=1,
                                   **overrides)
    return target.prepare_run(probe).duration_cycles


def _rows(sink):
    return [
        (
            r.termination.kind,
            tuple(
                tuple(sorted(i.to_dict().items())) for i in r.injections
            ),
            tuple(sorted(r.outputs.items())),
            tuple(sorted(r.state_vector.items())),
        )
        for r in sink.results
    ]


class TestDivergenceWindow:
    def test_early_exit_matches_full_tail(self):
        """The headline byte-identity gate: a campaign with early exits
        and memoization produces exactly the rows the plain full-tail
        path produces."""
        duration = _reference_duration()

        def leg(early):
            target = create_target("thor-rd")
            target.early_exit = early
            target.memoize = early
            campaign = _late_trigger_campaign("div-leg", duration)
            return _rows(target.run_campaign(campaign))

        assert leg(True) == leg(False)

    def test_early_exit_counters(self):
        """An early-injection campaign on a long workload must actually
        take early exits (and skip real cycles) — otherwise the
        identity test above proves nothing. Only a modest fraction of
        register flips re-converge (one in five to ten on bubblesort),
        so the sample is sized well above that rate."""
        duration = _reference_duration()
        campaign = _late_trigger_campaign("div-counters", duration,
                                          n_experiments=32)
        configure(metrics=True)
        try:
            target = create_target("thor-rd")
            target.run_campaign(campaign)
            counters = get_observability().metrics.snapshot()["counters"]
        finally:
            disable()
        assert counters.get("divergence.probes", 0) > 0
        assert counters.get("divergence.early_exits", 0) > 0
        assert counters.get("divergence.cycles_skipped", 0) > 0

    def test_no_early_exit_knob_suppresses_probing(self):
        duration = _reference_duration()
        campaign = _late_trigger_campaign("div-off", duration)
        configure(metrics=True)
        try:
            target = create_target("thor-rd")
            target.early_exit = False
            target.memoize = False
            target.run_campaign(campaign)
            counters = get_observability().metrics.snapshot()["counters"]
        finally:
            disable()
        assert counters.get("divergence.probes", 0) == 0
        assert counters.get("divergence.early_exits", 0) == 0
        assert counters.get("divergence.memo_hits", 0) == 0

    def test_detail_mode_never_probes(self):
        """Detail mode must observe every instruction of the real tail;
        probing (and memo replay) is disabled there."""
        duration = _reference_duration()
        campaign = _late_trigger_campaign(
            "div-detail", duration, n_experiments=2, logging_mode="detail"
        )
        configure(metrics=True)
        try:
            target = create_target("thor-rd")
            sink = target.run_campaign(campaign)
            counters = get_observability().metrics.snapshot()["counters"]
        finally:
            disable()
        assert counters.get("divergence.probes", 0) == 0
        assert all(r.detail_states for r in sink.results)


class TestOutcomeMemoIntegration:
    def test_repeated_plans_hit_the_memo(self):
        """A single-location fault space with a fixed trigger draws the
        same (time, op, location) plan repeatedly — every repeat must
        replay from the memo, byte-identically."""
        duration = _reference_duration()
        campaign = _late_trigger_campaign(
            "memo-hit",
            duration,
            location_patterns=["scan:internal/cpu.regfile.r1"],
            n_experiments=24,
        )
        configure(metrics=True)
        try:
            target = create_target("thor-rd")
            sink = target.run_campaign(campaign)
            counters = get_observability().metrics.snapshot()["counters"]
        finally:
            disable()
        hits = counters.get("divergence.memo_hits", 0)
        assert hits > 0
        # Replays are observationally indistinguishable: identical plans
        # produced identical rows.
        rows = _rows(sink)
        by_injections = {}
        for row in rows:
            by_injections.setdefault(
                tuple(
                    tuple(sorted((k, v) for k, v in fields if k != "time"))
                    for fields in row[1]
                ),
                set(),
            ).add((row[0], row[2], row[3]))
        for outcomes in by_injections.values():
            assert len(outcomes) == 1

    def test_memo_resets_on_rebind(self):
        """A memo recorded under one campaign binding must never leak
        into the next (same delta + cold key but a different workload
        would corrupt outcomes)."""
        target = create_target("thor-rd")
        duration = _reference_duration()
        target.run_campaign(_late_trigger_campaign(
            "memo-a", duration,
            location_patterns=["scan:internal/cpu.regfile.r1"],
            n_experiments=4,
        ))
        assert target._memo is not None and len(target._memo) > 0
        target.read_campaign_data(_late_trigger_campaign(
            "memo-b", duration, workload_name="vecsum",
            workload_params={},
        ))
        assert target._memo is None

    def test_verify_derived_bypasses_memo(self):
        """--verify-equivalence re-executions must not be served from
        the memo: a replayed copy would verify nothing."""
        duration = _reference_duration()
        campaign = _late_trigger_campaign(
            "memo-verify", duration,
            preinjection_mode="equivalence",
            n_experiments=8,
        )
        target = create_target("thor-rd")
        target.verify_equivalence = 1.0
        configure(metrics=True)
        try:
            sink = target.run_campaign(campaign)
            counters = get_observability().metrics.snapshot()["counters"]
        finally:
            disable()
        assert len(sink.results) == 8
        # Every derived member was re-executed for real and matched.
        assert counters.get("equivalence.verified", 0) == counters.get(
            "equivalence.collapsed", 0
        )


class TestWarmRestoreBoundary:
    """Satellite regression: an injection pinned exactly on checkpoint
    cadence must restore from the checkpoint strictly *before* the
    injection cycle, never the one captured at it."""

    def _campaign_on_cadence(self, name, **overrides):
        target = create_target("thor-rd")
        probe = make_campaign(
            campaign_name=f"{name}-probe",
            workload_name="bubblesort",
            workload_params={"n": 16},
            n_experiments=1,
            warm_start=True,
        )
        target.prepare_run(probe)
        store = target._checkpoints
        assert store is not None and len(store) >= 2
        # Pin the trigger on the second captured cycle exactly.
        on_cadence = store.cycles[1]
        return make_campaign(
            campaign_name=name,
            workload_name="bubblesort",
            workload_params={"n": 16},
            trigger=TriggerSpec(kind="time-fixed", time=on_cadence),
            warm_start=True,
            n_experiments=4,
            **overrides,
        ), on_cadence

    def test_restore_is_strictly_before_injection(self):
        campaign, on_cadence = self._campaign_on_cadence("boundary-spy")
        target = create_target("thor-rd")
        restored_cycles = []
        original = target.restore_checkpoint

        def spy(image):
            restored_cycles.append(image.cycle)
            return original(image)

        target.restore_checkpoint = spy
        target.run_campaign(campaign)
        assert restored_cycles, "warm path never engaged"
        assert all(cycle < on_cadence for cycle in restored_cycles)

    def test_on_cadence_outcomes_match_cold(self):
        campaign, _ = self._campaign_on_cadence("boundary-rows")

        def leg(warm):
            target = create_target("thor-rd")
            if not warm:
                target.early_exit = False
                target.memoize = False
            sink = target.run_campaign(
                campaign.modified(warm_start=warm)
            )
            return _rows(sink)

        assert leg(True) == leg(False)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel tests need the fork start method",
)
class TestParallelMemoSharing:
    def test_parallel_rows_match_serial_and_memo_merges(self):
        from repro.core.framework import worker_factory
        from repro.core.parallel import ParallelConfig, run_parallel_campaign

        duration = _reference_duration()
        campaign = _late_trigger_campaign(
            "memo-par", duration,
            location_patterns=["scan:internal/cpu.regfile.r1"],
            n_experiments=10,
        )
        serial_target = create_target("thor-rd")
        serial_rows = _rows(serial_target.run_campaign(campaign))

        sink = run_parallel_campaign(
            campaign,
            worker_factory("thor-rd"),
            config=ParallelConfig(n_workers=2, shard_size=2),
        )
        parallel_rows = _rows(sink)
        assert sorted(parallel_rows) == sorted(serial_rows)

    def test_early_exit_off_propagates_to_workers(self):
        from repro.core.framework import worker_factory
        from repro.core.parallel import ParallelConfig, run_parallel_campaign

        duration = _reference_duration()
        campaign = _late_trigger_campaign(
            "memo-par-off", duration, n_experiments=4
        )
        sink = run_parallel_campaign(
            campaign,
            worker_factory("thor-rd"),
            config=ParallelConfig(
                n_workers=2, shard_size=2, early_exit=False
            ),
        )
        assert len(sink.results) == 4
