"""Unit tests for CampaignData (the set-up phase value object)."""

import pytest

from repro.core.campaign import CampaignData, EnvironmentSpec, FaultModelSpec
from repro.core.triggers import TriggerSpec
from repro.util.errors import ConfigurationError


def make(**kw):
    defaults = dict(campaign_name="c1")
    defaults.update(kw)
    return CampaignData(**defaults)


class TestValidation:
    def test_defaults_valid(self):
        campaign = make()
        assert campaign.technique == "scifi"

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make(campaign_name="")

    def test_unknown_technique_rejected(self):
        with pytest.raises(ConfigurationError):
            make(technique="quantum")

    def test_bad_experiment_count_rejected(self):
        with pytest.raises(ConfigurationError):
            make(n_experiments=0)

    def test_no_locations_rejected(self):
        with pytest.raises(ConfigurationError):
            make(location_patterns=[])

    def test_bad_logging_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            make(logging_mode="verbose")

    def test_bad_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            make(timeout_cycles=0)

    def test_bad_timeout_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            make(timeout_factor=0.5)


class TestSerialization:
    def test_json_round_trip(self):
        campaign = make(
            technique="swifi-pre",
            location_patterns=["memory:code/*"],
            fault_model=FaultModelSpec(kind="intermittent", burst_length=5),
            trigger=TriggerSpec(kind="branch", occurrence=2),
            environment=EnvironmentSpec(name="dc-motor", params={"k": 2.0}),
            max_iterations=50,
        )
        restored = CampaignData.from_json(campaign.to_json())
        assert restored.to_dict() == campaign.to_dict()

    def test_round_trip_without_environment(self):
        campaign = make()
        restored = CampaignData.from_json(campaign.to_json())
        assert restored.environment is None

    def test_json_is_deterministic(self):
        assert make().to_json() == make().to_json()


class TestModify:
    def test_modified_changes_field(self):
        campaign = make(n_experiments=10)
        changed = campaign.modified(n_experiments=99)
        assert changed.n_experiments == 99
        assert campaign.n_experiments == 10  # original untouched

    def test_modified_accepts_spec_objects(self):
        changed = make().modified(
            fault_model=FaultModelSpec(kind="permanent")
        )
        assert changed.fault_model.kind == "permanent"

    def test_modified_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            make().modified(colour="red")

    def test_modified_revalidates(self):
        with pytest.raises(ConfigurationError):
            make().modified(n_experiments=-1)


class TestMerge:
    def test_merge_unions_locations_and_sums_experiments(self):
        a = make(campaign_name="a", location_patterns=["scan:internal/cpu.pc"],
                 n_experiments=10)
        b = make(campaign_name="b",
                 location_patterns=["scan:internal/cpu.psr",
                                    "scan:internal/cpu.pc"],
                 n_experiments=20)
        merged = CampaignData.merge("ab", [a, b])
        assert merged.campaign_name == "ab"
        assert merged.n_experiments == 30
        assert merged.location_patterns == [
            "scan:internal/cpu.pc",
            "scan:internal/cpu.psr",
        ]

    def test_merge_requires_same_workload(self):
        a = make(campaign_name="a", workload_name="vecsum")
        b = make(campaign_name="b", workload_name="matmul")
        with pytest.raises(ConfigurationError):
            CampaignData.merge("ab", [a, b])

    def test_merge_requires_same_technique(self):
        a = make(campaign_name="a")
        b = make(campaign_name="b", technique="swifi-pre",
                 location_patterns=["memory:code/*"])
        with pytest.raises(ConfigurationError):
            CampaignData.merge("ab", [a, b])

    def test_merge_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignData.merge("x", [])
