"""Unit tests for the reference-trace structure."""

from repro.core.trace import Trace, TraceStep


def step(i, **kw):
    defaults = dict(
        index=i, pc=0x100 + i, cycle_before=i * 2, cycle_after=i * 2 + 2
    )
    defaults.update(kw)
    return TraceStep(**defaults)


class TestTraceQueries:
    def test_duration(self):
        trace = Trace([step(0), step(1), step(2)])
        assert trace.duration_cycles == 6

    def test_empty_duration(self):
        assert Trace().duration_cycles == 0

    def test_branch_and_call_steps(self):
        trace = Trace([step(0, is_branch=True), step(1), step(2, is_call=True)])
        assert len(trace.branch_steps()) == 1
        assert len(trace.call_steps()) == 1

    def test_accesses_to(self):
        trace = Trace([step(0, mem_address=5), step(1, mem_address=6),
                       step(2, mem_address=5)])
        assert [s.index for s in trace.accesses_to(5)] == [0, 2]

    def test_executions_of(self):
        trace = Trace([step(0, pc=0x100), step(1, pc=0x101), step(2, pc=0x100)])
        assert len(trace.executions_of(0x100)) == 2

    def test_step_at_cycle_picks_first_completion(self):
        trace = Trace([step(0), step(1), step(2)])
        assert trace.step_at_cycle(3).index == 1
        assert trace.step_at_cycle(0).index == 0

    def test_step_at_cycle_past_end(self):
        trace = Trace([step(0)])
        assert trace.step_at_cycle(999) is None

    def test_step_after_cycle_is_next_instruction(self):
        # A stop at cycle 4 (the boundary after step 1) means step 2 is
        # the next instruction to execute.
        trace = Trace([step(0), step(1), step(2)])
        assert trace.step_after_cycle(4).index == 2
        assert trace.step_after_cycle(3).index == 2
        assert trace.step_after_cycle(0).index == 0

    def test_step_after_cycle_past_end(self):
        trace = Trace([step(0)])
        assert trace.step_after_cycle(999) is None

    def test_append_and_len(self):
        trace = Trace()
        trace.append(step(0))
        assert len(trace) == 1
        assert list(trace)[0].index == 0
