"""Unit tests for fault-location spaces and the hierarchy (Figure 6)."""

import pytest

from repro.core.locations import (
    FaultLocation,
    LocationCell,
    LocationSpace,
    LocationTree,
)
from repro.util.errors import ConfigurationError


@pytest.fixture
def space():
    return LocationSpace(
        [
            LocationCell("scan:internal", "cpu.pc", 16),
            LocationCell("scan:internal", "cpu.regfile.r0", 32),
            LocationCell("scan:internal", "cpu.regfile.r1", 32),
            LocationCell("scan:internal", "cpu.cycle_counter", 32, read_only=True),
            LocationCell("memory:code", "word.0x0100", 32),
        ]
    )


class TestFaultLocation:
    def test_key_round_trip(self):
        location = FaultLocation("scan:internal", "cpu.regfile.r3", 17)
        assert FaultLocation.parse(location.key()) == location

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            FaultLocation.parse("nonsense")


class TestSelection:
    def test_expand_pattern(self, space):
        locations = space.expand(["scan:internal/cpu.regfile.*"])
        assert len(locations) == 64
        assert all(loc.path.startswith("cpu.regfile") for loc in locations)

    def test_expand_excludes_read_only(self, space):
        locations = space.expand(["scan:internal/*"])
        assert not any("cycle_counter" in loc.path for loc in locations)

    def test_expand_can_include_read_only_for_observation(self, space):
        cells = space.select_cells(["scan:internal/*"], writable_only=False)
        assert any(cell.read_only for cell in cells)

    def test_expand_empty_match_raises(self, space):
        with pytest.raises(ConfigurationError):
            space.expand(["scan:internal/gpu.*"])

    def test_multiple_patterns_deduplicate(self, space):
        cells = space.select_cells(
            ["scan:internal/cpu.regfile.*", "scan:internal/cpu.*"]
        )
        paths = [cell.path for cell in cells]
        assert len(paths) == len(set(paths))

    def test_validate_selection_rejects_read_only_only(self, space):
        with pytest.raises(ConfigurationError):
            space.validate_selection(["scan:internal/cpu.cycle_counter"])

    def test_validate_selection_rejects_no_match(self, space):
        with pytest.raises(ConfigurationError):
            space.validate_selection(["bogus/*"])

    def test_validate_selection_accepts_mixed(self, space):
        space.validate_selection(["scan:internal/cpu.*"])

    def test_total_bits(self, space):
        assert space.total_bits() == 16 + 32 + 32 + 32
        assert space.total_bits(writable_only=False) == 16 + 32 * 4

    def test_duplicate_cell_rejected(self):
        cell = LocationCell("a", "x", 1)
        with pytest.raises(ConfigurationError):
            LocationSpace([cell, cell])

    def test_cell_lookup(self, space):
        assert space.cell("scan:internal", "cpu.pc").width == 16
        with pytest.raises(ConfigurationError):
            space.cell("scan:internal", "nope")


class TestTree:
    def test_hierarchy_levels(self, space):
        tree = space.tree()
        node = tree.subtree("scan:internal.cpu.regfile")
        assert set(node.children) == {"r0", "r1"}

    def test_leaf_cells_round_trip(self, space):
        assert len(space.tree().leaf_cells()) == 5

    def test_render_marks_read_only(self, space):
        text = space.tree().render()
        assert "[read-only]" in text
        assert "regfile" in text

    def test_missing_subtree_raises(self, space):
        with pytest.raises(ConfigurationError):
            space.tree().subtree("scan:internal.nothing")

    def test_tree_from_cells_static(self):
        tree = LocationTree.from_cells(
            [LocationCell("m", "a.b.c", 4)]
        )
        assert tree.subtree("m.a.b.c").cell.width == 4
