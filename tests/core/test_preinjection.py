"""Unit tests for the pre-injection (liveness) analysis."""

from repro.core.locations import FaultLocation, LocationCell, LocationSpace
from repro.core.preinjection import PreInjectionAnalysis
from repro.core.trace import Trace, TraceStep


def step(i, **kw):
    defaults = dict(
        index=i, pc=0x100 + i, cycle_before=i * 10, cycle_after=i * 10 + 10
    )
    defaults.update(kw)
    return TraceStep(**defaults)


def reg_loc(n, bit=0):
    return FaultLocation("scan:internal", f"cpu.regfile.r{n}", bit)


def make_analysis():
    """Reference trace:
       step 0 (cycles 0-10):  write r1
       step 1 (cycles 10-20): read r1, write r2; write flags
       step 2 (cycles 20-30): read r2; read flags (branch)
       step 3 (cycles 30-40): write r2; store to 0x300
       step 4 (cycles 40-50): load from 0x300 into r3
    """
    trace = Trace(
        [
            step(0, reg_writes=(1,)),
            step(1, reg_reads=(1,), reg_writes=(2,), writes_flags=True),
            step(2, reg_reads=(2,), reads_flags=True, is_branch=True),
            step(3, reg_writes=(2,), mem_address=0x300, mem_value=5,
                 mem_is_write=True),
            step(4, reg_reads=(3,), mem_address=0x300, mem_value=5,
                 reg_writes=(3,)),
        ]
    )
    space = LocationSpace([LocationCell("scan:internal", "cpu.pc", 16)])
    return PreInjectionAnalysis.from_trace(trace, space)


class TestRegisterLiveness:
    def test_live_before_read(self):
        analysis = make_analysis()
        # r1 written at 0, read at 10: live in (0, 10].
        assert analysis.is_live(reg_loc(1), 5)
        assert analysis.is_live(reg_loc(1), 10)

    def test_dead_after_last_read(self):
        analysis = make_analysis()
        assert not analysis.is_live(reg_loc(1), 11)

    def test_dead_before_write(self):
        analysis = make_analysis()
        # r2 next access at t<=10 is the write at step 1.
        assert not analysis.is_live(reg_loc(2), 5)

    def test_live_between_write_and_read(self):
        analysis = make_analysis()
        assert analysis.is_live(reg_loc(2), 15)

    def test_rewritten_register_dead_again(self):
        analysis = make_analysis()
        # r2 read at 20, rewritten at 30, never read after.
        assert not analysis.is_live(reg_loc(2), 25)

    def test_untouched_register_dead(self):
        analysis = make_analysis()
        assert not analysis.is_live(reg_loc(9), 5)


class TestFlagAndSpecialLiveness:
    def test_flags_live_before_branch(self):
        analysis = make_analysis()
        location = FaultLocation("scan:internal", "cpu.psr", 0)
        assert analysis.is_live(location, 15)
        assert not analysis.is_live(location, 25)

    def test_pc_always_live_during_run(self):
        analysis = make_analysis()
        location = FaultLocation("scan:internal", "cpu.pc", 3)
        assert analysis.is_live(location, 10)
        assert not analysis.is_live(location, 999)

    def test_ir_live(self):
        analysis = make_analysis()
        location = FaultLocation("scan:internal", "cpu.pipeline.ir", 0)
        assert analysis.is_live(location, 20)

    def test_unknown_cells_conservatively_live(self):
        analysis = make_analysis()
        location = FaultLocation("scan:internal", "dcache.line0.word1", 4)
        assert analysis.is_live(location, 10)

    def test_mar_mdr_conservatively_live(self):
        """State the trace cannot see (MAR/MDR latches) is never pruned,
        not even beyond the reference duration."""
        analysis = make_analysis()
        for path in ("cpu.pipeline.mar", "cpu.pipeline.mdr"):
            location = FaultLocation("scan:internal", path, 0)
            assert analysis.is_live(location, 10)
            assert analysis.is_live(location, 9999)

    def test_pc_and_ir_at_duration_boundary(self):
        """PC/IR are live up to and including the reference duration
        (50 cycles in the fixture trace), dead one cycle later."""
        analysis = make_analysis()
        for path in ("cpu.pc", "cpu.pipeline.ir"):
            location = FaultLocation("scan:internal", path, 0)
            assert analysis.is_live(location, 50)
            assert not analysis.is_live(location, 51)


class TestMemoryLiveness:
    def test_memory_live_between_write_and_read(self):
        analysis = make_analysis()
        location = FaultLocation("memory:data", "word.0x0300", 0)
        assert analysis.is_live(location, 35)

    def test_memory_dead_before_write(self):
        analysis = make_analysis()
        location = FaultLocation("memory:data", "word.0x0300", 0)
        assert not analysis.is_live(location, 20)

    def test_unaccessed_memory_dead(self):
        analysis = make_analysis()
        location = FaultLocation("memory:data", "word.0x0999", 0)
        assert not analysis.is_live(location, 10)


class TestLiveFraction:
    def test_fraction_bounds(self):
        analysis = make_analysis()
        locations = [reg_loc(1), reg_loc(2), reg_loc(9)]
        fraction = analysis.live_fraction(locations, [5, 15, 25])
        assert 0.0 <= fraction <= 1.0

    def test_empty_inputs(self):
        analysis = make_analysis()
        assert analysis.live_fraction([], [1]) == 0.0

    def test_max_samples_caps_and_is_deterministic(self):
        analysis = make_analysis()
        locations = [reg_loc(n) for n in range(10)]
        times = list(range(0, 50))
        capped = analysis.live_fraction(locations, times, max_samples=37)
        again = analysis.live_fraction(locations, times, max_samples=37)
        assert 0.0 <= capped <= 1.0
        assert capped == again

    def test_max_samples_larger_than_space_enumerates(self):
        analysis = make_analysis()
        locations = [reg_loc(1), reg_loc(2)]
        times = [5, 15]
        full = analysis.live_fraction(locations, times)
        assert analysis.live_fraction(
            locations, times, max_samples=10_000
        ) == full


class TestEmptyTrace:
    def test_empty_trace_everything_dead(self):
        """An empty reference trace touches nothing: every traced
        location class is dead, only unknown cells stay live."""
        space = LocationSpace([LocationCell("scan:internal", "cpu.pc", 16)])
        analysis = PreInjectionAnalysis.from_trace(Trace([]), space)
        assert not analysis.is_live(reg_loc(1), 0)
        assert not analysis.is_live(
            FaultLocation("scan:internal", "cpu.psr", 0), 0
        )
        assert not analysis.is_live(
            FaultLocation("memory:data", "word.0x0300", 0), 0
        )
        # PC/IR at t=0 of a zero-length run, then dead.
        pc = FaultLocation("scan:internal", "cpu.pc", 0)
        assert analysis.is_live(pc, 0)
        assert not analysis.is_live(pc, 1)
        # Unknown cells remain conservatively live.
        assert analysis.is_live(
            FaultLocation("scan:internal", "dcache.line0.word0", 0), 0
        )

    def test_empty_trace_live_fraction(self):
        space = LocationSpace([LocationCell("scan:internal", "cpu.pc", 16)])
        analysis = PreInjectionAnalysis.from_trace(Trace([]), space)
        assert analysis.live_fraction([reg_loc(1)], [1, 2, 3]) == 0.0


class TestBuildLivenessOracle:
    def _space(self):
        return LocationSpace([LocationCell("scan:internal", "cpu.pc", 16)])

    def test_unknown_mode_rejected(self):
        import pytest

        from repro.core.preinjection import build_liveness_oracle
        from repro.util.errors import CampaignError

        with pytest.raises(CampaignError):
            build_liveness_oracle("psychic", Trace([]), self._space())

    def test_dynamic_needs_trace(self):
        import pytest

        from repro.core.preinjection import build_liveness_oracle
        from repro.util.errors import CampaignError

        with pytest.raises(CampaignError):
            build_liveness_oracle("dynamic", None, self._space())

    def test_static_needs_program(self):
        import pytest

        from repro.core.preinjection import build_liveness_oracle
        from repro.util.errors import CampaignError

        with pytest.raises(CampaignError):
            build_liveness_oracle("static", Trace([]), self._space())

    def test_modes_build_expected_oracles(self):
        from repro.core.preinjection import (
            HybridPreInjectionAnalysis,
            build_liveness_oracle,
        )
        from repro.staticanalysis import StaticPreInjectionAnalysis
        from repro.thor.assembler import assemble

        program = assemble("start: halt")
        trace = Trace([step(0, reg_writes=(1,))])
        space = self._space()
        dynamic = build_liveness_oracle("dynamic", trace, space)
        static = build_liveness_oracle("static", None, space, program=program)
        hybrid = build_liveness_oracle("hybrid", trace, space, program=program)
        assert isinstance(dynamic, PreInjectionAnalysis)
        assert isinstance(static, StaticPreInjectionAnalysis)
        assert static.duration is None
        assert isinstance(hybrid, HybridPreInjectionAnalysis)

    def test_hybrid_needs_trace(self):
        import pytest

        from repro.core.preinjection import build_liveness_oracle
        from repro.util.errors import CampaignError
        from repro.thor.assembler import assemble

        with pytest.raises(CampaignError):
            build_liveness_oracle(
                "hybrid", None, self._space(),
                program=assemble("start: halt"),
            )


class TestEndToEndLiveness:
    def test_analysis_from_real_reference_run(self, thor_target):
        """Integration: the liveness oracle built from a real trace marks
        the accumulator register of vecsum live mid-run."""
        from tests.conftest import make_campaign

        campaign = make_campaign(use_preinjection=True, n_experiments=1)
        thor_target.read_campaign_data(campaign)
        reference = thor_target.make_reference_run()
        analysis = PreInjectionAnalysis.from_trace(
            reference.trace, thor_target.location_space()
        )
        # r3 is vecsum's accumulator: live through most of the run.
        mid = reference.duration_cycles // 2
        assert analysis.is_live(reg_loc(3), mid)
