"""Tests for the campaign controller (Figure 7 behaviour)."""

import threading
import time

import pytest

from repro.core import create_target
from repro.core.controller import CampaignController
from repro.util.errors import CampaignError
from tests.conftest import make_campaign


def make_controller(thor_target, **campaign_kw):
    campaign = make_campaign(**campaign_kw)
    controller = CampaignController(thor_target)
    return controller, campaign


class TestProgressReporting:
    def test_listener_called_per_experiment(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=5)
        snapshots = []
        controller.add_listener(lambda p: snapshots.append(p.n_done))
        controller.run(campaign)
        # initial + 5 experiments + final
        assert snapshots[-1] == 5
        assert controller.progress.state == "finished"

    def test_progress_counts_terminations(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=8)
        controller.run(campaign)
        assert sum(controller.progress.terminations.values()) == 8

    def test_faults_injected_counted(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=4)
        controller.run(campaign)
        assert controller.progress.n_injected_faults == 4

    def test_rate_and_percent(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=3)
        controller.run(campaign)
        assert controller.progress.percent_done == 100.0
        assert controller.progress.experiments_per_second > 0


class TestEndButton:
    def test_stop_from_listener_ends_early(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=50)

        def listener(progress):
            if progress.n_done == 3:
                controller.stop()

        controller.add_listener(listener)
        sink = controller.run(campaign)
        assert len(sink.results) == 3
        assert controller.progress.state == "stopped"

    def test_results_logged_before_stop_are_kept(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=50)
        controller.add_listener(
            lambda p: controller.stop() if p.n_done >= 2 else None
        )
        sink = controller.run(campaign)
        assert all(r.termination is not None for r in sink.results)


class TestPauseResume:
    def test_pause_resume_from_other_thread(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=20)
        paused_at = []

        def listener(progress):
            if progress.n_done == 2 and not paused_at:
                paused_at.append(progress.n_done)
                controller.pause()

        controller.add_listener(listener)

        def resumer():
            # Wait until the pause takes effect, then resume.
            while not controller.paused:
                time.sleep(0.01)
            time.sleep(0.1)
            controller.resume()

        thread = threading.Thread(target=resumer)
        thread.start()
        sink = controller.run(campaign)
        thread.join()
        assert len(sink.results) == 20
        assert controller.progress.state == "finished"

    def test_stop_while_paused(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=20)
        controller.add_listener(
            lambda p: controller.pause() if p.n_done == 1 else None
        )

        def stopper():
            while not controller.paused:
                time.sleep(0.01)
            controller.stop()

        thread = threading.Thread(target=stopper)
        thread.start()
        sink = controller.run(campaign)
        thread.join()
        assert len(sink.results) < 20
        assert controller.progress.state == "stopped"

    def test_run_in_thread(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=5)
        thread = controller.run_in_thread(campaign)
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert controller.progress.n_done == 5

    def test_double_run_rejected(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=1)
        controller.progress.state = "running"
        with pytest.raises(CampaignError):
            controller.run(campaign)


class TestFailureRecovery:
    """A crashed campaign must not brick the controller (regression:
    progress.state used to stay "running" forever after an exception,
    making every later run() fail with "already running a campaign")."""

    def test_failed_run_sets_failed_state(self, thor_target):
        controller, _ = make_controller(thor_target)
        bad = make_campaign(workload_name="no-such-workload")
        with pytest.raises(Exception):
            controller.run(bad)
        assert controller.progress.state == "failed"

    def test_controller_reusable_after_failure(self, thor_target):
        controller, good = make_controller(thor_target, n_experiments=3)
        bad = make_campaign(workload_name="no-such-workload")
        with pytest.raises(Exception):
            controller.run(bad)
        # The same controller must accept a new campaign afterwards.
        sink = controller.run(good)
        assert len(sink.results) == 3
        assert controller.progress.state == "finished"


class TestPauseTiming:
    """Paused time must not count as campaign time (regression: pause
    duration used to inflate elapsed_seconds and deflate the
    experiments_per_second figure)."""

    def test_pause_excluded_from_elapsed(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=6)
        pause_for = 0.5

        def listener(progress):
            if progress.n_done == 2 and not getattr(listener, "done", False):
                listener.done = True
                controller.pause()

        controller.add_listener(listener)

        def resumer():
            while not controller.paused:
                time.sleep(0.01)
            time.sleep(pause_for)
            controller.resume()

        thread = threading.Thread(target=resumer)
        thread.start()
        wall_start = time.perf_counter()
        controller.run(campaign)
        wall = time.perf_counter() - wall_start
        thread.join()
        # The run really did pause...
        assert wall >= pause_for
        # ...but the active campaign time excludes (almost all of) it.
        assert controller.progress.elapsed_seconds < wall - pause_for * 0.5
        assert controller.progress.experiments_per_second > 0

    def test_resume_is_noop_after_stop(self, thor_target):
        controller, _ = make_controller(thor_target)
        controller.stop()
        controller.resume()
        # resume() must not flip the state back to "running" once the
        # End button was pressed.
        assert controller.progress.state != "running"

    def test_resume_after_stop_still_stops_campaign(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=30)

        fired = []

        def listener(progress):
            if progress.n_done == 2 and not fired:
                fired.append(True)
                controller.pause()
                controller.stop()
                controller.resume()  # must not cancel the stop

        controller.add_listener(listener)
        sink = controller.run(campaign)
        assert controller.progress.state == "stopped"
        assert len(sink.results) < 30


class TestResumeCounters:
    """Resuming must rebuild the fault/termination/detection breakdown
    from the sink (regression: only n_done was restored; the breakdowns
    silently restarted from zero)."""

    def _partial_then_resume(self, db, n_experiments=10, stop_after=4):
        campaign = make_campaign(n_experiments=n_experiments)
        first = CampaignController(create_target("thor-rd"), sink=db)
        first.add_listener(
            lambda p: first.stop() if p.n_done >= stop_after else None
        )
        first.run(campaign)
        assert 0 < first.progress.n_done < n_experiments
        second = CampaignController(create_target("thor-rd"), sink=db)
        second.run(campaign, resume=True)
        return first, second, campaign

    def test_resume_counters_match_uninterrupted_run(self, db):
        _, resumed, campaign = self._partial_then_resume(db)
        # Ground truth: the same campaign run start-to-finish.
        full = CampaignController(create_target("thor-rd"))
        full.run(campaign)
        assert resumed.progress.n_done == full.progress.n_done
        assert (
            resumed.progress.n_injected_faults
            == full.progress.n_injected_faults
        )
        assert resumed.progress.terminations == full.progress.terminations
        assert resumed.progress.detections == full.progress.detections

    def test_resume_termination_totals_cover_all_experiments(self, db):
        _, resumed, campaign = self._partial_then_resume(db)
        assert (
            sum(resumed.progress.terminations.values())
            == campaign.n_experiments
        )

    def test_run_in_thread_passes_resume_through(self, db):
        first, _, campaign = self._partial_then_resume(db)
        already = db.count_experiments(campaign.campaign_name)
        assert already == campaign.n_experiments
        # A third resume pass skips everything that is already logged.
        third = CampaignController(create_target("thor-rd"), sink=db)
        thread = third.run_in_thread(campaign, resume=True)
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert third.progress.state == "finished"
        assert third.progress.n_done == campaign.n_experiments
        assert (
            sum(third.progress.terminations.values())
            == campaign.n_experiments
        )
