"""Tests for the campaign controller (Figure 7 behaviour)."""

import threading
import time

import pytest

from repro.core.controller import CampaignController
from repro.util.errors import CampaignError
from tests.conftest import make_campaign


def make_controller(thor_target, **campaign_kw):
    campaign = make_campaign(**campaign_kw)
    controller = CampaignController(thor_target)
    return controller, campaign


class TestProgressReporting:
    def test_listener_called_per_experiment(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=5)
        snapshots = []
        controller.add_listener(lambda p: snapshots.append(p.n_done))
        controller.run(campaign)
        # initial + 5 experiments + final
        assert snapshots[-1] == 5
        assert controller.progress.state == "finished"

    def test_progress_counts_terminations(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=8)
        controller.run(campaign)
        assert sum(controller.progress.terminations.values()) == 8

    def test_faults_injected_counted(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=4)
        controller.run(campaign)
        assert controller.progress.n_injected_faults == 4

    def test_rate_and_percent(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=3)
        controller.run(campaign)
        assert controller.progress.percent_done == 100.0
        assert controller.progress.experiments_per_second > 0


class TestEndButton:
    def test_stop_from_listener_ends_early(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=50)

        def listener(progress):
            if progress.n_done == 3:
                controller.stop()

        controller.add_listener(listener)
        sink = controller.run(campaign)
        assert len(sink.results) == 3
        assert controller.progress.state == "stopped"

    def test_results_logged_before_stop_are_kept(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=50)
        controller.add_listener(
            lambda p: controller.stop() if p.n_done >= 2 else None
        )
        sink = controller.run(campaign)
        assert all(r.termination is not None for r in sink.results)


class TestPauseResume:
    def test_pause_resume_from_other_thread(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=20)
        paused_at = []

        def listener(progress):
            if progress.n_done == 2 and not paused_at:
                paused_at.append(progress.n_done)
                controller.pause()

        controller.add_listener(listener)

        def resumer():
            # Wait until the pause takes effect, then resume.
            while not controller.paused:
                time.sleep(0.01)
            time.sleep(0.1)
            controller.resume()

        thread = threading.Thread(target=resumer)
        thread.start()
        sink = controller.run(campaign)
        thread.join()
        assert len(sink.results) == 20
        assert controller.progress.state == "finished"

    def test_stop_while_paused(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=20)
        controller.add_listener(
            lambda p: controller.pause() if p.n_done == 1 else None
        )

        def stopper():
            while not controller.paused:
                time.sleep(0.01)
            controller.stop()

        thread = threading.Thread(target=stopper)
        thread.start()
        sink = controller.run(campaign)
        thread.join()
        assert len(sink.results) < 20
        assert controller.progress.state == "stopped"

    def test_run_in_thread(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=5)
        thread = controller.run_in_thread(campaign)
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert controller.progress.n_done == 5

    def test_double_run_rejected(self, thor_target):
        controller, campaign = make_controller(thor_target, n_experiments=1)
        controller.progress.state = "running"
        with pytest.raises(CampaignError):
            controller.run(campaign)
