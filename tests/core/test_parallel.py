"""Tests for the parallel campaign execution engine (repro.core.parallel).

The failure-injection ports below are registered as extra targets so the
worker factory can rebuild them inside worker processes. They force the
start method to ``fork`` (the registrations and environment travel with
the fork); on platforms without fork the whole module is skipped.
"""

import multiprocessing
import os
import time

import pytest

from repro.core import (
    CampaignController,
    ParallelCampaignController,
    ParallelConfig,
    create_target,
    worker_factory,
)
from repro.core.framework import register_target, unregister_target
from repro.core.parallel import canonical_experiment_rows, run_parallel_campaign
from repro.db import GoofiDatabase
from repro.scifi.interface import ThorRDInterface
from repro.util.errors import CampaignError
from tests.conftest import make_campaign

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel tests need the fork start method",
)

#: Environment variable naming a flag file for the crash-once port.
_CRASH_FLAG_ENV = "GOOFI_TEST_CRASH_FLAG"


class HangingPort(ThorRDInterface):
    """A port whose experiment #2 hangs forever (watchdog fodder)."""

    def run_single_experiment(self, index, plan=None, reference=None):
        if index == 2:
            time.sleep(3600)
        return super().run_single_experiment(index, plan, reference)


class CrashOncePort(ThorRDInterface):
    """A port whose experiment #1 kills its process on the first attempt
    only (flag file marks the attempt) — exercises bounded retry."""

    def run_single_experiment(self, index, plan=None, reference=None):
        if index == 1:
            flag = os.environ.get(_CRASH_FLAG_ENV, "")
            if flag and not os.path.exists(flag):
                with open(flag, "w"):
                    pass
                os._exit(3)
        return super().run_single_experiment(index, plan, reference)


@pytest.fixture(scope="module", autouse=True)
def _extra_targets():
    register_target("thor-rd-hang")(HangingPort)
    register_target("thor-rd-crash")(CrashOncePort)
    yield
    unregister_target("thor-rd-hang")
    unregister_target("thor-rd-crash")


def fast_config(**overrides):
    defaults = dict(
        n_workers=2,
        shard_size=3,
        batch_size=4,
        timeout_seconds=30.0,
        max_retries=1,
        start_method="fork",
    )
    defaults.update(overrides)
    return ParallelConfig(**defaults)


class TestParallelMatchesSerial:
    def test_results_identical_to_serial(self, db):
        campaign = make_campaign(n_experiments=10, seed=77)
        create_target("thor-rd").run_campaign(campaign, sink=db)
        par_db = GoofiDatabase(":memory:")
        run_parallel_campaign(
            campaign, worker_factory("thor-rd"), sink=par_db,
            config=fast_config(),
        )
        serial = canonical_experiment_rows(db, campaign.campaign_name)
        parallel = canonical_experiment_rows(par_db, campaign.campaign_name)
        assert len(parallel) == 10
        assert serial == parallel
        par_db.close()

    def test_list_sink_results_arrive_in_index_order(self):
        campaign = make_campaign(n_experiments=9, seed=5)
        sink = run_parallel_campaign(
            campaign, worker_factory("thor-rd"), config=fast_config()
        )
        assert [r.index for r in sink.results] == list(range(9))
        assert all(r.termination is not None for r in sink.results)

    def test_single_worker_pool(self):
        campaign = make_campaign(n_experiments=4)
        sink = run_parallel_campaign(
            campaign,
            worker_factory("thor-rd"),
            config=fast_config(n_workers=1, shard_size=2),
        )
        assert len(sink.results) == 4


class TestParallelController:
    def test_progress_and_state(self):
        controller = ParallelCampaignController(
            worker_factory("thor-rd"), config=fast_config()
        )
        campaign = make_campaign(n_experiments=8)
        snapshots = []
        controller.add_listener(lambda p: snapshots.append(p.n_done))
        controller.run(campaign)
        assert controller.progress.state == "finished"
        assert controller.progress.n_done == 8
        assert controller.progress.n_workers == 2
        # Ordered progress snapshots: n_done climbs monotonically.
        assert snapshots == sorted(snapshots)
        assert sum(controller.progress.terminations.values()) == 8

    def test_stop_from_listener(self):
        controller = ParallelCampaignController(
            worker_factory("thor-rd"), config=fast_config()
        )
        campaign = make_campaign(n_experiments=40)
        controller.add_listener(
            lambda p: controller.stop() if p.n_done >= 3 else None
        )
        sink = controller.run(campaign)
        assert controller.progress.state == "stopped"
        assert 3 <= len(sink.results) < 40
        assert all(r.termination is not None for r in sink.results)

    def test_pause_resume(self):
        controller = ParallelCampaignController(
            worker_factory("thor-rd"), config=fast_config()
        )
        campaign = make_campaign(n_experiments=12)
        paused_once = []

        def listener(progress):
            if progress.n_done == 2 and not paused_once:
                paused_once.append(True)
                controller.pause()

        controller.add_listener(listener)

        import threading

        def resumer():
            while not controller.paused:
                time.sleep(0.01)
            time.sleep(0.2)
            controller.resume()

        thread = threading.Thread(target=resumer)
        thread.start()
        sink = controller.run(campaign)
        thread.join()
        assert controller.progress.state == "finished"
        assert len(sink.results) == 12

    def test_resume_from_sink(self, db):
        campaign = make_campaign(n_experiments=12, seed=21)
        first = ParallelCampaignController(
            worker_factory("thor-rd"), sink=db, config=fast_config()
        )
        first.add_listener(
            lambda p: first.stop() if p.n_done >= 4 else None
        )
        first.run(campaign)
        done_before = db.count_experiments(campaign.campaign_name)
        assert 0 < done_before < 12
        second = ParallelCampaignController(
            worker_factory("thor-rd"), sink=db, config=fast_config()
        )
        second.run(campaign, resume=True)
        assert second.progress.state == "finished"
        assert second.progress.n_done == 12
        assert sum(second.progress.terminations.values()) == 12
        # The resumed-and-completed campaign matches a pure serial run.
        serial_db = GoofiDatabase(":memory:")
        create_target("thor-rd").run_campaign(campaign, sink=serial_db)
        assert canonical_experiment_rows(
            db, campaign.campaign_name
        ) == canonical_experiment_rows(serial_db, campaign.campaign_name)
        serial_db.close()


class TestFailureHandling:
    def test_watchdog_logs_worker_failure(self):
        campaign = make_campaign(n_experiments=5, seed=3)
        sink = run_parallel_campaign(
            campaign,
            worker_factory("thor-rd-hang"),
            config=fast_config(
                n_workers=2, shard_size=1, timeout_seconds=1.5, max_retries=0
            ),
        )
        by_index = {r.index: r for r in sink.results}
        assert sorted(by_index) == [0, 1, 2, 3, 4]
        assert by_index[2].termination.kind == "worker-failure"
        assert "watchdog" in by_index[2].termination.trap_detail
        others = [by_index[i].termination.kind for i in (0, 1, 3, 4)]
        assert all(kind != "worker-failure" for kind in others)

    def test_watchdog_failure_counted_in_progress(self):
        controller = ParallelCampaignController(
            worker_factory("thor-rd-hang"),
            config=fast_config(
                n_workers=2, shard_size=1, timeout_seconds=1.5, max_retries=0
            ),
        )
        controller.run(make_campaign(n_experiments=5, seed=3))
        assert controller.progress.n_worker_failures == 1
        assert controller.progress.terminations.get("worker-failure") == 1

    def test_crashed_worker_retried_to_success(self, tmp_path, monkeypatch):
        flag = tmp_path / "crash-once.flag"
        monkeypatch.setenv(_CRASH_FLAG_ENV, str(flag))
        campaign = make_campaign(n_experiments=6, seed=9)
        sink = run_parallel_campaign(
            campaign,
            worker_factory("thor-rd-crash"),
            config=fast_config(n_workers=2, shard_size=2, max_retries=1),
        )
        assert flag.exists()  # the crash really happened
        by_index = {r.index: r for r in sink.results}
        assert sorted(by_index) == list(range(6))
        # The retried experiment completed normally on a fresh worker.
        assert by_index[1].termination.kind != "worker-failure"
        # And the result set still matches a plain serial run.
        serial = create_target("thor-rd").run_campaign(campaign)
        assert {
            (r.index, r.termination.kind) for r in serial.results
        } == {(r.index, r.termination.kind) for r in sink.results}

    def test_crash_without_retry_budget_is_logged(self, tmp_path, monkeypatch):
        flag = tmp_path / "crash-hard.flag"
        monkeypatch.setenv(_CRASH_FLAG_ENV, str(flag))
        campaign = make_campaign(n_experiments=4, seed=9)
        # max_retries=0 and the crash flag cleared each attempt would
        # still only crash once; with zero retries the first crash is
        # already terminal for the experiment.
        sink = run_parallel_campaign(
            campaign,
            worker_factory("thor-rd-crash"),
            config=fast_config(n_workers=2, shard_size=1, max_retries=0),
        )
        by_index = {r.index: r for r in sink.results}
        assert by_index[1].termination.kind == "worker-failure"
        assert len(sink.results) == 4


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_workers=0),
            dict(shard_size=0),
            dict(batch_size=0),
            dict(max_retries=-1),
            dict(timeout_seconds=0.0),
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        config = ParallelConfig(**kwargs)
        with pytest.raises(CampaignError):
            config.validate()

    def test_worker_factory_rejects_unknown_target(self):
        with pytest.raises(Exception):
            worker_factory("no-such-target")


class TestBatchedSink:
    def test_log_experiments_batch(self, db):
        campaign = make_campaign(n_experiments=5)
        sink = create_target("thor-rd").run_campaign(campaign)
        db.save_campaign(campaign)
        db.log_experiments(campaign, sink.results)
        assert db.count_experiments(campaign.campaign_name) == 5
        loaded = db.load_experiments(campaign.campaign_name)
        assert {r.name for r in loaded} == {r.name for r in sink.results}

    def test_log_experiments_empty_batch_is_noop(self, db):
        campaign = make_campaign(n_experiments=1)
        db.save_campaign(campaign)
        db.log_experiments(campaign, [])
        assert db.count_experiments(campaign.campaign_name) == 0

    def test_file_database_uses_wal(self, tmp_path):
        db = GoofiDatabase(str(tmp_path / "campaign.db"))
        mode = db.query("PRAGMA journal_mode")[0][0]
        assert str(mode).lower() == "wal"
        db.close()

    def test_memory_database_skips_wal(self, db):
        mode = db.query("PRAGMA journal_mode")[0][0]
        assert str(mode).lower() != "wal"


class TestSerialControllerStillWorks:
    """The executor refactor must leave the serial controller intact."""

    def test_serial_controller_unchanged(self, thor_target):
        controller = CampaignController(thor_target)
        sink = controller.run(make_campaign(n_experiments=3))
        assert len(sink.results) == 3
        assert controller.progress.n_workers == 1
