"""Unit tests for fault triggers."""

import random

import pytest

from repro.core.trace import Trace, TraceStep
from repro.core.triggers import TriggerSpec
from repro.util.errors import ConfigurationError


def make_trace():
    """A small synthetic trace: 10 steps, branches at 3 and 7, a call at
    5, and accesses to address 0x200 at steps 2 and 8."""
    steps = []
    for i in range(10):
        steps.append(
            TraceStep(
                index=i,
                pc=0x100 + i,
                cycle_before=i * 10,
                cycle_after=i * 10 + 10,
                is_branch=i in (3, 7),
                branch_taken=i == 3,
                is_call=i == 5,
                mem_address=0x200 if i in (2, 8) else None,
                mem_value=42 if i == 2 else (7 if i == 8 else None),
                mem_is_write=i == 8,
            )
        )
    return Trace(steps=steps)


class TestTimeTriggers:
    def test_uniform_in_range(self):
        spec = TriggerSpec(kind="time-uniform")
        rng = random.Random(1)
        for _ in range(100):
            (time,) = spec.resolve(rng, None, duration_cycles=500)
            assert 1 <= time <= 500

    def test_fixed(self):
        spec = TriggerSpec(kind="time-fixed", time=123)
        assert spec.resolve(random.Random(0), None, 500) == [123]

    def test_clock_multiples(self):
        spec = TriggerSpec(kind="clock", period=100)
        rng = random.Random(2)
        for _ in range(50):
            (time,) = spec.resolve(rng, None, 1000)
            assert time % 100 == 0
            assert 100 <= time <= 1000

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            TriggerSpec().resolve(random.Random(0), None, 0)


class TestEventTriggers:
    def test_branch_trigger_stops_before_branch(self):
        trace = make_trace()
        spec = TriggerSpec(kind="branch", occurrence=1)
        assert spec.resolve(random.Random(0), trace, 100) == [30]

    def test_branch_second_occurrence(self):
        trace = make_trace()
        spec = TriggerSpec(kind="branch", occurrence=2)
        assert spec.resolve(random.Random(0), trace, 100) == [70]

    def test_call_trigger(self):
        trace = make_trace()
        spec = TriggerSpec(kind="call", occurrence=1)
        assert spec.resolve(random.Random(0), trace, 100) == [50]

    def test_address_trigger(self):
        trace = make_trace()
        spec = TriggerSpec(kind="address", address=0x104, occurrence=1)
        assert spec.resolve(random.Random(0), trace, 100) == [40]

    def test_data_access_trigger(self):
        trace = make_trace()
        spec = TriggerSpec(kind="data-access", address=0x200, occurrence=2)
        assert spec.resolve(random.Random(0), trace, 100) == [80]

    def test_data_access_value_filter(self):
        trace = make_trace()
        spec = TriggerSpec(kind="data-access", address=0x200, value=7,
                           occurrence=1)
        assert spec.resolve(random.Random(0), trace, 100) == [80]

    def test_random_occurrence_picks_from_candidates(self):
        trace = make_trace()
        spec = TriggerSpec(kind="branch")  # occurrence=0: random
        rng = random.Random(3)
        seen = {spec.resolve(rng, trace, 100)[0] for _ in range(50)}
        assert seen <= {30, 70}
        assert len(seen) == 2

    def test_needs_trace(self):
        spec = TriggerSpec(kind="branch")
        assert spec.needs_trace
        with pytest.raises(ConfigurationError):
            spec.resolve(random.Random(0), None, 100)

    def test_no_matching_events_rejected(self):
        trace = make_trace()
        spec = TriggerSpec(kind="address", address=0x999)
        with pytest.raises(ConfigurationError):
            spec.resolve(random.Random(0), trace, 100)

    def test_occurrence_out_of_range_rejected(self):
        trace = make_trace()
        spec = TriggerSpec(kind="branch", occurrence=5)
        with pytest.raises(ConfigurationError):
            spec.resolve(random.Random(0), trace, 100)

    def test_time_never_below_one(self):
        # A trigger matching the very first step must still stop at >= 1.
        trace = make_trace()
        spec = TriggerSpec(kind="address", address=0x100, occurrence=1)
        assert spec.resolve(random.Random(0), trace, 100) == [1]


class TestSpec:
    def test_round_trip(self):
        spec = TriggerSpec(kind="data-access", address=5, value=9, occurrence=2)
        assert TriggerSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            TriggerSpec(kind="lunar-phase")
