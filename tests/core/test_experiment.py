"""Unit tests for experiment records."""

from repro.core.experiment import ExperimentResult, Injection, Termination
from repro.core.locations import FaultLocation


class TestInjection:
    def test_dict_round_trip(self):
        injection = Injection(
            time=42,
            location=FaultLocation("scan:internal", "cpu.psr", 3),
            op="flip",
            bit_before=0,
            bit_after=1,
        )
        assert Injection.from_dict(injection.to_dict()) == injection


class TestTermination:
    def test_dict_round_trip(self):
        termination = Termination(
            kind="trap", pc=0x123, cycle=99, trap_name="dcache_parity",
            trap_detail="line 3", trap_code=0,
        )
        assert Termination.from_dict(termination.to_dict()) == termination

    def test_halt_round_trip(self):
        termination = Termination(kind="halt", pc=1, cycle=2, iterations=3)
        assert Termination.from_dict(termination.to_dict()) == termination


class TestExperimentResult:
    def test_experiment_data_payload(self):
        result = ExperimentResult(
            name="c-exp00001",
            index=1,
            campaign_name="c",
            injections=[
                Injection(
                    time=5,
                    location=FaultLocation("memory:code", "word.0x0100", 0),
                    op="flip",
                    bit_before=1,
                    bit_after=0,
                )
            ],
            termination=Termination(kind="halt", pc=0, cycle=10),
            outputs={"total": 55},
            wall_seconds=0.01,
        )
        data = result.experiment_data()
        assert data["index"] == 1
        assert data["outputs"] == {"total": 55}
        assert data["termination"]["kind"] == "halt"
        assert len(data["injections"]) == 1

    def test_payload_with_no_termination(self):
        result = ExperimentResult(name="x", index=0, campaign_name="c")
        assert result.experiment_data()["termination"] is None
