"""Unit tests for the golden-run checkpoint store (repro.core.checkpoint).

Covers the delta encode/decode round-trip, nearest-checkpoint lookup,
the canonical state digest, and the port-level fingerprint-mismatch
cold fallback.
"""

import pytest

from repro.core import create_target
from repro.core.checkpoint import (
    DEFAULT_CHECKPOINT_INTERVAL,
    PAGE_WORDS,
    CheckpointMismatch,
    CheckpointStore,
    CheckpointTick,
    state_digest,
)
from repro.util.errors import CampaignError
from tests.conftest import make_campaign


def page(fill: int) -> list:
    return [fill] * PAGE_WORDS


def make_store(*ticks) -> CheckpointStore:
    store = CheckpointStore(context="unit")
    for cycle, dirty in ticks:
        store.append(CheckpointTick(cycle=cycle, payload={}, dirty_pages=dirty))
    return store


class TestStateDigest:
    def test_deterministic(self):
        parts = {"a": [1, 2, 3], "b": ("x", None, True), "c": b"blob"}
        assert state_digest(parts) == state_digest(parts)

    def test_key_order_irrelevant(self):
        assert state_digest({"a": 1, "b": 2}) == state_digest({"b": 2, "a": 1})

    def test_type_tags_prevent_collisions(self):
        assert state_digest(0) != state_digest(False)
        assert state_digest("") != state_digest(None)
        assert state_digest([1]) != state_digest((1, 0))
        assert state_digest("ab") != state_digest(b"ab")

    def test_int_list_fast_path_matches_semantics(self):
        # A pure-int list and the same list with one value changed must
        # differ; a bool hiding in the list must not take the int path.
        assert state_digest([1, 2, 3]) != state_digest([1, 2, 4])
        assert state_digest([1, 0]) != state_digest([1, False])

    def test_rejects_unhashable_types(self):
        with pytest.raises(TypeError):
            state_digest({"bad": 1.5})


class TestStoreAppend:
    def test_cycles_must_increase(self):
        store = make_store((0, {}), (100, {}))
        with pytest.raises(CampaignError):
            store.append(CheckpointTick(cycle=100, payload={}))

    def test_page_size_validated(self):
        store = CheckpointStore()
        with pytest.raises(CampaignError):
            store.append(
                CheckpointTick(cycle=0, payload={}, dirty_pages={0: [1, 2]})
            )

    def test_len_and_span(self):
        store = make_store((0, {}), (512, {}), (1024, {}))
        assert len(store) == 3
        assert store.span() == (0, 1024)


class TestNearestLookup:
    def test_exact_and_between(self):
        store = make_store((0, {}), (512, {}), (1024, {}))
        assert store.nearest(0) == 0
        assert store.nearest(511) == 0
        assert store.nearest(512) == 1
        assert store.nearest(700) == 1
        assert store.nearest(99999) == 2

    def test_before_first_and_empty(self):
        assert CheckpointStore().nearest(10) is None
        store = make_store((100, {}),)
        assert store.nearest(99) is None

    def test_nearest_before_is_strict(self):
        """The warm-restore lookup must never return the checkpoint
        captured *at* the requested cycle — restoring it would land the
        target on the injection instant and skip that cycle's trigger
        evaluation (the off-by-one this method exists to prevent)."""
        store = make_store((0, {}), (512, {}), (1024, {}))
        assert store.nearest_before(512) == 0   # nearest() would say 1
        assert store.nearest_before(513) == 1
        assert store.nearest_before(1024) == 1
        assert store.nearest_before(99999) == 2
        assert store.nearest_before(0) is None
        assert CheckpointStore().nearest_before(10) is None

    def test_first_after_is_strict(self):
        store = make_store((0, {}), (512, {}), (1024, {}))
        assert store.first_after(0) == 1
        assert store.first_after(511) == 1
        assert store.first_after(512) == 2
        assert store.first_after(1024) is None
        assert CheckpointStore().first_after(0) is None


class TestDeltaRoundTrip:
    def test_later_deltas_win(self):
        store = make_store(
            (0, {0: page(1), 1: page(2)}),
            (512, {1: page(3)}),
            (1024, {2: page(4)}),
        )
        image = store.restore_image(2)
        assert image.pages[0] == page(1)
        assert image.pages[1] == page(3)  # overwritten by tick 1
        assert image.pages[2] == page(4)

    def test_intermediate_image_excludes_later_deltas(self):
        store = make_store(
            (0, {0: page(1)}),
            (512, {0: page(9), 1: page(2)}),
        )
        image = store.restore_image(0)
        assert image.pages == {0: page(1)}

    def test_bad_index_rejected(self):
        with pytest.raises(CampaignError):
            make_store((0, {})).restore_image(1)

    def test_stats_accounting(self):
        store = make_store(
            (0, {0: page(1), 1: page(2)}),
            (512, {1: page(3)}),
        )
        stats = store.stats()
        assert stats["checkpoints"] == 2
        assert stats["delta_pages"] == 3
        assert stats["unique_pages"] == 2
        assert stats["delta_words"] == 3 * PAGE_WORDS


class TestThorCaptureRestore:
    """Port-level round trip on the real Thor target."""

    def _prepared(self, **overrides):
        target = create_target("thor-rd")
        campaign = make_campaign(
            n_experiments=2, warm_start=True, **overrides
        )
        target.prepare_run(campaign)
        return target

    def test_reference_run_captures_checkpoints(self):
        target = self._prepared()
        store = target._checkpoints
        assert store is not None and len(store) >= 1
        assert store.cycles[0] == 0
        intervals = [
            b - a for a, b in zip(store.cycles, store.cycles[1:])
        ]
        assert all(i >= DEFAULT_CHECKPOINT_INTERVAL for i in intervals)

    def test_restore_round_trip_fingerprint(self):
        target = self._prepared()
        store = target._checkpoints
        image = store.restore_image(len(store) - 1)
        # Must not raise: the restored state reproduces the fingerprint.
        target.restore_checkpoint(image)
        assert target.card.cpu.cycles == image.cycle

    def test_tampered_fingerprint_raises_mismatch(self):
        target = self._prepared()
        store = target._checkpoints
        image = store.restore_image(0)
        image.fingerprint = "0" * 64
        with pytest.raises(CheckpointMismatch):
            target.restore_checkpoint(image)

    def test_tampered_store_falls_back_cold(self):
        """A corrupted checkpoint must cost speed, never correctness."""
        clean = self._prepared()
        results = [clean.run_single_experiment(i) for i in range(2)]

        tampered = self._prepared()
        for index in range(len(tampered._checkpoints)):
            tampered._checkpoints.tick(index).fingerprint = "f" * 64
        fallback = [tampered.run_single_experiment(i) for i in range(2)]

        for a, b in zip(results, fallback):
            assert a.termination.kind == b.termination.kind
            assert a.outputs == b.outputs
            assert a.state_vector == b.state_vector

    def test_detail_mode_disables_capture(self):
        target = self._prepared(logging_mode="detail")
        assert target._checkpoints is None

    def test_swifi_pre_never_captures(self):
        target = self._prepared(
            technique="swifi-pre", location_patterns=["memory:data/*"]
        )
        assert target._checkpoints is None

    def test_tsm_port_degrades_to_cold(self):
        """A port without the checkpoint blocks keeps the cold path and
        still completes its campaign."""
        from repro.tsm.interface import TsmInterface

        target = TsmInterface()
        campaign = make_campaign(
            campaign_name="tsm-warm",
            target_name="tsm-1",
            workload_name="sumsq",
            location_patterns=[
                "scan:internal/tsm.dstack.*", "scan:internal/tsm.sp"
            ],
            n_experiments=2,
            warm_start=True,
        )
        sink = target.run_campaign(campaign)
        assert target._checkpoints is None
        assert len(sink.results) == 2
