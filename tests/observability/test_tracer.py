"""Tracer: disabled fast path, JSONL round-trip, schema validation."""

import json
import time

import pytest

from repro.observability.tracer import (
    NULL_SPAN,
    SCHEMA_VERSION,
    TraceSchemaError,
    Tracer,
    read_trace,
    validate_record,
)


class TestDisabledPath:
    def test_disabled_tracer_is_marked_disabled(self):
        assert Tracer().enabled is False

    def test_span_returns_shared_null_singleton(self):
        tracer = Tracer()
        assert tracer.span("experiment") is NULL_SPAN
        assert tracer.span("other", index=3) is NULL_SPAN

    def test_null_span_is_a_noop_context_manager(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN

    def test_event_is_a_noop(self):
        Tracer().event("campaign-state", state="paused")  # must not raise

    def test_no_file_created_when_disabled(self, tmp_path):
        path = tmp_path / "never.jsonl"
        tracer = Tracer()
        tracer.event("x")
        with tracer.span("y"):
            pass
        tracer.flush()
        tracer.close()
        assert not path.exists()


class TestRoundTrip:
    def test_span_and_event_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path=path)
        with tracer.span("experiment", campaign="c1", index=7):
            time.sleep(0.001)
        tracer.event("campaign-state", state="running")
        tracer.close()

        records = read_trace(path)
        assert len(records) == 2
        span, event = records
        assert span["kind"] == "span"
        assert span["name"] == "experiment"
        assert span["v"] == SCHEMA_VERSION
        assert span["fields"] == {"campaign": "c1", "index": 7}
        assert span["dur_s"] > 0
        assert event["kind"] == "event"
        assert event["fields"] == {"state": "running"}
        assert isinstance(event["pid"], int)

    def test_span_records_exception_type(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path=path)
        with pytest.raises(RuntimeError):
            with tracer.span("experiment"):
                raise RuntimeError("boom")
        tracer.close()
        (record,) = read_trace(path)
        assert record["fields"]["exc_type"] == "RuntimeError"

    def test_buffer_sink(self):
        buffer = []
        tracer = Tracer(buffer=buffer)
        assert tracer.enabled
        tracer.event("tick", n=1)
        with tracer.span("work"):
            pass
        assert [r["kind"] for r in buffer] == ["event", "span"]
        for record in buffer:
            validate_record(record)

    def test_records_are_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path=path)
        for n in range(5):
            tracer.event("tick", n=n)
        tracer.close()
        lines = [
            line
            for line in open(path, encoding="utf-8").read().splitlines()
            if line
        ]
        assert len(lines) == 5
        assert [json.loads(line)["fields"]["n"] for line in lines] == list(
            range(5)
        )


class TestValidation:
    def _record(self, **overrides):
        record = {
            "v": SCHEMA_VERSION,
            "kind": "event",
            "name": "tick",
            "ts": 123.0,
            "pid": 1,
            "fields": {},
        }
        record.update(overrides)
        return record

    def test_valid_record_is_returned(self):
        record = self._record()
        assert validate_record(record) is record

    @pytest.mark.parametrize(
        "overrides",
        [
            {"v": 99},
            {"kind": "bogus"},
            {"name": ""},
            {"ts": "yesterday"},
            {"pid": "one"},
            {"fields": []},
            {"kind": "span"},  # span without dur_s
            {"kind": "span", "dur_s": -1.0},
        ],
    )
    def test_malformed_records_rejected(self, overrides):
        with pytest.raises(TraceSchemaError):
            validate_record(self._record(**overrides))

    def test_missing_keys_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_record({"v": SCHEMA_VERSION})

    def test_non_object_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_record([1, 2, 3])

    def test_read_trace_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(TraceSchemaError):
            read_trace(str(path))
