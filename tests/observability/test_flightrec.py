"""Tests for the crash flight recorder (ring buffer + dumps)."""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro import observability
from repro.observability.flightrec import (
    NULL_FLIGHTREC,
    FlightRecorder,
    flight_path,
    read_flight_dump,
)
from repro.observability.tracer import TraceSchemaError


class TestRing:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=5, directory=".")
        for i in range(20):
            recorder.record(
                {"v": 1, "kind": "event", "name": f"e{i}", "ts": 0.0,
                 "pid": 1, "fields": {}}
            )
        records = recorder.records()
        assert len(records) == 5
        assert records[0]["name"] == "e15"
        assert records[-1]["name"] == "e19"

    def test_disabled_records_nothing(self):
        assert not NULL_FLIGHTREC.enabled
        NULL_FLIGHTREC.record({"name": "x"})
        assert len(NULL_FLIGHTREC) == 0
        assert NULL_FLIGHTREC.dump("whatever") is None

    def test_zero_capacity_disables(self):
        assert not FlightRecorder(capacity=0).enabled


class TestDump:
    def test_dump_is_schema_valid_jsonl(self, tmp_path):
        recorder = FlightRecorder(capacity=8, directory=str(tmp_path))
        recorder.record(
            {"v": 1, "kind": "event", "name": "worker-spawn", "ts": 1.0,
             "pid": 42, "fields": {"worker": 0}}
        )
        path = recorder.dump("unhandled-exception", campaign="c1")
        assert path == flight_path(str(tmp_path))
        records = read_flight_dump(path)
        assert records[0]["name"] == "flight-dump"
        assert records[0]["fields"]["reason"] == "unhandled-exception"
        assert records[0]["fields"]["campaign"] == "c1"
        assert records[1]["name"] == "worker-spawn"
        assert recorder.dump_reasons == ["unhandled-exception"]

    def test_repeated_dumps_overwrite(self, tmp_path):
        recorder = FlightRecorder(capacity=8, directory=str(tmp_path))
        recorder.dump("first")
        recorder.dump("second")
        records = read_flight_dump(flight_path(str(tmp_path)))
        assert records[0]["fields"]["reason"] == "second"
        assert recorder.dump_reasons == ["first", "second"]

    def test_read_flight_dump_rejects_plain_trace(self, tmp_path):
        path = tmp_path / "not-a-dump.jsonl"
        record = {"v": 1, "kind": "event", "name": "other", "ts": 0.0,
                  "pid": 1, "fields": {}}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(TraceSchemaError):
            read_flight_dump(str(path))


class TestTracerRingSink:
    def test_tracer_mirrors_into_ring_without_file(self, tmp_path):
        obs = observability.configure(
            metrics=False, flight_records=16, flight_dir=str(tmp_path)
        )
        try:
            assert obs.flightrec.enabled
            assert obs.tracer.enabled  # ring-only tracer is live
            assert obs.tracer.path is None  # ...but writes no file
            obs.tracer.event("scan-op", op="read")
            with obs.tracer.span("experiment", index=3):
                pass
            names = [r["name"] for r in obs.flightrec.records()]
            assert names == ["scan-op", "experiment"]
            path = obs.flightrec.dump("worker-failure", index=3)
            records = read_flight_dump(path)
            assert [r["name"] for r in records[1:]] == [
                "scan-op", "experiment",
            ]
        finally:
            observability.disable()

    def test_ring_and_file_tracing_together(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        obs = observability.configure(
            trace_path=str(trace),
            metrics=False,
            flight_records=4,
            flight_dir=str(tmp_path),
        )
        try:
            obs.tracer.event("one")
            obs.flush()
            assert len(obs.flightrec) == 1
            assert trace.exists()
        finally:
            observability.disable()


class TestSignalHandler:
    def test_sigterm_dump_in_subprocess(self, tmp_path):
        """A SIGTERM'd process with the handler installed leaves a
        flight-<pid>.jsonl post-mortem (the watchdog-kill path)."""
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        script = f"""
import os, signal, sys
sys.path.insert(0, {json.dumps(src_dir)})
from repro.observability.flightrec import FlightRecorder
recorder = FlightRecorder(capacity=8, directory={json.dumps(str(tmp_path))})
recorder.record({{"v": 1, "kind": "event", "name": "pre-kill", "ts": 0.0,
                  "pid": os.getpid(), "fields": {{}}}})
assert recorder.install_signal_handler()
print(os.getpid(), flush=True)
signal.pause()
"""
        process = subprocess.Popen(
            [sys.executable, "-c", script], stdout=subprocess.PIPE
        )
        try:
            pid = int(process.stdout.readline().strip())
            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=10)
        finally:
            process.stdout.close()
            if process.poll() is None:
                process.kill()
        assert returncode == -signal.SIGTERM  # default disposition re-raised
        records = read_flight_dump(flight_path(str(tmp_path), pid))
        assert records[0]["fields"]["reason"] == "watchdog-kill"
        assert any(r["name"] == "pre-kill" for r in records)

    def test_install_refuses_off_main_thread(self):
        import threading

        recorder = FlightRecorder(capacity=4)
        outcome = []
        thread = threading.Thread(
            target=lambda: outcome.append(recorder.install_signal_handler())
        )
        thread.start()
        thread.join()
        assert outcome == [False]
