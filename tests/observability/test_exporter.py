"""Tests for the OpenMetrics HTTP exporter."""

import json
import urllib.error
import urllib.request

import pytest

from repro import observability
from repro.observability.exporter import (
    CONTENT_TYPE_OPENMETRICS,
    MetricsExporter,
    render_openmetrics,
    sanitize_metric_name,
)
from repro.observability.health import CampaignHealthMonitor
from repro.observability.metrics import MetricsRegistry


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return (
            response.status,
            response.headers.get("Content-Type"),
            response.read().decode("utf-8"),
        )


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("campaign.n_done") == "goofi_campaign_n_done"

    def test_invalid_chars(self):
        assert sanitize_metric_name("a-b c") == "goofi_a_b_c"

    def test_leading_digit(self):
        assert sanitize_metric_name("7up").startswith("goofi__7")


class TestRenderOpenMetrics:
    def test_counter_total_suffix(self):
        text = render_openmetrics({"counters": {"experiments_total": 5}})
        assert "# TYPE goofi_experiments counter" in text
        assert "goofi_experiments_total 5" in text
        assert text.endswith("# EOF\n")

    def test_counter_without_total_suffix_gains_one(self):
        text = render_openmetrics({"counters": {"db.rows": 3}})
        assert "goofi_db_rows_total 3" in text

    def test_worker_prefix_becomes_label(self):
        text = render_openmetrics(
            {
                "counters": {
                    "worker0.experiments_total": 4,
                    "worker1.experiments_total": 6,
                }
            }
        )
        assert 'goofi_experiments_total{worker="0"} 4' in text
        assert 'goofi_experiments_total{worker="1"} 6' in text
        # One family announcement for both samples.
        assert text.count("# TYPE goofi_experiments counter") == 1

    def test_gauges(self):
        text = render_openmetrics({"gauges": {"campaign.n_done": 7}})
        assert "# TYPE goofi_campaign_n_done gauge" in text
        assert "goofi_campaign_n_done 7" in text

    def test_histogram_cumulative_buckets(self):
        snapshot = {
            "histograms": {
                "experiment_seconds": {
                    "count": 6,
                    "sum": 1.5,
                    "bounds": [0.1, 1.0],
                    "bucket_counts": [2, 3],
                }
            }
        }
        text = render_openmetrics(snapshot)
        assert "# TYPE goofi_experiment_seconds histogram" in text
        assert 'goofi_experiment_seconds_bucket{le="0.1"} 2' in text
        # Cumulative: 2 + 3.
        assert 'goofi_experiment_seconds_bucket{le="1"} 5' in text
        assert 'goofi_experiment_seconds_bucket{le="+Inf"} 6' in text
        assert "goofi_experiment_seconds_sum 1.5" in text
        assert "goofi_experiment_seconds_count 6" in text

    def test_empty_snapshot_is_valid(self):
        assert render_openmetrics({}) == "# EOF\n"


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("experiments_total").inc(3)
    registry.gauge("campaign.n_done").set(3)
    return registry


class TestHttpEndpoints:
    def test_metrics_endpoint(self, registry):
        with MetricsExporter(port=0, registry=lambda: registry) as exporter:
            status, content_type, body = _get(exporter.url("/metrics"))
        assert status == 200
        assert content_type == CONTENT_TYPE_OPENMETRICS
        assert "goofi_experiments_total 3" in body
        assert body.endswith("# EOF\n")

    def test_snapshot_endpoint(self, registry):
        with MetricsExporter(port=0, registry=lambda: registry) as exporter:
            status, content_type, body = _get(exporter.url("/snapshot"))
        assert status == 200
        assert content_type == "application/json"
        snapshot = json.loads(body)
        assert snapshot["counters"]["experiments_total"] == 3

    def test_healthz_ok(self, registry):
        monitor = CampaignHealthMonitor()
        monitor.begin("c1", n_total=10)
        with MetricsExporter(
            port=0, registry=lambda: registry, health=lambda: monitor
        ) as exporter:
            status, _, body = _get(exporter.url("/healthz"))
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["campaign"] == "c1"

    def test_healthz_503_on_stall(self, registry):
        clock = [100.0]
        monitor = CampaignHealthMonitor(
            stall_floor_seconds=1.0, clock=lambda: clock[0]
        )
        monitor.begin("c1", n_total=10)
        clock[0] += 0.5
        monitor.record_result("halt")
        clock[0] += 1000.0  # silence far past the threshold
        with MetricsExporter(
            port=0, registry=lambda: registry, health=lambda: monitor
        ) as exporter:
            # The probe itself runs check(): the stall is detected live.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(exporter.url("/healthz"))
        assert excinfo.value.code == 503
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert payload["status"] == "stall"
        assert payload["alerts"]

    def test_unknown_path_404(self, registry):
        with MetricsExporter(port=0, registry=lambda: registry) as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(exporter.url("/nope"))
        assert excinfo.value.code == 404

    def test_default_registry_resolves_global(self):
        obs = observability.configure(metrics=True)
        try:
            obs.metrics.counter("live_total").inc()
            with MetricsExporter(port=0) as exporter:
                _, _, body = _get(exporter.url("/metrics"))
            assert "goofi_live_total 1" in body
        finally:
            observability.disable()

    def test_ephemeral_port_is_bound(self, registry):
        with MetricsExporter(port=0, registry=lambda: registry) as exporter:
            assert exporter.port > 0
            assert str(exporter.port) in exporter.url()


class TestEnvBootstrapExporter:
    def test_metrics_port_env(self, tmp_path, monkeypatch):
        """GOOFI_METRICS_PORT=0 starts an exporter on an ephemeral port
        and reports it via GOOFI_METRICS_PORT_FILE."""
        from repro import observability as obs_module

        port_file = tmp_path / "port"
        monkeypatch.setenv("GOOFI_METRICS_PORT", "0")
        monkeypatch.setenv("GOOFI_METRICS_PORT_FILE", str(port_file))
        try:
            obs_module._bootstrap_from_env()
            port = int(port_file.read_text().strip())
            status, _, body = _get(f"http://127.0.0.1:{port}/metrics")
            assert status == 200
            assert body.endswith("# EOF\n")
        finally:
            exporter = obs_module._bootstrap_exporter
            if exporter is not None:
                exporter.stop()
            obs_module._bootstrap_exporter = None
            obs_module.disable()
