"""Live-telemetry integration tests: scraping a running parallel
campaign, stall alerts from a wedged worker, and RunMeta provenance.

These are the ISSUE acceptance scenarios: an HTTP scrape during a
running parallel campaign returns valid OpenMetrics whose experiment
counters sum to the controller totals; an artificially stalled worker
raises a stall alert and leaves a flight-recorder dump; and
``goofi-metrics runs`` lists the run with matching config hash and seed.
"""

import glob
import json
import multiprocessing
import os
import re
import threading
import time
import urllib.request

import pytest

from repro import observability
from repro.core import ParallelCampaignController, worker_factory
from repro.core.framework import register_target, unregister_target
from repro.db import GoofiDatabase
from repro.observability.cli import main as metrics_main
from repro.observability.flightrec import read_flight_dump
from repro.observability.runmeta import campaign_config_hash
from tests.conftest import make_campaign
from tests.core.test_parallel import HangingPort

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel tests need the fork start method",
)


@pytest.fixture(scope="module", autouse=True)
def _hang_target():
    register_target("thor-rd-hang-live")(HangingPort)
    yield
    unregister_target("thor-rd-hang-live")


def _fast_config(**overrides):
    from repro.core import ParallelConfig

    defaults = dict(
        n_workers=2,
        shard_size=3,
        batch_size=4,
        timeout_seconds=30.0,
        max_retries=1,
        start_method="fork",
    )
    defaults.update(overrides)
    return ParallelConfig(**defaults)


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


_SAMPLE = re.compile(
    r'^goofi_experiments_total\{worker="(\d+)"\} (\d+)$', re.MULTILINE
)


class TestScrapeDuringParallelRun:
    def test_openmetrics_counters_sum_to_controller_totals(self, tmp_path):
        observability.configure(metrics=True)
        exporter = observability.start_exporter(port=0)
        try:
            campaign = make_campaign(n_experiments=24, seed=11)
            controller = ParallelCampaignController(
                worker_factory("thor-rd"), config=_fast_config()
            )
            mid_run = {}

            def scrape_while_running():
                deadline = time.perf_counter() + 60.0
                while time.perf_counter() < deadline:
                    status, body = _get(exporter.url("/snapshot"))
                    snapshot = json.loads(body)
                    n_done = snapshot.get("gauges", {}).get(
                        "campaign.n_done", 0
                    )
                    if 0 < n_done < 24:
                        mid_status, mid_body = _get(exporter.url("/metrics"))
                        mid_run["status"] = mid_status
                        mid_run["body"] = mid_body
                        return
                    if n_done >= 24:
                        return
                    time.sleep(0.005)

            scraper = threading.Thread(target=scrape_while_running)
            scraper.start()
            controller.run(campaign)
            scraper.join(timeout=60)
            assert controller.progress.state == "finished"

            # Mid-run scrape (when the poller caught one) is well-formed.
            if mid_run:
                assert mid_run["status"] == 200
                assert mid_run["body"].endswith("# EOF\n")

            # Final scrape: per-worker experiment counters carry the
            # worker label and sum to the controller's total.
            status, body = _get(exporter.url("/metrics"))
            assert status == 200
            assert body.endswith("# EOF\n")
            per_worker = {
                worker: int(count)
                for worker, count in _SAMPLE.findall(body)
            }
            assert len(per_worker) >= 2  # both workers did work
            assert sum(per_worker.values()) == controller.progress.n_done
            assert controller.progress.n_done == 24

            # /healthz agrees the campaign drained.
            status, body = _get(exporter.url("/healthz"))
            assert status == 200
            payload = json.loads(body)
            assert payload["n_done"] == 24
            assert payload["campaign"] == campaign.campaign_name
        finally:
            exporter.stop()
            observability.disable()


class TestStallAlertAndFlightDump:
    def test_wedged_worker_raises_stall_and_dumps_flight(self, tmp_path):
        """Experiment #2 hangs forever: the health monitor flags the
        stall from the event loop (floor 2s), then the watchdog kills
        the worker (4s) and the flight recorder dumps post-mortems."""
        observability.configure(
            metrics=True, flight_records=64, flight_dir=str(tmp_path)
        )
        try:
            campaign = make_campaign(
                campaign_name="stall-campaign", n_experiments=8, seed=2
            )
            controller = ParallelCampaignController(
                worker_factory("thor-rd-hang-live"),
                config=_fast_config(
                    n_workers=2,
                    shard_size=2,
                    timeout_seconds=4.0,
                    max_retries=0,
                ),
            )
            controller.run(campaign)
            assert controller.progress.state == "finished"
            # The hung experiment surfaced as a worker-failure, never
            # silently dropped.
            assert controller.progress.terminations.get("worker-failure") == 1

            # Stall alert fired before the watchdog (2s floor < 4s kill).
            kinds = [alert.kind for alert in controller.health.alerts]
            assert "stall" in kinds

            # The parent dumped its ring for the death and the failure.
            obs = observability.get_observability()
            assert "worker-death" in obs.flightrec.dump_reasons
            assert "worker-failure" in obs.flightrec.dump_reasons
            dumps = glob.glob(str(tmp_path / "flight-*.jsonl"))
            assert dumps
            parent_dump = str(tmp_path / f"flight-{os.getpid()}.jsonl")
            records = read_flight_dump(parent_dump)
            assert records[0]["fields"]["reason"] == "worker-failure"
            names = {record["name"] for record in records}
            assert "worker-death" in names

            # The stall alert is mirrored into metrics and the window.
            counters = obs.metrics.snapshot()["counters"]
            assert counters.get("health.stall_alerts_total", 0) >= 1
        finally:
            observability.disable()


class TestParallelRunProvenance:
    def test_runmeta_row_matches_campaign(self, tmp_path, capsys):
        db_path = str(tmp_path / "prov.db")
        campaign = make_campaign(
            campaign_name="prov-campaign", n_experiments=10, seed=42
        )
        observability.configure(metrics=True)
        try:
            with GoofiDatabase(db_path) as db:
                controller = ParallelCampaignController(
                    worker_factory("thor-rd"),
                    sink=db,
                    config=_fast_config(),
                )
                controller.run(campaign)
                runs = db.list_runs(campaign_name="prov-campaign")
            assert len(runs) == 1
            run = runs[0]
            assert run.state == "finished"
            assert run.seed == 42
            assert run.n_workers == 2
            assert run.config_hash == campaign_config_hash(campaign)
            snapshot = run.metrics_snapshot
            assert snapshot is not None
            total = sum(
                value
                for name, value in snapshot["counters"].items()
                if name.endswith("experiments_total")
            )
            assert total == 10
        finally:
            observability.disable()

        # The acceptance check: `goofi-metrics runs` lists the row with
        # the matching config hash prefix and seed.
        assert metrics_main(["runs", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "prov-campaign" in out
        assert "42" in out
        assert campaign_config_hash(campaign)[:12] in out
