"""The goofi-metrics CLI and the goofi run --trace/--metrics-out flags."""

import json

import pytest

from repro.observability.cli import main as metrics_main
from repro.ui.app import main as goofi_main


@pytest.fixture
def snapshot_file(tmp_path):
    snapshot = {
        "schema": 1,
        "created": 0.0,
        "counters": {"experiments_total": 10, "db.rows_total": 10},
        "gauges": {"campaign.n_done": 10},
        "histograms": {
            "experiment_seconds": {
                "bounds": [0.1],
                "bucket_counts": [10, 0],
                "count": 10,
                "sum": 0.5,
                "min": 0.01,
                "max": 0.09,
            }
        },
    }
    path = tmp_path / "metrics.json"
    path.write_text(json.dumps(snapshot))
    return path, snapshot


class TestGoofiMetrics:
    def test_report(self, snapshot_file, capsys):
        path, _ = snapshot_file
        assert metrics_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "experiments_total" in out
        assert "experiment_seconds" in out

    def test_diff(self, snapshot_file, tmp_path, capsys):
        path, snapshot = snapshot_file
        newer = dict(snapshot)
        newer["counters"] = {"experiments_total": 20, "db.rows_total": 10}
        new_path = tmp_path / "new.json"
        new_path.write_text(json.dumps(newer))
        assert metrics_main(["diff", str(path), str(new_path)]) == 0
        out = capsys.readouterr().out
        assert "experiments_total" in out
        assert "+100.0%" in out
        # Unchanged metrics are not listed.
        assert "db.rows_total" not in out

    def test_trace(self, tmp_path, capsys):
        record = {
            "v": 1,
            "kind": "span",
            "name": "experiment",
            "ts": 1.0,
            "dur_s": 0.5,
            "pid": 1,
            "fields": {},
        }
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(record) + "\n")
        assert metrics_main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 valid records" in out
        assert "experiment" in out

    def test_diff_metric_only_in_new_side(self, snapshot_file, tmp_path,
                                          capsys):
        path, snapshot = snapshot_file
        newer = dict(snapshot)
        newer["counters"] = dict(
            snapshot["counters"], **{"health.stall_alerts_total": 2}
        )
        new_path = tmp_path / "new.json"
        new_path.write_text(json.dumps(newer))
        assert metrics_main(["diff", str(path), str(new_path)]) == 0
        out = capsys.readouterr().out
        line = next(
            l for l in out.splitlines() if "health.stall_alerts_total" in l
        )
        assert line.rstrip().endswith("added")

    def test_diff_metric_only_in_old_side(self, snapshot_file, tmp_path,
                                          capsys):
        path, snapshot = snapshot_file
        newer = dict(snapshot)
        newer["counters"] = {"experiments_total": 10}  # db.rows_total gone
        newer["gauges"] = {}
        newer["histograms"] = {}
        new_path = tmp_path / "new.json"
        new_path.write_text(json.dumps(newer))
        assert metrics_main(["diff", str(path), str(new_path)]) == 0
        out = capsys.readouterr().out
        rows_line = next(
            l for l in out.splitlines() if "db.rows_total" in l
        )
        assert rows_line.rstrip().endswith("removed")
        gauge_line = next(
            l for l in out.splitlines() if "campaign.n_done" in l
        )
        assert gauge_line.rstrip().endswith("removed")

    def test_trace_reads_rotated_sibling(self, tmp_path, capsys):
        def record(name):
            return {
                "v": 1, "kind": "event", "name": name, "ts": 1.0,
                "pid": 1, "fields": {},
            }

        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(record("recent")) + "\n")
        (tmp_path / "trace.jsonl.1").write_text(
            json.dumps(record("older")) + "\n"
        )
        assert metrics_main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 valid records" in out
        assert "older" in out
        assert "recent" in out

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert metrics_main(["report", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_malformed_trace_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 99}\n')
        assert metrics_main(["trace", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestGoofiRunFlags:
    def _setup_campaign(self, tmp_path):
        db = str(tmp_path / "g.db")
        assert goofi_main([
            "campaign", "--db", db, "--name", "c1",
            "--experiments", "5", "--seed", "3",
        ]) == 0
        return db

    def test_run_with_trace_and_metrics_out(self, tmp_path, capsys):
        db = self._setup_campaign(tmp_path)
        trace = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.json"
        assert goofi_main([
            "run", "--db", db, "--campaign", "c1", "--quiet",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        # The progress window gains the live metrics digest line.
        assert "metrics:" in out

        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["experiments_total"] == 5
        assert snapshot["counters"]["db.rows_total"] == 5

        # The trace validates and its spans cover the campaign.
        assert metrics_main(["trace", str(trace)]) == 0
        assert "campaign" in capsys.readouterr().out

        # The global observability is restored to disabled afterwards.
        from repro import observability

        assert observability.get_observability().enabled is False

    def test_run_without_flags_stays_uninstrumented(self, tmp_path, capsys):
        db = self._setup_campaign(tmp_path)
        assert goofi_main([
            "run", "--db", db, "--campaign", "c1", "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics:" not in out

    def test_run_serve_metrics_announces_endpoint(self, tmp_path, capsys):
        db = self._setup_campaign(tmp_path)
        assert goofi_main([
            "run", "--db", db, "--campaign", "c1", "--quiet",
            "--serve-metrics", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "serving live telemetry on http://127.0.0.1:" in out
        # Run provenance lands even without --metrics-out.
        assert metrics_main(["runs", "--db", db]) == 0
        assert "finished" in capsys.readouterr().out

        from repro import observability

        assert observability.get_observability().enabled is False

    def test_run_records_provenance(self, tmp_path, capsys):
        db = self._setup_campaign(tmp_path)
        assert goofi_main([
            "run", "--db", db, "--campaign", "c1", "--quiet",
        ]) == 0
        capsys.readouterr()
        assert metrics_main(["show", "--db", db, "c1"]) == 0
        out = capsys.readouterr().out
        assert "state:        finished" in out
        assert "seed:         3" in out


class TestSnapshotValidation:
    """report/diff must exit 1 with a one-line message on bad files —
    never traceback (they gate CI steps)."""

    def _check(self, argv, capsys, needle):
        assert metrics_main(argv) == 1
        err = capsys.readouterr().err
        assert err.startswith("goofi-metrics: error:")
        assert needle in err
        assert len(err.strip().splitlines()) == 1

    def test_report_missing_file(self, tmp_path, capsys):
        self._check(
            ["report", str(tmp_path / "nope.json")], capsys, "nope.json"
        )

    def test_report_truncated_json(self, tmp_path, capsys):
        path = tmp_path / "trunc.json"
        path.write_text('{"counters": {')
        self._check(["report", str(path)], capsys, "Expecting")

    def test_report_non_object_snapshot(self, tmp_path, capsys):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        self._check(["report", str(path)], capsys, "not a metrics snapshot")

    def test_report_section_wrong_type(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"counters": []}')
        self._check(["report", str(path)], capsys, "'counters'")

    def test_report_histogram_wrong_type(self, tmp_path, capsys):
        path = tmp_path / "hist.json"
        path.write_text('{"histograms": {"h": 3}}')
        self._check(["report", str(path)], capsys, "histogram 'h'")

    def test_diff_rejects_either_side(self, snapshot_file, tmp_path, capsys):
        good, _ = snapshot_file
        bad = tmp_path / "bad.json"
        bad.write_text('{"gauges": 7}')
        self._check(["diff", str(good), str(bad)], capsys, "'gauges'")
        self._check(["diff", str(bad), str(good)], capsys, "'gauges'")
