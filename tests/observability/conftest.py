"""Fixtures for the observability tests.

Every test in this package runs against a clean process-global
observability and leaves it disabled, so instrumented code paths in
other test modules keep their zero-overhead default.
"""

import pytest

from repro import observability


@pytest.fixture(autouse=True)
def _clean_observability():
    observability.disable()
    yield
    observability.disable()
