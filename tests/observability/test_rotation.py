"""Tests for trace-file size capping and rotation."""

import os

from repro.observability.tracer import (
    Tracer,
    default_trace_max_bytes,
    read_trace,
    read_trace_with_rotation,
    rotated_sibling,
)


class TestDefaults:
    def test_default_cap_is_256_mib(self, monkeypatch):
        monkeypatch.delenv("GOOFI_TRACE_MAX_MB", raising=False)
        assert default_trace_max_bytes() == 256 * 1024 * 1024

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("GOOFI_TRACE_MAX_MB", "1")
        assert default_trace_max_bytes() == 1024 * 1024

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("GOOFI_TRACE_MAX_MB", "lots")
        assert default_trace_max_bytes() == 256 * 1024 * 1024

    def test_rotated_sibling(self):
        assert rotated_sibling("run.jsonl") == "run.jsonl.1"


class TestRotation:
    def test_file_rolls_at_cap(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path=path, max_bytes=2_000)
        for i in range(200):
            tracer.event("tick", i=i)
        tracer.close()
        sibling = rotated_sibling(path)
        assert os.path.exists(sibling)
        assert os.path.exists(path)
        # One generation only: total disk is bounded at ~2x the cap.
        assert not os.path.exists(path + ".2")
        assert os.path.getsize(sibling) <= 2_000 + 512

    def test_no_records_lost_across_rotation(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path=path, max_bytes=8_000)
        n = 100  # ~10 KB of records: exactly one rotation
        for i in range(n):
            tracer.event("tick", i=i)
        tracer.close()
        assert os.path.exists(rotated_sibling(path))
        records = read_trace_with_rotation(path)
        # A single rotation loses nothing; order stays chronological.
        assert [r["fields"]["i"] for r in records] == list(range(n))

    def test_second_rotation_drops_oldest_generation(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path=path, max_bytes=1_000)
        for i in range(300):
            tracer.event("tick", i=i)
        tracer.close()
        records = read_trace_with_rotation(path)
        indices = [r["fields"]["i"] for r in records]
        # The newest records always survive...
        assert indices[-1] == 299
        # ...and what remains is contiguous (a clean suffix, no holes).
        assert indices == list(range(indices[0], 300))
        assert len(indices) < 300

    def test_uncapped_tracer_never_rotates(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path=path, max_bytes=0)
        for i in range(100):
            tracer.event("tick", i=i)
        tracer.close()
        assert not os.path.exists(rotated_sibling(path))
        assert len(read_trace(path)) == 100

    def test_reopened_tracer_counts_existing_bytes(self, tmp_path):
        """Resuming into an existing trace file starts byte accounting
        from the current size, not from zero."""
        path = str(tmp_path / "trace.jsonl")
        first = Tracer(path=path, max_bytes=100_000)
        for i in range(10):
            first.event("a", i=i)
        first.close()
        size = os.path.getsize(path)
        second = Tracer(path=path, max_bytes=size + 200)
        for i in range(50):
            second.event("b", i=i)
        second.close()
        assert os.path.exists(rotated_sibling(path))

    def test_read_with_rotation_without_sibling(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path=path)
        tracer.event("only")
        tracer.close()
        assert [r["name"] for r in read_trace_with_rotation(path)] == ["only"]
