"""Parallel campaigns under observability: the acceptance scenario.

Runs an E12-style campaign serially and through the multiprocessing pool
with tracing + metrics enabled, and checks the tentpole claims: per-worker
experiment counts sum to the serial totals, every trace file on disk is
schema-valid JSONL, and the DB batch counters see every row.
"""

import multiprocessing

import pytest

from repro import observability
from repro.core import create_target, worker_factory
from repro.core.parallel import ParallelConfig, run_parallel_campaign
from repro.db import GoofiDatabase
from repro.observability.report import sum_counters, summarize_trace
from repro.observability.tracer import read_trace
from repro.observability import worker_trace_path
from tests.conftest import make_campaign

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel observability tests need the fork start method",
)

N_EXPERIMENTS = 24
N_WORKERS = 2


def _parallel_config(**overrides):
    defaults = dict(
        n_workers=N_WORKERS,
        shard_size=3,
        batch_size=4,
        timeout_seconds=60.0,
        max_retries=1,
        start_method="fork",
    )
    defaults.update(overrides)
    return ParallelConfig(**defaults)


def test_worker_counts_sum_to_serial_totals(tmp_path):
    campaign = make_campaign(n_experiments=N_EXPERIMENTS, seed=7)

    # Serial leg.
    observability.configure(metrics=True)
    create_target("thor-rd").run_campaign(campaign)
    serial_total = observability.get_observability().metrics.snapshot()[
        "counters"
    ]["experiments_total"]
    observability.disable()
    assert serial_total == N_EXPERIMENTS

    # Parallel leg.
    trace_path = str(tmp_path / "trace.jsonl")
    obs = observability.configure(trace_path=trace_path, metrics=True)
    sink = run_parallel_campaign(
        campaign, worker_factory("thor-rd"), config=_parallel_config()
    )
    obs.flush()
    snapshot = obs.metrics.snapshot()
    observability.disable()

    assert len(sink.results) == N_EXPERIMENTS
    # The tentpole acceptance criterion: per-worker experiment counts
    # sum to the serial total.
    assert sum_counters(snapshot, "experiments_total") == serial_total
    per_worker = {
        name: value
        for name, value in snapshot["counters"].items()
        if name.endswith("experiments_total")
    }
    assert len(per_worker) >= 1
    assert all(name.startswith("worker") for name in per_worker)
    assert all(value > 0 for value in per_worker.values())


def test_parallel_trace_files_are_valid_jsonl(tmp_path):
    campaign = make_campaign(n_experiments=12, seed=9)
    trace_path = str(tmp_path / "trace.jsonl")
    obs = observability.configure(trace_path=trace_path, metrics=True)
    run_parallel_campaign(
        campaign, worker_factory("thor-rd"), config=_parallel_config()
    )
    obs.flush()
    observability.disable()

    # Parent file: the campaign span plus worker lifecycle events.
    parent_records = read_trace(trace_path)
    assert parent_records, "parent trace is empty"
    summary = summarize_trace(parent_records)
    assert "campaign" in summary["spans"]
    assert summary["events"].get("worker-spawn", 0) >= 1

    # Every worker wrote a schema-valid sibling file with experiments.
    worker_experiments = 0
    worker_files = 0
    for worker_id in range(N_WORKERS * 2):  # respawns get fresh ids
        sibling = worker_trace_path(trace_path, worker_id)
        try:
            records = read_trace(sibling)
        except FileNotFoundError:
            continue
        worker_files += 1
        worker_summary = summarize_trace(records)
        worker_experiments += (
            worker_summary["spans"].get("experiment", {}).get("count", 0)
        )
    assert worker_files >= 1
    assert worker_experiments == 12


def test_db_batch_counters_cover_every_row(tmp_path):
    campaign = make_campaign(n_experiments=12, seed=3)
    obs = observability.configure(metrics=True)
    db = GoofiDatabase(str(tmp_path / "campaign.db"))
    run_parallel_campaign(
        campaign, worker_factory("thor-rd"), sink=db,
        config=_parallel_config(),
    )
    snapshot = obs.metrics.snapshot()
    observability.disable()

    assert db.count_experiments(campaign.campaign_name) == 12
    counters = snapshot["counters"]
    assert counters.get("db.rows_total", 0) == 12
    assert counters.get("db.batches_total", 0) >= 1
    batch = snapshot["histograms"].get("db.batch_seconds")
    assert batch is not None and batch["count"] == counters["db.batches_total"]
    db.close()


def test_parallel_results_unchanged_by_observability(tmp_path):
    """Instrumentation must not perturb campaign results: the parallel
    run with observability on logs exactly the serial rows."""
    from repro.core.parallel import canonical_experiment_rows

    campaign = make_campaign(n_experiments=10, seed=21)
    serial_db = GoofiDatabase(str(tmp_path / "serial.db"))
    create_target("thor-rd").run_campaign(campaign, sink=serial_db)

    observability.configure(
        trace_path=str(tmp_path / "trace.jsonl"), metrics=True
    )
    parallel_db = GoofiDatabase(str(tmp_path / "parallel.db"))
    run_parallel_campaign(
        campaign, worker_factory("thor-rd"), sink=parallel_db,
        config=_parallel_config(),
    )
    observability.disable()

    assert canonical_experiment_rows(
        serial_db, campaign.campaign_name
    ) == canonical_experiment_rows(parallel_db, campaign.campaign_name)
    serial_db.close()
    parallel_db.close()
