"""Tests for the campaign health monitor (stall, drift, ETA)."""

from repro import observability
from repro.observability.health import (
    NULL_HEALTH,
    CampaignHealthMonitor,
    get_health,
    set_health,
)


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_monitor(**overrides):
    clock = overrides.pop("clock", FakeClock())
    defaults = dict(
        stall_factor=4.0,
        stall_floor_seconds=1.0,
        drift_threshold=0.5,
        drift_window=10,
        drift_min_baseline=10,
    )
    defaults.update(overrides)
    monitor = CampaignHealthMonitor(clock=clock, **defaults)
    return monitor, clock


class TestProgressAndEta:
    def test_rate_and_eta_from_ewma(self):
        monitor, clock = make_monitor()
        monitor.begin("c1", n_total=100)
        for _ in range(10):
            clock.advance(2.0)
            monitor.record_result("halt")
        assert monitor.n_done == 10
        # Constant 2s intervals: the EWMA converges to 2.0.
        assert abs(monitor.rate() - 0.5) < 0.05
        eta = monitor.eta_seconds()
        assert eta is not None
        assert abs(eta - 90 * 2.0) < 90 * 0.2

    def test_eta_none_before_any_result(self):
        monitor, _ = make_monitor()
        monitor.begin("c1", n_total=10)
        assert monitor.eta_seconds() is None
        assert monitor.rate() == 0.0

    def test_begin_resets_state(self):
        monitor, clock = make_monitor()
        monitor.begin("c1", n_total=5)
        clock.advance(1.0)
        monitor.record_result("halt")
        monitor.begin("c2", n_total=7, n_workers=3)
        assert monitor.n_done == 0
        assert monitor.n_total == 7
        assert monitor.n_workers == 3
        assert monitor.alerts == []


class TestStallDetection:
    def test_stall_alert_fires_after_threshold(self):
        monitor, clock = make_monitor()
        monitor.begin("c1", n_total=10)
        for _ in range(5):
            clock.advance(1.0)
            monitor.record_result("halt")
        assert monitor.check() == []
        clock.advance(monitor.stall_threshold_seconds() + 0.1)
        alerts = monitor.check()
        assert len(alerts) == 1
        assert alerts[0].kind == "stall"
        assert monitor.status()["status"] == "stall"

    def test_stall_is_edge_triggered(self):
        monitor, clock = make_monitor()
        monitor.begin("c1", n_total=10)
        clock.advance(1.0)
        monitor.record_result("halt")
        clock.advance(100.0)
        assert len(monitor.check()) == 1
        clock.advance(100.0)
        assert monitor.check() == []  # same episode: no repeat

    def test_progress_rearms_stall(self):
        monitor, clock = make_monitor()
        monitor.begin("c1", n_total=10)
        clock.advance(1.0)
        monitor.record_result("halt")
        clock.advance(100.0)
        assert len(monitor.check()) == 1
        clock.advance(1.0)
        monitor.record_result("halt")  # recovery
        assert monitor.status()["status"] == "ok"
        clock.advance(500.0)
        assert len(monitor.check()) == 1  # a fresh episode fires again

    def test_no_stall_when_campaign_complete(self):
        monitor, clock = make_monitor()
        monitor.begin("c1", n_total=1)
        clock.advance(1.0)
        monitor.record_result("halt")
        clock.advance(1000.0)
        assert monitor.check() == []

    def test_threshold_floors(self):
        monitor, _ = make_monitor(stall_floor_seconds=5.0)
        monitor.begin("c1", n_total=10)
        assert monitor.stall_threshold_seconds() == 5.0


class TestPauseAwareness:
    """Regression: controller pause() time is deliberate silence, not a
    stall — and it must not pollute the EWMA on resume."""

    def _running_monitor(self):
        monitor, clock = make_monitor()
        monitor.begin("c1", n_total=10, n_workers=2)
        monitor.heartbeat(0)
        monitor.heartbeat(1)
        for _ in range(3):
            clock.advance(1.0)
            monitor.record_result("halt")
        return monitor, clock

    def test_no_stall_alert_while_paused(self):
        monitor, clock = self._running_monitor()
        monitor.notify_paused()
        clock.advance(1000.0)  # far past any stall threshold
        assert monitor.check() == []
        assert monitor.status()["status"] == "ok"

    def test_resume_excludes_paused_time_from_silence(self):
        monitor, clock = self._running_monitor()
        monitor.notify_paused()
        clock.advance(1000.0)
        monitor.notify_resumed()
        # Immediately after resume the silence clock restarts at ~0:
        # the paused interval vanished from seconds_since_progress.
        assert monitor.seconds_since_progress() < 1.0
        assert monitor.check() == []

    def test_resume_does_not_pollute_ewma(self):
        monitor, clock = self._running_monitor()
        rate_before = monitor.rate()
        monitor.notify_paused()
        clock.advance(1000.0)
        monitor.notify_resumed()
        clock.advance(1.0)
        monitor.record_result("halt")
        # The first post-resume interval reads ~1s, not ~1001s.
        assert abs(monitor.rate() - rate_before) / rate_before < 0.5

    def test_resume_shifts_heartbeats(self):
        monitor, clock = self._running_monitor()
        monitor.notify_paused()
        clock.advance(1000.0)
        monitor.notify_resumed()
        assert all(
            age < 10.0 for age in monitor.heartbeat_ages().values()
        )

    def test_stall_rearms_after_resume(self):
        monitor, clock = self._running_monitor()
        monitor.notify_paused()
        clock.advance(1000.0)
        monitor.notify_resumed()
        # Genuine post-resume silence must still fire.
        clock.advance(monitor.stall_threshold_seconds() + 0.1)
        alerts = monitor.check()
        assert len(alerts) == 1
        assert alerts[0].kind == "stall"

    def test_pause_notifications_idempotent(self):
        monitor, clock = self._running_monitor()
        monitor.notify_paused()
        clock.advance(50.0)
        monitor.notify_paused()  # keeps the first pause instant
        clock.advance(50.0)
        monitor.notify_resumed()
        assert monitor.seconds_since_progress() < 1.0
        monitor.notify_resumed()  # no-op when not paused
        assert monitor.check() == []

    def test_begin_clears_pause_state(self):
        monitor, clock = self._running_monitor()
        monitor.notify_paused()
        monitor.begin("c2", n_total=5)
        clock.advance(monitor.stall_threshold_seconds() + 0.1)
        # A fresh run is not considered paused by a stale notification.
        assert len(monitor.check()) == 1

    def test_controller_pause_resume_wires_monitor(self):
        """The serial controller forwards pause()/resume() to its
        monitor (spurious-stall regression at the integration seam)."""
        from repro.core.controller import CampaignController

        controller = CampaignController(algorithm=None)
        monitor, clock = self._running_monitor()
        controller.health = monitor
        controller.pause()
        clock.advance(1000.0)
        assert monitor.check() == []
        controller.resume()
        assert monitor.seconds_since_progress() < 1.0
        clock.advance(monitor.stall_threshold_seconds() + 0.1)
        assert len(monitor.check()) == 1


class TestDriftDetection:
    def test_drift_alert_on_outcome_mix_change(self):
        monitor, clock = make_monitor(drift_window=10, drift_min_baseline=10)
        monitor.begin("c1", n_total=200)
        # Build a pure-"halt" baseline, then a pure-"trap" window.
        for _ in range(20):
            clock.advance(0.1)
            monitor.record_result("halt")
        assert monitor.check() == []
        for _ in range(10):
            clock.advance(0.1)
            monitor.record_result("trap")
        alerts = monitor.check()
        assert [a.kind for a in alerts] == ["drift"]
        distance = monitor.drift_distance()
        assert distance is not None and distance > 0.5

    def test_no_drift_before_baseline(self):
        monitor, clock = make_monitor(drift_min_baseline=50)
        monitor.begin("c1", n_total=100)
        for _ in range(20):
            clock.advance(0.1)
            monitor.record_result("halt")
        assert monitor.drift_distance() is None
        assert monitor.check() == []

    def test_drift_rearms_after_recovery(self):
        monitor, clock = make_monitor(drift_window=10, drift_min_baseline=10)
        monitor.begin("c1", n_total=500)
        for _ in range(20):
            clock.advance(0.1)
            monitor.record_result("halt")
        for _ in range(10):
            clock.advance(0.1)
            monitor.record_result("trap")
        assert len(monitor.check()) == 1
        assert monitor.check() == []  # still drifting: edge-triggered
        # Long recovery: window back to baseline mix re-arms the alert.
        for _ in range(60):
            clock.advance(0.1)
            monitor.record_result("halt")
            monitor.check()
        assert not monitor._drifting


class TestHeartbeats:
    def test_heartbeat_ages(self):
        monitor, clock = make_monitor()
        monitor.begin("c1", n_total=10, n_workers=2)
        monitor.heartbeat(0)
        clock.advance(3.0)
        monitor.heartbeat(1)
        ages = monitor.heartbeat_ages()
        assert ages[0] == 3.0
        assert ages[1] == 0.0

    def test_heartbeat_gauge_when_metrics_enabled(self):
        obs = observability.configure(metrics=True)
        try:
            monitor, _ = make_monitor()
            monitor.begin("c1", n_total=10)
            monitor.heartbeat(4)
            snapshot = obs.metrics.snapshot()
            assert "health.worker4.heartbeat_ts" in snapshot["gauges"]
        finally:
            observability.disable()


class TestAlertEmission:
    def test_alerts_mirrored_to_trace_and_counters(self):
        buffer = []
        obs = observability.configure(metrics=True, trace_buffer=buffer)
        try:
            monitor, clock = make_monitor()
            monitor.begin("c1", n_total=10)
            clock.advance(1.0)
            monitor.record_result("halt")
            clock.advance(100.0)
            monitor.check()
            events = [r for r in buffer if r["name"] == "health-alert"]
            assert len(events) == 1
            assert events[0]["fields"]["alert"] == "stall"
            counters = obs.metrics.snapshot()["counters"]
            assert counters["health.stall_alerts_total"] == 1
        finally:
            observability.disable()


class TestDisabledPath:
    def test_null_health_is_inert(self):
        assert not NULL_HEALTH.enabled
        NULL_HEALTH.begin("c1", 10)
        NULL_HEALTH.heartbeat(0)
        NULL_HEALTH.record_result("halt")
        assert NULL_HEALTH.check() == []
        assert NULL_HEALTH.status() == {"status": "disabled"}
        assert NULL_HEALTH.n_done == 0

    def test_get_set_health(self):
        monitor = CampaignHealthMonitor()
        previous = set_health(monitor)
        try:
            assert get_health() is monitor
        finally:
            set_health(previous)
        assert get_health() is previous

    def test_status_fields(self):
        monitor, clock = make_monitor()
        monitor.begin("c1", n_total=10, n_workers=2)
        clock.advance(1.0)
        monitor.record_result("halt")
        status = monitor.status()
        assert status["status"] == "ok"
        assert status["campaign"] == "c1"
        assert status["n_done"] == 1
        assert status["n_workers"] == 2
        assert status["rate_per_second"] > 0

    def test_status_grafts_live_analysis_gauges(self):
        from repro.observability import configure, disable, get_observability
        from repro.observability.health import analysis_metrics

        monitor, _ = make_monitor()
        monitor.begin("c1", n_total=10, n_workers=1)
        # Disabled observability: no analysis block, helper is empty.
        assert analysis_metrics() == {}
        assert "analysis" not in monitor.status()
        configure(metrics=True)
        try:
            metrics = get_observability().metrics
            metrics.gauge("analysis.ci_half_width").set(0.04)
            metrics.gauge("analysis.rows_processed").set(128)
            status = monitor.status()
        finally:
            disable()
        assert status["analysis"]["ci_half_width"] == 0.04
        assert status["analysis"]["rows_processed"] == 128
