"""Tests for RunMeta provenance (value object, DB CRUD, migration, CLI)."""

import sqlite3

import pytest

from repro.db import GoofiDatabase
from repro.db.schema import MIGRATABLE_VERSIONS, SCHEMA_VERSION
from repro.observability.cli import main as metrics_main
from repro.observability.runmeta import (
    RUNMETA_SCHEMA_VERSION,
    RunMeta,
    campaign_config_hash,
    render_run,
    render_runs,
    tool_version,
)
from repro.util.errors import DatabaseError
from tests.conftest import make_campaign


class TestConfigHash:
    def test_hash_is_stable(self):
        campaign = make_campaign()
        assert campaign_config_hash(campaign) == campaign_config_hash(
            make_campaign()
        )

    def test_hash_changes_with_any_knob(self):
        base = campaign_config_hash(make_campaign())
        assert campaign_config_hash(make_campaign(seed=999)) != base
        assert (
            campaign_config_hash(make_campaign(n_experiments=3)) != base
        )

    def test_tool_version_matches_package(self):
        import repro

        assert tool_version() == repro.__version__


class TestRunMetaCrud:
    def test_start_and_end_roundtrip(self, db):
        campaign = make_campaign()
        run_id = db.record_run_start(campaign, n_workers=4)
        assert run_id > 0
        run = db.load_run(run_id)
        assert run.state == "running"
        assert run.campaign_name == campaign.campaign_name
        assert run.seed == campaign.seed
        assert run.n_workers == 4
        assert run.n_experiments == campaign.n_experiments
        assert run.config_hash == campaign_config_hash(campaign)
        assert run.tool_version == tool_version()
        assert run.meta_version == RUNMETA_SCHEMA_VERSION
        assert run.finished_at is None

        snapshot = {"counters": {"experiments_total": 10}}
        db.record_run_end(run_id, "finished", metrics_snapshot=snapshot)
        run = db.load_run(run_id)
        assert run.state == "finished"
        assert run.finished_at is not None
        assert run.metrics_snapshot == snapshot

    def test_end_can_update_worker_count(self, db):
        campaign = make_campaign()
        run_id = db.record_run_start(campaign, n_workers=8)
        db.record_run_end(run_id, "finished", n_workers=3)
        assert db.load_run(run_id).n_workers == 3

    def test_list_runs_newest_first(self, db):
        campaign = make_campaign()
        first = db.record_run_start(campaign)
        second = db.record_run_start(campaign)
        runs = db.list_runs()
        assert [run.run_id for run in runs] == [second, first]

    def test_list_runs_filters_by_campaign(self, db):
        db.record_run_start(make_campaign(campaign_name="a"))
        db.record_run_start(make_campaign(campaign_name="b"))
        runs = db.list_runs(campaign_name="a")
        assert [run.campaign_name for run in runs] == ["a"]
        assert db.list_runs(campaign_name="zzz") == []

    def test_load_missing_run_raises(self, db):
        with pytest.raises(DatabaseError):
            db.load_run(12345)


class TestSchemaMigration:
    def test_v1_database_migrates_in_place(self, tmp_path):
        """A PR 3-era (version 1) database opens cleanly: the additive
        RunMeta DDL applies and the version is stamped forward."""
        assert 1 in MIGRATABLE_VERSIONS
        path = str(tmp_path / "old.db")
        with GoofiDatabase(path) as db:
            db.save_campaign(make_campaign())
        conn = sqlite3.connect(path)
        conn.execute("DROP TABLE RunMeta")
        conn.execute("UPDATE SchemaInfo SET version = 1")
        conn.commit()
        conn.close()
        with GoofiDatabase(path) as db:
            run_id = db.record_run_start(make_campaign())
            assert db.load_run(run_id).state == "running"
        conn = sqlite3.connect(path)
        row = conn.execute("SELECT version FROM SchemaInfo").fetchone()
        conn.close()
        assert row[0] == SCHEMA_VERSION

    def test_unknown_version_still_rejected(self, tmp_path):
        path = str(tmp_path / "v.db")
        with GoofiDatabase(path):
            pass
        conn = sqlite3.connect(path)
        conn.execute("UPDATE SchemaInfo SET version = 999")
        conn.commit()
        conn.close()
        with pytest.raises(DatabaseError):
            GoofiDatabase(path)


class TestRendering:
    def test_render_runs_table(self):
        run = RunMeta(
            campaign_name="c1",
            seed=7,
            config_hash="ab" * 32,
            n_workers=2,
            n_experiments=10,
            state="finished",
            started_at="2026-01-01 10:00:00",
            run_id=3,
        )
        text = render_runs([run])
        assert "c1" in text
        assert "finished" in text
        assert ("ab" * 6) in text  # 12-char hash prefix

    def test_render_runs_empty(self):
        assert "(no runs recorded)" in render_runs([])

    def test_render_run_includes_snapshot(self):
        run = RunMeta(
            campaign_name="c1",
            seed=7,
            config_hash="ff" * 32,
            run_id=1,
            metrics_snapshot={"counters": {"experiments_total": 4}},
        )
        text = render_run(run)
        assert "config hash:  " + "ff" * 32 in text
        assert "experiments_total" in text


class TestRunsCli:
    @pytest.fixture
    def db_path(self, tmp_path):
        path = str(tmp_path / "runs.db")
        with GoofiDatabase(path) as db:
            campaign = make_campaign(campaign_name="cli-campaign")
            run_id = db.record_run_start(campaign, n_workers=2)
            db.record_run_end(
                run_id,
                "finished",
                metrics_snapshot={"counters": {"experiments_total": 10}},
            )
        return path

    def test_runs_lists_rows(self, db_path, capsys):
        assert metrics_main(["runs", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "cli-campaign" in out
        assert "finished" in out

    def test_runs_empty_db(self, tmp_path, capsys):
        path = str(tmp_path / "empty.db")
        with GoofiDatabase(path):
            pass
        assert metrics_main(["runs", "--db", path]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_show_latest_run(self, db_path, capsys):
        assert metrics_main(["show", "--db", db_path, "cli-campaign"]) == 0
        out = capsys.readouterr().out
        assert "campaign:     cli-campaign" in out
        assert "experiments_total" in out

    def test_show_unknown_campaign_fails(self, db_path, capsys):
        assert metrics_main(["show", "--db", db_path, "nope"]) == 1
        assert "no runs recorded" in capsys.readouterr().err

    def test_show_wrong_run_id_fails(self, db_path, capsys):
        with GoofiDatabase(db_path) as db:
            other = db.record_run_start(make_campaign(campaign_name="other"))
        assert (
            metrics_main(
                ["show", "--db", db_path, "cli-campaign",
                 "--run-id", str(other)]
            )
            == 1
        )
        assert "belongs to campaign" in capsys.readouterr().err
