"""Metrics registry: instruments, snapshots, merge additivity.

The property test at the bottom is the subsystem's core correctness
claim: splitting a stream of observations across worker registries and
merging their drained deltas into a parent yields exactly the serial
totals — what makes the parallel runner's per-worker counts trustworthy.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.metrics import (
    NULL_INSTRUMENT,
    Histogram,
    MetricsRegistry,
)
from repro.observability.report import sum_counters


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.snapshot()["counters"]["a"] == 5

    def test_gauge_takes_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.5)
        registry.gauge("g").set(2.5)
        assert registry.snapshot()["gauges"]["g"] == 2.5

    def test_histogram_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (0.005, 0.02, 0.5):
            histogram.observe(value)
        data = registry.snapshot()["histograms"]["h"]
        assert data["count"] == 3
        assert data["sum"] == pytest.approx(0.525)
        assert data["min"] == 0.005
        assert data["max"] == 0.5
        assert sum(data["bucket_counts"]) == 3

    def test_histogram_overflow_slot(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        histogram.observe(10_000.0)  # beyond the last bound
        data = registry.snapshot()["histograms"]["h"]
        assert data["bucket_counts"][-1] == 1

    def test_disabled_registry_hands_out_shared_null_instrument(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_INSTRUMENT
        assert registry.gauge("b") is NULL_INSTRUMENT
        assert registry.histogram("c") is NULL_INSTRUMENT
        # All methods are no-ops.
        registry.counter("a").inc()
        registry.gauge("b").set(1.0)
        registry.histogram("c").observe(0.1)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}


class TestSnapshots:
    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(3.0)
        registry.histogram("h").observe(0.01)
        snapshot = registry.snapshot()
        restored = json.loads(json.dumps(snapshot))
        assert restored["counters"] == {"c": 1}
        assert restored["schema"] == snapshot["schema"]

    def test_drain_resets_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        delta = registry.drain()
        assert delta["counters"]["c"] == 3
        assert registry.snapshot()["counters"] == {}
        # Next use starts from zero again.
        registry.counter("c").inc()
        assert registry.snapshot()["counters"]["c"] == 1

    def test_merge_with_prefix(self):
        worker = MetricsRegistry()
        worker.counter("experiments_total").inc(7)
        worker.histogram("experiment_seconds").observe(0.1)
        parent = MetricsRegistry()
        parent.merge(worker.drain(), prefix="worker0.")
        snapshot = parent.snapshot()
        assert snapshot["counters"]["worker0.experiments_total"] == 7
        assert (
            snapshot["histograms"]["worker0.experiment_seconds"]["count"] == 1
        )

    def test_merge_mismatched_bounds_folds_into_overflow(self):
        incoming = Histogram(lock=__import__("threading").Lock(),
                             bounds=(1.0, 2.0))
        incoming.observe(0.5)
        incoming.observe(1.5)
        parent = MetricsRegistry()
        parent.histogram("h").observe(0.01)  # default bounds
        parent.merge({"histograms": {"h": incoming.to_dict()}})
        data = parent.snapshot()["histograms"]["h"]
        # No samples dropped: count and sum fold in, extras charged to +Inf.
        assert data["count"] == 3
        assert data["sum"] == pytest.approx(2.01)
        assert data["bucket_counts"][-1] == 2

    def test_merge_into_disabled_registry_is_noop(self):
        parent = MetricsRegistry(enabled=False)
        parent.merge({"counters": {"a": 1}})
        assert parent.snapshot()["counters"] == {}

    def test_sum_counters_matches_suffix(self):
        snapshot = {
            "counters": {
                "worker0.experiments_total": 5,
                "worker1.experiments_total": 7,
                "db.rows_total": 99,
            }
        }
        assert sum_counters(snapshot, "experiments_total") == 12


@settings(max_examples=50, deadline=None)
@given(
    shards=st.lists(
        st.lists(
            st.floats(
                min_value=0.0, max_value=100.0,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=20,
        ),
        min_size=1,
        max_size=5,
    )
)
def test_sharded_merge_equals_serial_totals(shards):
    """Counters and histogram counts/sums aggregated across worker
    registries equal the serial registry's totals."""
    serial = MetricsRegistry()
    parent = MetricsRegistry()
    for worker_id, shard in enumerate(shards):
        worker = MetricsRegistry()
        for value in shard:
            serial.counter("experiments_total").inc()
            serial.histogram("experiment_seconds").observe(value)
            worker.counter("experiments_total").inc()
            worker.histogram("experiment_seconds").observe(value)
        parent.merge(worker.drain(), prefix=f"worker{worker_id}.")

    serial_snapshot = serial.snapshot()
    parent_snapshot = parent.snapshot()
    total = sum(len(shard) for shard in shards)
    assert sum_counters(parent_snapshot, "experiments_total") == total
    assert (
        sum_counters(parent_snapshot, "experiments_total")
        == serial_snapshot["counters"].get("experiments_total", 0)
    )
    serial_hist = serial_snapshot["histograms"].get("experiment_seconds")
    if serial_hist is not None:
        merged = [
            data
            for name, data in parent_snapshot["histograms"].items()
            if name.endswith("experiment_seconds")
        ]
        assert sum(d["count"] for d in merged) == serial_hist["count"]
        assert sum(d["sum"] for d in merged) == pytest.approx(
            serial_hist["sum"]
        )
