"""Process-global observability: configuration, profiling, overhead."""

import time

import pytest

from repro import observability
from repro.observability import (
    NULL_PROFILE,
    Observability,
    ObservabilityConfig,
    worker_trace_path,
)
from repro.observability.tracer import read_trace


class TestConfiguration:
    def test_default_is_disabled(self):
        obs = observability.get_observability()
        assert obs.enabled is False
        assert obs.tracer.enabled is False
        assert obs.metrics.enabled is False

    def test_configure_and_disable(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs = observability.configure(trace_path=path, metrics=True)
        assert observability.get_observability() is obs
        assert obs.enabled
        assert observability.current_config() == ObservabilityConfig(
            trace_path=path, metrics=True
        )
        observability.disable()
        assert observability.get_observability().enabled is False
        assert observability.current_config() == ObservabilityConfig()

    def test_metrics_only_configuration(self):
        obs = observability.configure(metrics=True)
        assert obs.metrics.enabled
        assert obs.tracer.enabled is False

    def test_worker_trace_path_sibling_files(self):
        assert (
            worker_trace_path("/tmp/run.jsonl", 0) == "/tmp/run.worker0.jsonl"
        )
        assert worker_trace_path("/tmp/run", 3) == "/tmp/run.worker3.jsonl"
        assert worker_trace_path(None, 1) is None

    def test_configure_worker_isolates_state(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        parent = observability.configure(trace_path=path, metrics=True)
        parent.metrics.counter("experiments_total").inc(10)
        worker = observability.configure_worker(
            parent.config, worker_id=2
        )
        assert worker is observability.get_observability()
        assert worker.tracer.path == str(tmp_path / "trace.worker2.jsonl")
        # Fresh registry: no inherited counts.
        assert worker.metrics.snapshot()["counters"] == {}

    def test_write_metrics(self, tmp_path):
        obs = observability.configure(metrics=True)
        obs.metrics.counter("experiments_total").inc(4)
        out = tmp_path / "metrics.json"
        snapshot = obs.write_metrics(str(out))
        assert snapshot["counters"]["experiments_total"] == 4
        assert out.exists()


class TestProfiling:
    def test_profile_feeds_both_surfaces(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs = observability.configure(trace_path=path, metrics=True)
        with obs.profile("db.batch", rows=3):
            time.sleep(0.001)
        obs.flush()
        (record,) = read_trace(path)
        assert record["name"] == "db.batch"
        assert record["fields"] == {"rows": 3}
        data = obs.metrics.snapshot()["histograms"]["db.batch_seconds"]
        assert data["count"] == 1
        assert data["sum"] > 0

    def test_profile_records_exception(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs = observability.configure(trace_path=path, metrics=False)
        with pytest.raises(ValueError):
            with obs.profile("experiment"):
                raise ValueError("nope")
        obs.flush()
        (record,) = read_trace(path)
        assert record["fields"]["exc_type"] == "ValueError"

    def test_disabled_profile_is_shared_singleton(self):
        obs = Observability()
        assert obs.profile("experiment") is NULL_PROFILE
        assert obs.profile("other", a=1) is NULL_PROFILE


class TestDisabledOverhead:
    def test_disabled_instrumentation_is_cheap(self):
        """100k no-op profile/span/counter calls must stay well under a
        generous absolute bound (the <2% acceptance figure is measured
        on real campaigns; this guards against accidentally putting
        allocation or I/O on the disabled path)."""
        obs = observability.get_observability()
        assert obs.enabled is False
        started = time.perf_counter()
        for _ in range(100_000):
            with obs.profile("experiment"):
                pass
            obs.metrics.counter("experiments_total").inc()
            obs.tracer.event("tick")
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0, f"disabled path took {elapsed:.2f}s for 100k"

    def test_disabled_path_allocates_no_records(self):
        obs = observability.get_observability()
        with obs.profile("experiment") as handle:
            pass
        assert handle is None or handle is NULL_PROFILE
        assert obs.metrics.snapshot()["counters"] == {}
