"""Tests for the simulation-based FI baseline (D3: no scan cost)."""

from repro.core import create_target
from tests.conftest import make_campaign


class TestDirectAccess:
    def test_simfi_campaign_uses_no_scan_shifts_for_injection(self):
        target = create_target("thor-rd-sim")
        campaign = make_campaign(
            campaign_name="sim", technique="simfi", n_experiments=10,
            target_name="thor-rd-sim",
        )
        target.run_campaign(campaign)
        chains = target.card.chains
        total_ops = sum(c.reads + c.writes for c in chains.values())
        assert total_ops == 0
        assert target.card.total_scan_cycles == 0

    def test_scifi_same_campaign_pays_scan_cost(self):
        target = create_target("thor-rd")
        campaign = make_campaign(campaign_name="scifi", n_experiments=10)
        target.run_campaign(campaign)
        assert target.card.total_scan_cycles > 0

    def test_simfi_reaches_every_space(self):
        target = create_target("thor-rd-sim")
        campaign = make_campaign(
            campaign_name="sim-all",
            technique="simfi",
            target_name="thor-rd-sim",
            location_patterns=[
                "scan:internal/*",
                "memory:code/*",
                "memory:data/*",
                "swreg/*",
            ],
            n_experiments=12,
            seed=55,
        )
        sink = target.run_campaign(campaign)
        assert len(sink.results) == 12

    def test_observation_without_scan_matches_scan_observation(self):
        """The same final state must be reported through either access
        path — the baseline differs in cost, not in truth."""
        scifi_target = create_target("thor-rd")
        sim_target = create_target("thor-rd-sim")
        scifi_sink = scifi_target.run_campaign(
            make_campaign(campaign_name="a", n_experiments=3, seed=6)
        )
        sim_sink = sim_target.run_campaign(
            make_campaign(
                campaign_name="b",
                technique="simfi",
                target_name="thor-rd-sim",
                n_experiments=3,
                seed=6,
            )
        )
        assert (
            scifi_sink.reference.state_vector
            == sim_sink.reference.state_vector
        )
