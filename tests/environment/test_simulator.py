"""Tests for the environment-simulator framework and plant models."""

import pytest

from repro.environment import DCMotorEnv, InvertedPendulumEnv, build_environment
from repro.environment.simulator import q8_decode, q8_encode
from repro.thor.memory import ENV_INPUT_BASE, ENV_OUTPUT_BASE
from repro.thor.testcard import TestCard
from repro.util.errors import ConfigurationError


class TestQ8Codec:
    def test_round_trip_positive(self):
        assert q8_decode(q8_encode(12.5)) == pytest.approx(12.5)

    def test_round_trip_negative(self):
        assert q8_decode(q8_encode(-3.25)) == pytest.approx(-3.25)

    def test_quantisation(self):
        assert q8_decode(q8_encode(0.001)) == pytest.approx(0.0, abs=1 / 256)


class TestRegistry:
    def test_build_known(self):
        env = build_environment("dc-motor", {"setpoint": 5.0})
        assert isinstance(env, DCMotorEnv)
        assert env.setpoint == 5.0

    def test_build_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            build_environment("warp-core")


class TestDCMotor:
    def test_converges_under_pi_control(self):
        env = DCMotorEnv(setpoint=10.0)
        env.reset_plant()
        integral = 0.0
        for _ in range(300):
            error = env.setpoint - env.y
            integral += error
            env.step(2.0 * error + 0.1 * integral)
        assert abs(env.tracking_error()) < 0.5

    def test_zero_actuation_decays(self):
        env = DCMotorEnv(initial=10.0, setpoint=0.0)
        env.reset_plant()
        for _ in range(200):
            env.step(0.0)
        assert abs(env.y) < 0.1

    def test_sensor_values(self):
        env = DCMotorEnv(setpoint=7.0, initial=1.0)
        env.reset_plant()
        assert env.sensor_values() == (7.0, 1.0)


class TestInvertedPendulum:
    def test_open_loop_unstable(self):
        env = InvertedPendulumEnv(initial=0.1)
        env.reset_plant()
        for _ in range(200):
            env.step(0.0)
        assert abs(env.theta) > 10.0  # diverged without control

    def test_stabilisable_with_pd_control(self):
        env = InvertedPendulumEnv(initial=0.2)
        env.reset_plant()
        for _ in range(400):
            u = -(3.0 * env.theta + 1.0 * env.omega)
            env.step(u)
        assert abs(env.theta) < 0.05

    def test_clamp_bounds_divergence(self):
        env = InvertedPendulumEnv(initial=1.0, clamp=100.0)
        env.reset_plant()
        for _ in range(2000):
            env.step(0.0)
        assert abs(env.theta) <= 100.0


class TestExchangeProtocol:
    def test_initialize_writes_input_window(self):
        card = TestCard()
        card.init()
        env = DCMotorEnv(setpoint=10.0, initial=2.0)
        env.initialize(card)
        assert q8_decode(card.read_memory(ENV_INPUT_BASE)) == pytest.approx(10.0)
        assert q8_decode(card.read_memory(ENV_INPUT_BASE + 1)) == pytest.approx(2.0)

    def test_exchange_reads_actuation_and_steps(self):
        card = TestCard()
        card.init()
        env = DCMotorEnv(setpoint=10.0, initial=0.0)
        env.initialize(card)
        card.write_memory(ENV_OUTPUT_BASE, q8_encode(5.0))
        env.exchange(card, iteration=1)
        assert env.y > 0.0
        assert env.iterations == 1
        # New measurement published to the input window.
        assert q8_decode(card.read_memory(ENV_INPUT_BASE + 1)) == pytest.approx(
            env.y, abs=1 / 128
        )

    def test_summary_tracks_errors(self):
        card = TestCard()
        card.init()
        env = DCMotorEnv(setpoint=10.0, initial=0.0)
        env.initialize(card)
        card.write_memory(ENV_OUTPUT_BASE, q8_encode(0.0))
        env.exchange(card, 1)
        summary = env.summary()
        assert summary["iterations"] == 1.0
        assert summary["max_abs_error"] == pytest.approx(10.0, abs=0.1)

    def test_initialize_resets_metrics(self):
        card = TestCard()
        card.init()
        env = DCMotorEnv(setpoint=10.0)
        env.initialize(card)
        card.write_memory(ENV_OUTPUT_BASE, q8_encode(0.0))
        env.exchange(card, 1)
        env.initialize(card)
        assert env.summary()["iterations"] == 0.0
        assert env.summary()["max_abs_error"] == 0.0
