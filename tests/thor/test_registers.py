"""Unit tests for the register file and PSR."""

from repro.thor.registers import Psr, RegisterFile


class TestRegisterFile:
    def test_reset_zeroes(self):
        regs = RegisterFile()
        regs.write(3, 99)
        regs.reset()
        assert regs.read(3) == 0

    def test_values_masked(self):
        regs = RegisterFile()
        regs.write(0, -1)
        assert regs.read(0) == 0xFFFFFFFF

    def test_indexing_protocol(self):
        regs = RegisterFile()
        regs[4] = 7
        assert regs[4] == 7

    def test_snapshot_is_copy(self):
        regs = RegisterFile()
        snap = regs.snapshot()
        snap[0] = 42
        assert regs.read(0) == 0


class TestPsr:
    def test_word_round_trip(self):
        psr = Psr()
        psr.z = True
        psr.v = True
        psr.overflow_enable = True
        word = psr.to_word()
        other = Psr()
        other.from_word(word)
        assert (other.z, other.n, other.c, other.v) == (True, False, False, True)
        assert other.overflow_enable

    def test_set_nz_zero(self):
        psr = Psr()
        psr.set_nz(0)
        assert psr.z and not psr.n

    def test_set_nz_negative(self):
        psr = Psr()
        psr.set_nz(0x80000000)
        assert psr.n and not psr.z

    def test_bit_positions_match_constants(self):
        psr = Psr()
        psr.from_word(1 << Psr.BIT_C)
        assert psr.c and not (psr.z or psr.n or psr.v)

    def test_scan_flip_changes_one_flag(self):
        # A scan-chain injection flips one PSR bit; verify via word ops.
        psr = Psr()
        psr.set_nz(5)  # z=False n=False
        word = psr.to_word() ^ (1 << Psr.BIT_Z)
        psr.from_word(word)
        assert psr.z
