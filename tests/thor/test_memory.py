"""Unit tests for main memory."""

import pytest

from repro.thor.memory import IllegalAddress, Memory


class TestBounds:
    def test_read_write_in_bounds(self):
        memory = Memory(64)
        memory.write(10, 0x1234)
        assert memory.read(10) == 0x1234

    def test_read_out_of_bounds_raises(self):
        memory = Memory(64)
        with pytest.raises(IllegalAddress):
            memory.read(64)

    def test_write_out_of_bounds_raises(self):
        memory = Memory(64)
        with pytest.raises(IllegalAddress):
            memory.write(-1, 0)

    def test_values_masked_to_32_bits(self):
        memory = Memory(4)
        memory.write(0, 0x1_FFFF_FFFF)
        assert memory.read(0) == 0xFFFFFFFF

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Memory(0)


class TestProtection:
    def test_protected_range_rejects_cpu_writes(self):
        memory = Memory(64)
        memory.protect(8, 15)
        with pytest.raises(IllegalAddress):
            memory.write(10, 1)

    def test_protection_boundaries(self):
        memory = Memory(64)
        memory.protect(8, 15)
        memory.write(7, 1)
        memory.write(16, 1)
        with pytest.raises(IllegalAddress):
            memory.write(8, 1)
        with pytest.raises(IllegalAddress):
            memory.write(15, 1)

    def test_poke_bypasses_protection(self):
        memory = Memory(64)
        memory.protect(0, 63)
        memory.poke(5, 77)  # injector / download-port path
        assert memory.peek(5) == 77

    def test_unprotect(self):
        memory = Memory(64)
        memory.protect(0, 63)
        memory.unprotect()
        memory.write(5, 1)

    def test_reset_clears_protection_and_contents(self):
        memory = Memory(64)
        memory.write(3, 9)
        memory.protect(0, 63)
        memory.reset()
        assert memory.read(3) == 0
        memory.write(3, 1)


class TestBulkAccess:
    def test_load_image(self):
        memory = Memory(64)
        memory.load_image({1: 10, 2: 20})
        assert memory.read(1) == 10
        assert memory.read(2) == 20

    def test_dump(self):
        memory = Memory(64)
        memory.load_image({4: 1, 5: 2, 6: 3})
        assert memory.dump(4, 7) == [1, 2, 3]

    def test_dump_bad_range_raises(self):
        memory = Memory(8)
        with pytest.raises(IllegalAddress):
            memory.dump(0, 9)

    def test_nonzero_addresses(self):
        memory = Memory(16)
        memory.load_image({3: 5, 9: 1})
        assert list(memory.nonzero_addresses()) == [3, 9]
