"""Unit tests for the scan chains."""

import pytest

from repro.thor.assembler import assemble
from repro.thor.cpu import Cpu
from repro.thor.scanchain import ScanCell, ScanChain, build_scan_chains
from repro.util.bits import bits_to_int, int_to_bits
from repro.util.errors import TargetError


def make_cpu_with_state():
    cpu = Cpu()
    program = assemble(
        "ldi r1, 0x123\nldi r2, buf\nld r3, [r2+0]\nhalt\nbuf: .word 77\n"
    )
    cpu.memory.load_image(program.words)
    cpu.reset(entry=program.entry)
    while not cpu.halted:
        cpu.step()
    return cpu


class TestChainStructure:
    def test_total_bits_is_sum_of_cells(self):
        cpu = Cpu()
        chain = build_scan_chains(cpu)["internal"]
        assert chain.total_bits == sum(c.width for c in chain.cells())

    def test_bit_offset_and_locate_are_inverse(self):
        cpu = Cpu()
        chain = build_scan_chains(cpu)["internal"]
        offset = chain.bit_offset("cpu.regfile.r3", 17)
        assert chain.locate(offset) == ("cpu.regfile.r3", 17)

    def test_unknown_cell_raises(self):
        cpu = Cpu()
        chain = build_scan_chains(cpu)["internal"]
        with pytest.raises(TargetError):
            chain.bit_offset("cpu.regfile.r99", 0)

    def test_bit_out_of_cell_range_raises(self):
        cpu = Cpu()
        chain = build_scan_chains(cpu)["internal"]
        with pytest.raises(TargetError):
            chain.bit_offset("cpu.psr", 9)

    def test_duplicate_paths_rejected(self):
        cell = ScanCell("x", 1, lambda: 0)
        with pytest.raises(TargetError):
            ScanChain("c", [cell, ScanCell("x", 1, lambda: 0)])

    def test_describe_lists_read_only(self):
        cpu = Cpu()
        chain = build_scan_chains(cpu)["internal"]
        info = {item["path"]: item for item in chain.describe()}
        assert info["cpu.cycle_counter"]["read_only"]
        assert not info["cpu.regfile.r0"]["read_only"]

    def test_shift_cycles_equals_length(self):
        cpu = Cpu()
        chain = build_scan_chains(cpu)["internal"]
        assert chain.shift_cycles == chain.total_bits


class TestReadWrite:
    def test_read_reflects_register_state(self):
        cpu = make_cpu_with_state()
        chain = build_scan_chains(cpu)["internal"]
        bits = chain.read()
        offset = chain.bit_offset("cpu.regfile.r1", 0)
        value = bits_to_int(bits[offset:offset + 32])
        assert value == 0x123

    def test_write_back_unchanged_is_identity(self):
        cpu = make_cpu_with_state()
        chain = build_scan_chains(cpu)["internal"]
        bits = chain.read()
        chain.write(bits)
        assert chain.read() == bits

    def test_unchanged_writeback_does_not_force_ir(self):
        cpu = make_cpu_with_state()
        chain = build_scan_chains(cpu)["internal"]
        chain.write(chain.read())
        assert not cpu.pipeline.ir_forced

    def test_flip_register_bit(self):
        cpu = make_cpu_with_state()
        chain = build_scan_chains(cpu)["internal"]
        bits = chain.read()
        offset = chain.bit_offset("cpu.regfile.r1", 4)
        bits[offset] ^= 1
        chain.write(bits)
        assert cpu.regs[1] == 0x123 ^ (1 << 4)

    def test_write_to_read_only_cell_ignored(self):
        cpu = make_cpu_with_state()
        chain = build_scan_chains(cpu)["internal"]
        bits = chain.read()
        offset = chain.bit_offset("cpu.cycle_counter", 0)
        before = cpu.cycles
        bits[offset] ^= 1
        chain.write(bits)
        assert cpu.cycles == before

    def test_wrong_length_rejected(self):
        cpu = Cpu()
        chain = build_scan_chains(cpu)["internal"]
        with pytest.raises(TargetError):
            chain.write([0])

    def test_ir_write_forces_pipeline(self):
        cpu = make_cpu_with_state()
        chain = build_scan_chains(cpu)["internal"]
        bits = chain.read()
        offset = chain.bit_offset("cpu.pipeline.ir", 0)
        bits[offset] ^= 1
        chain.write(bits)
        assert cpu.pipeline.ir_forced

    def test_cache_cells_survive_reset(self):
        # Cells must track the cache object across cache.reset(), which
        # replaces the CacheLine instances.
        cpu = make_cpu_with_state()
        chain = build_scan_chains(cpu)["internal"]
        bits = chain.read()
        offset = chain.bit_offset("dcache.line0.valid", 0)
        cpu.dcache.reset()
        bits2 = chain.read()
        assert bits2[offset] == 0  # reads the *new* line object

    def test_operation_counters(self):
        cpu = Cpu()
        chain = build_scan_chains(cpu)["internal"]
        chain.read()
        chain.write(chain.read())
        assert chain.reads == 2
        assert chain.writes == 1


class TestBoundaryChain:
    def test_pins_observe_bus_latches(self):
        cpu = make_cpu_with_state()
        chain = build_scan_chains(cpu)["boundary"]
        bits = chain.read()
        offset = chain.bit_offset("pins.data_bus", 0)
        value = bits_to_int(bits[offset:offset + 32])
        assert value == 77  # last memory transaction data

    def test_halt_pin(self):
        cpu = make_cpu_with_state()
        chain = build_scan_chains(cpu)["boundary"]
        bits = chain.read()
        offset = chain.bit_offset("pins.halt", 0)
        assert bits[offset] == 1
