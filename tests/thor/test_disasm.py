"""Unit tests for the disassembler."""

import pytest

from repro.thor.disasm import disassemble_word, format_instruction
from repro.thor.isa import I_TYPE, R_TYPE, Instruction, Opcode, assemble_word, decode


class TestFormatting:
    def test_no_operand(self):
        assert format_instruction(Instruction(Opcode.HALT)) == "halt"

    def test_alu(self):
        text = format_instruction(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
        assert text == "add r1, r2, r3"

    def test_memory_positive(self):
        text = format_instruction(Instruction(Opcode.LD, rd=1, rs1=2, imm=3))
        assert text == "ld r1, [r2+3]"

    def test_memory_negative(self):
        text = format_instruction(Instruction(Opcode.ST, rd=1, rs1=2, imm=-3))
        assert text == "st r1, [r2-3]"

    def test_branch_relative(self):
        assert format_instruction(Instruction(Opcode.BEQ, imm=-4)) == "beq -4"

    def test_jump_absolute(self):
        assert format_instruction(Instruction(Opcode.JMP, imm=0x100)) == "jmp 0x100"

    def test_illegal_word(self):
        assert disassemble_word(0x3F << 26).startswith(".illegal")


class TestEveryOpcodeRenders:
    @pytest.mark.parametrize("opcode", list(Opcode), ids=lambda op: op.name)
    def test_renders_nonempty(self, opcode):
        imm = 1 if opcode in (Opcode.JMP, Opcode.CALL, Opcode.TRAP, Opcode.LUI) else 1
        if opcode in R_TYPE:
            instr = Instruction(opcode, rd=1, rs1=2, rs2=3)
        else:
            instr = Instruction(opcode, rd=1, rs1=2, imm=imm)
        text = format_instruction(instr)
        assert text
        assert text.split()[0] == opcode.name.lower()

    @pytest.mark.parametrize("opcode", list(Opcode), ids=lambda op: op.name)
    def test_round_trip_through_encoding(self, opcode):
        if opcode in R_TYPE:
            instr = Instruction(opcode, rd=4, rs1=5, rs2=6)
        else:
            instr = Instruction(opcode, rd=4, rs1=5, imm=2)
        word = assemble_word(instr)
        assert format_instruction(decode(word)) == format_instruction(instr)
