"""Unit tests for the parity-protected caches."""

import pytest

from repro.thor.cache import Cache, CacheParityError
from repro.thor.memory import Memory
from repro.util.bits import parity


@pytest.fixture
def memory():
    memory = Memory(1024)
    for address in range(256):
        memory.poke(address, address * 3 + 1)
    return memory


@pytest.fixture
def cache():
    return Cache("dcache", n_lines=4, words_per_line=4, miss_penalty=8,
                 address_bits=10)


class TestReadPath:
    def test_miss_then_hit(self, cache, memory):
        value, extra = cache.read(5, memory)
        assert value == 16
        assert extra == 8
        value, extra = cache.read(5, memory)
        assert extra == 0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_line_fill_brings_neighbours(self, cache, memory):
        cache.read(4, memory)
        for address in (5, 6, 7):
            _, extra = cache.read(address, memory)
            assert extra == 0

    def test_conflict_eviction(self, cache, memory):
        cache.read(0, memory)
        # Same index, different tag: 4 lines * 4 words = 64-word stride.
        cache.read(64, memory)
        _, extra = cache.read(0, memory)
        assert extra == 8  # was evicted

    def test_parity_stored_correctly(self, cache, memory):
        cache.read(8, memory)
        tag, index, offset = cache.split(8)
        line = cache.lines[index]
        assert line.tag_parity == parity(line.tag)
        for word, par in zip(line.data, line.data_parity):
            assert par == parity(word)


class TestWritePath:
    def test_write_through(self, cache, memory):
        cache.read(4, memory)
        cache.write(4, 999, memory)
        assert memory.peek(4) == 999
        value, extra = cache.read(4, memory)
        assert value == 999 and extra == 0

    def test_write_miss_goes_to_memory_only(self, cache, memory):
        cache.write(100, 123, memory)
        assert memory.peek(100) == 123
        # No allocation on write miss.
        _, extra = cache.read(100, memory)
        assert extra == 8

    def test_write_updates_parity(self, cache, memory):
        cache.read(4, memory)
        cache.write(4, 0b111, memory)
        _, index, offset = cache.split(4)
        assert cache.lines[index].data_parity[offset] == parity(0b111)


class TestParityDetection:
    def test_injected_data_flip_detected_on_read(self, cache, memory):
        cache.read(4, memory)
        _, index, offset = cache.split(4)
        cache.lines[index].data[offset] ^= 1 << 9  # scan-chain injection
        with pytest.raises(CacheParityError) as excinfo:
            cache.read(4, memory)
        assert excinfo.value.array == "data"
        assert cache.stats.parity_errors == 1

    def test_injected_parity_bit_flip_detected(self, cache, memory):
        cache.read(4, memory)
        _, index, offset = cache.split(4)
        cache.lines[index].data_parity[offset] ^= 1
        with pytest.raises(CacheParityError):
            cache.read(4, memory)

    def test_injected_tag_flip_detected(self, cache, memory):
        cache.read(4, memory)
        _, index, _ = cache.split(4)
        cache.lines[index].tag ^= 1
        with pytest.raises(CacheParityError) as excinfo:
            cache.read(4, memory)
        assert excinfo.value.array == "tag"

    def test_double_flip_escapes_parity(self, cache, memory):
        # Even parity cannot see a double flip in the same word — the
        # mechanism behind higher escape rates at multiplicity 2 (E7).
        cache.read(4, memory)
        _, index, offset = cache.split(4)
        cache.lines[index].data[offset] ^= 0b11
        value, _ = cache.read(4, memory)
        assert value == memory.peek(4) ^ 0b11  # wrong data, undetected

    def test_flip_in_untouched_line_harmless(self, cache, memory):
        cache.read(4, memory)
        cache.lines[3].data[0] ^= 1  # invalid line: never checked
        cache.read(4, memory)

    def test_checking_disabled(self, memory):
        cache = Cache("d", n_lines=4, words_per_line=4, check_parity=False,
                      address_bits=10)
        cache.read(4, memory)
        _, index, offset = cache.split(4)
        cache.lines[index].data[offset] ^= 1
        cache.read(4, memory)  # silently returns corrupted data

    def test_refill_overwrites_fault(self, cache, memory):
        cache.read(4, memory)
        _, index, offset = cache.split(4)
        cache.lines[index].data[offset] ^= 1 << 5
        cache.lines[index].valid = False  # pretend evicted
        value, _ = cache.read(4, memory)
        assert value == memory.peek(4)  # fault overwritten by refill


class TestConfigValidation:
    def test_non_power_of_two_lines_rejected(self):
        with pytest.raises(ValueError):
            Cache("x", n_lines=3)

    def test_non_power_of_two_words_rejected(self):
        with pytest.raises(ValueError):
            Cache("x", words_per_line=5)

    def test_reset_clears_lines_and_stats(self, cache, memory):
        cache.read(4, memory)
        cache.reset()
        assert cache.stats.hits == 0
        assert all(not line.valid for line in cache.lines)

    def test_split_is_consistent(self, cache):
        # 4 lines -> 2 index bits; 4 words/line -> 2 offset bits.
        for address in (0, 5, 63, 512):
            tag, index, offset = cache.split(address)
            reconstructed = ((tag << 2 | index) << 2) | offset
            assert reconstructed == address
