"""Unit tests for the two-pass assembler."""

import pytest

from repro.thor import isa
from repro.thor.assembler import assemble
from repro.thor.isa import Opcode, decode
from repro.util.errors import AssemblerError


class TestBasics:
    def test_simple_program(self):
        program = assemble("start:\n  ldi r1, 5\n  halt\n")
        assert program.entry == 0x100
        assert decode(program.words[0x100]).opcode is Opcode.LDI
        assert decode(program.words[0x101]).opcode is Opcode.HALT

    def test_comments_stripped(self):
        program = assemble("; leading comment\nstart: halt ; trailing\n# hash\n")
        assert len(program.words) == 1

    def test_origin_respected(self):
        program = assemble("halt", origin=0x400)
        assert 0x400 in program.words

    def test_register_aliases(self):
        program = assemble("push sp\npush lr\n")
        instrs = [decode(program.words[a]) for a in sorted(program.words)]
        assert instrs[0].rd == isa.REG_SP
        assert instrs[1].rd == isa.REG_LR

    def test_case_insensitive_mnemonics(self):
        program = assemble("HALT")
        assert decode(program.words[0x100]).opcode is Opcode.HALT


class TestLabelsAndSymbols:
    def test_forward_reference(self):
        program = assemble("jmp end\nnop\nend: halt\n")
        assert decode(program.words[0x100]).imm == program.symbols["end"]

    def test_branch_is_pc_relative(self):
        program = assemble("start:\n  nop\nloop:\n  beq loop\n  halt\n")
        branch = decode(program.words[0x101])
        assert branch.imm == -1  # target = pc+1+imm = pc

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere\n")

    def test_entry_defaults_to_origin_without_start(self):
        program = assemble("nop\nhalt\n")
        assert program.entry == 0x100

    def test_main_label_sets_entry(self):
        program = assemble(".org 0x200\nmain: halt\n", origin=0x200)
        assert program.entry == 0x200


class TestDirectives:
    def test_word_directive(self):
        program = assemble("data: .word 1, 2, 0xff\n")
        base = program.symbols["data"]
        assert [program.words[base + i] for i in range(3)] == [1, 2, 255]
        assert all(program.kinds[base + i] == "data" for i in range(3))

    def test_space_directive_zero_fills(self):
        program = assemble("buf: .space 4\n")
        base = program.symbols["buf"]
        assert [program.words[base + i] for i in range(4)] == [0, 0, 0, 0]

    def test_equ_constant(self):
        program = assemble(".equ LIMIT 42\nstart: ldi r1, LIMIT\nhalt\n")
        assert decode(program.words[0x100]).imm == 42

    def test_negative_word(self):
        program = assemble("v: .word -1\n")
        assert program.words[program.symbols["v"]] == 0xFFFFFFFF

    def test_org_moves_location(self):
        program = assemble("nop\n.org 0x300\nhalt\n")
        assert 0x100 in program.words and 0x300 in program.words

    def test_double_assembly_of_address_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("nop\n.org 0x100\nnop\n")


class TestOperandForms:
    def test_memory_operand_positive_offset(self):
        program = assemble("ld r1, [r2+3]\n")
        instr = decode(program.words[0x100])
        assert (instr.rd, instr.rs1, instr.imm) == (1, 2, 3)

    def test_memory_operand_negative_offset(self):
        program = assemble("st r1, [r2-3]\n")
        assert decode(program.words[0x100]).imm == -3

    def test_memory_operand_no_offset(self):
        program = assemble("ld r1, [r2]\n")
        assert decode(program.words[0x100]).imm == 0

    def test_bad_memory_operand_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("ld r1, r2+3\n")

    def test_unknown_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("mov r1, r99\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1\n")

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2\n")


class TestLiPseudo:
    def test_small_constant_single_ldi(self):
        program = assemble("li r1, 100\n")
        assert decode(program.words[0x100]).opcode is Opcode.LDI
        assert decode(program.words[0x101]).opcode is Opcode.NOP

    def test_large_constant_lui_ori(self):
        program = assemble("li r1, 0xDEADBEEF\n")
        first = decode(program.words[0x100])
        second = decode(program.words[0x101])
        assert first.opcode is Opcode.LUI
        assert second.opcode is Opcode.ORI
        value = (first.imm << 14) | (second.imm & 0x3FFF)
        assert value & 0xFFFFFFFF == 0xDEADBEEF

    def test_negative_constant(self):
        program = assemble("li r1, -24576\n")
        # Must assemble without range errors and occupy two words.
        assert len(program.words) == 2

    def test_li_always_two_words(self):
        # Label arithmetic depends on 'li' having a fixed size.
        program = assemble("li r1, 1\nend: halt\n")
        assert program.symbols["end"] == 0x102


class TestProgramQueries:
    def test_code_and_data_addresses(self):
        program = assemble("start: halt\nd: .word 9\n")
        assert program.code_addresses() == [0x100]
        assert program.data_addresses() == [0x101]

    def test_extent(self):
        program = assemble("nop\nnop\nhalt\n")
        assert program.extent() == (0x100, 0x102)

    def test_source_map(self):
        program = assemble("start: halt\n")
        line, text = program.source[0x100]
        assert "halt" in text
