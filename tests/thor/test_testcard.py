"""Unit tests for the test card (run control, breakpoints, debug events)."""

import pytest

from repro.thor.assembler import assemble
from repro.thor.testcard import DebugEventKind, TestCard
from repro.util.errors import TargetError

SUM_PROGRAM = """
start:
    ldi r1, 0
    ldi r2, 10
loop:
    add r1, r1, r2
    subi r2, r2, 1
    cmpi r2, 0
    bne loop
    halt
"""

LOOP_PROGRAM = """
start:
    ldi r1, 0
loop:
    addi r1, r1, 1
    sync
    jmp loop
"""


@pytest.fixture
def sum_card():
    card = TestCard()
    card.init()
    card.load_program(assemble(SUM_PROGRAM))
    return card


class TestRunControl:
    def test_runs_to_halt(self, sum_card):
        event = sum_card.run(timeout_cycles=100000)
        assert event.kind is DebugEventKind.HALT
        assert sum_card.cpu.regs[1] == 55

    def test_timeout(self):
        card = TestCard()
        card.init()
        card.load_program(assemble("loop: jmp loop\n"))
        event = card.run(timeout_cycles=500)
        assert event.kind is DebugEventKind.TIMEOUT
        assert card.cpu.cycles >= 500

    def test_max_iterations(self):
        card = TestCard()
        card.init()
        card.load_program(assemble(LOOP_PROGRAM))
        event = card.run(timeout_cycles=10**7, max_iterations=5)
        assert event.kind is DebugEventKind.MAX_ITERATIONS
        assert event.iteration == 5
        assert card.cpu.regs[1] == 5

    def test_run_after_halt_raises(self, sum_card):
        sum_card.run(timeout_cycles=100000)
        with pytest.raises(TargetError):
            sum_card.run(timeout_cycles=100000)

    def test_trap_event(self):
        card = TestCard()
        card.init()
        card.load_program(assemble("trap 9\nhalt\n"))
        event = card.run(timeout_cycles=1000)
        assert event.kind is DebugEventKind.TRAP
        assert event.trap.code == 9


class TestBreakpoints:
    def test_stop_at_cycle(self, sum_card):
        event = sum_card.run(timeout_cycles=100000, stop_cycle=20)
        assert event.kind is DebugEventKind.BREAKPOINT
        assert event.cycle >= 20
        # Resume to completion.
        event = sum_card.run(timeout_cycles=100000)
        assert event.kind is DebugEventKind.HALT
        assert sum_card.cpu.regs[1] == 55

    def test_stop_cycle_zero_stops_immediately(self, sum_card):
        event = sum_card.run(timeout_cycles=100000, stop_cycle=0)
        assert event.kind is DebugEventKind.BREAKPOINT
        assert sum_card.cpu.instret == 0

    def test_address_breakpoint(self, sum_card):
        target = sum_card.program.symbols["loop"]
        sum_card.set_breakpoints([target])
        event = sum_card.run(timeout_cycles=100000)
        assert event.kind is DebugEventKind.BREAKPOINT
        assert event.pc == target
        assert event.reason == "address"

    def test_address_breakpoint_resume_does_not_retrigger_immediately(
        self, sum_card
    ):
        target = sum_card.program.symbols["loop"]
        sum_card.set_breakpoints([target])
        sum_card.run(timeout_cycles=100000)
        event = sum_card.run(timeout_cycles=100000)
        # Second stop is the *next* loop iteration, not the same pc.
        assert event.kind is DebugEventKind.BREAKPOINT
        assert sum_card.cpu.instret > 0

    def test_breakpoint_hit_count(self, sum_card):
        target = sum_card.program.symbols["loop"]
        sum_card.set_breakpoints([target])
        hits = 0
        while True:
            event = sum_card.run(timeout_cycles=100000)
            if event.kind is DebugEventKind.HALT:
                break
            hits += 1
        assert hits == 10  # loop body runs 10 times

    def test_clear_breakpoints(self, sum_card):
        sum_card.set_breakpoints([sum_card.program.symbols["loop"]])
        sum_card.clear_breakpoints()
        event = sum_card.run(timeout_cycles=100000)
        assert event.kind is DebugEventKind.HALT


class TestDownloadPort:
    def test_memory_block_round_trip(self, sum_card):
        sum_card.write_memory_block(0x500, [1, 2, 3])
        assert sum_card.read_memory_block(0x500, 3) == [1, 2, 3]

    def test_load_program_sets_entry(self, sum_card):
        assert sum_card.cpu.pc == sum_card.program.entry

    def test_init_clears_everything(self, sum_card):
        sum_card.run(timeout_cycles=100000)
        sum_card.init()
        assert sum_card.cpu.cycles == 0
        assert not sum_card.cpu.halted
        assert sum_card.read_memory(0x100) == 0


class TestHooks:
    def test_sync_hook_called_per_iteration(self):
        card = TestCard()
        card.init()
        card.load_program(assemble(LOOP_PROGRAM))
        seen = []
        card.on_sync = lambda c, iteration: seen.append(iteration)
        card.run(timeout_cycles=10**7, max_iterations=3)
        assert seen == [1, 2, 3]

    def test_step_hook_sees_each_instruction(self, sum_card):
        count = [0]
        sum_card.on_step = lambda c: count.__setitem__(0, count[0] + 1)
        sum_card.run(timeout_cycles=100000)
        # Hooks see every completed instruction except the halting one
        # (instret counts HALT itself as a retired instruction).
        assert count[0] == sum_card.cpu.instret - 1

    def test_trap_hook_consumes_software_trap(self):
        card = TestCard()
        card.init()
        card.load_program(assemble("trap 5\nldi r1, 3\nhalt\n"))

        def hook(c, trap_event):
            c.cpu.pc += 1  # skip the TRAP instruction
            return True

        card.trap_hook = hook
        event = card.run(timeout_cycles=1000)
        assert event.kind is DebugEventKind.HALT
        assert card.cpu.regs[1] == 3

    def test_trap_hook_rejecting_trap_terminates(self):
        card = TestCard()
        card.init()
        card.load_program(assemble("trap 5\nhalt\n"))
        card.trap_hook = lambda c, t: False
        event = card.run(timeout_cycles=1000)
        assert event.kind is DebugEventKind.TRAP

    def test_scan_cycles_accounted(self, sum_card):
        before = sum_card.total_scan_cycles
        sum_card.read_chain("internal")
        assert sum_card.total_scan_cycles > before

    def test_unknown_chain_raises(self, sum_card):
        with pytest.raises(TargetError):
            sum_card.read_chain("bogus")
