"""Unit tests for instruction register-effect metadata."""

from repro.thor import isa
from repro.thor.effects import register_effects
from repro.thor.isa import Instruction, Opcode


class TestAluEffects:
    def test_r3_alu(self):
        effects = register_effects(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
        assert effects.reg_reads == {2, 3}
        assert effects.reg_writes == {1}
        assert effects.writes_flags

    def test_i3_alu(self):
        effects = register_effects(Instruction(Opcode.ADDI, rd=1, rs1=2, imm=5))
        assert effects.reg_reads == {2}
        assert effects.reg_writes == {1}

    def test_ldi_writes_only(self):
        effects = register_effects(Instruction(Opcode.LDI, rd=4, imm=1))
        assert effects.reg_reads == frozenset()
        assert effects.reg_writes == {4}

    def test_same_register_read_and_write(self):
        effects = register_effects(Instruction(Opcode.ADDI, rd=1, rs1=1, imm=1))
        assert effects.reg_reads == {1}
        assert effects.reg_writes == {1}


class TestFlagsAndControl:
    def test_cmp_reads_regs_writes_flags(self):
        effects = register_effects(Instruction(Opcode.CMP, rs1=1, rs2=2))
        assert effects.reg_reads == {1, 2}
        assert effects.reg_writes == frozenset()
        assert effects.writes_flags

    def test_branch_reads_flags(self):
        effects = register_effects(Instruction(Opcode.BEQ, imm=2))
        assert effects.reads_flags
        assert not effects.writes_flags

    def test_call_writes_lr(self):
        effects = register_effects(Instruction(Opcode.CALL, imm=0x200))
        assert effects.reg_writes == {isa.REG_LR}

    def test_ret_reads_lr(self):
        effects = register_effects(Instruction(Opcode.RET))
        assert effects.reg_reads == {isa.REG_LR}

    def test_jr_reads_register(self):
        effects = register_effects(Instruction(Opcode.JR, rs1=6))
        assert effects.reg_reads == {6}


class TestMemoryEffects:
    def test_load(self):
        effects = register_effects(Instruction(Opcode.LD, rd=1, rs1=2, imm=0))
        assert effects.reg_reads == {2}
        assert effects.reg_writes == {1}

    def test_store_reads_both(self):
        effects = register_effects(Instruction(Opcode.ST, rd=1, rs1=2, imm=0))
        assert effects.reg_reads == {1, 2}
        assert effects.reg_writes == frozenset()

    def test_push_touches_sp(self):
        effects = register_effects(Instruction(Opcode.PUSH, rd=3))
        assert isa.REG_SP in effects.reg_reads
        assert effects.reg_writes == {isa.REG_SP}

    def test_pop_writes_rd_and_sp(self):
        effects = register_effects(Instruction(Opcode.POP, rd=3))
        assert effects.reg_writes == {3, isa.REG_SP}

    def test_nop_touches_nothing(self):
        effects = register_effects(Instruction(Opcode.NOP))
        assert effects.reg_reads == frozenset()
        assert effects.reg_writes == frozenset()
        assert not effects.reads_flags and not effects.writes_flags
