"""Regression pin: the bytes-level page scan equals the per-word scan.

``Memory.nonzero_pages`` used to walk every word in Python
(O(memory_size) per call — it runs at the first checkpoint capture *and*
at every cold divergence-tracking start). The vectorized core replaces
it with one ``tobytes`` plus a memcmp-speed compare per page; this suite
pins the new implementation's page set to the retained slow reference
(:meth:`Memory._nonzero_pages_reference`) across adversarial images, and
covers the ``array``-backed page read/load round-trip it feeds.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.thor.memory import PAGE_WORDS, Memory


def _fill(memory, writes):
    for address, value in writes:
        memory.poke(address % memory.size, value)


class TestNonzeroPagesEquality:
    def test_empty_memory(self):
        memory = Memory(4096)
        assert memory.nonzero_pages() == set()
        assert memory.nonzero_pages() == memory._nonzero_pages_reference()

    def test_page_boundaries(self):
        memory = Memory(4 * PAGE_WORDS)
        for address in (0, PAGE_WORDS - 1, PAGE_WORDS, 3 * PAGE_WORDS):
            memory.reset()
            memory.poke(address, 1)
            expected = {address // PAGE_WORDS}
            assert memory.nonzero_pages() == expected
            assert memory._nonzero_pages_reference() == expected

    def test_short_final_page(self):
        # A size that is not a multiple of PAGE_WORDS: the final page is
        # short, which the bytes path must not misread past.
        size = 3 * PAGE_WORDS + 17
        memory = Memory(size)
        memory.poke(size - 1, 0xDEADBEEF)
        assert memory.nonzero_pages() == {size // PAGE_WORDS}
        assert memory.nonzero_pages() == memory._nonzero_pages_reference()

    def test_write_then_clear_leaves_no_page(self):
        memory = Memory(2 * PAGE_WORDS)
        memory.poke(5, 77)
        memory.poke(5, 0)
        assert memory.nonzero_pages() == set()
        assert memory.nonzero_pages() == memory._nonzero_pages_reference()

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_writes=st.integers(min_value=0, max_value=200),
        size_pages=st.integers(min_value=1, max_value=8),
        tail=st.integers(min_value=0, max_value=PAGE_WORDS - 1),
    )
    def test_random_images_match_reference(
        self, seed, n_writes, size_pages, tail
    ):
        size = (size_pages - 1) * PAGE_WORDS + max(1, tail)
        memory = Memory(size)
        rng = random.Random(seed)
        _fill(
            memory,
            (
                (rng.randrange(size), rng.getrandbits(32))
                for _ in range(n_writes)
            ),
        )
        assert memory.nonzero_pages() == memory._nonzero_pages_reference()

    def test_nonzero_addresses_unchanged(self):
        memory = Memory(4 * PAGE_WORDS)
        addresses = [3, PAGE_WORDS - 1, PAGE_WORDS, 2 * PAGE_WORDS + 9]
        for address in addresses:
            memory.poke(address, 1)
        assert list(memory.nonzero_addresses()) == sorted(addresses)


class TestPageRoundTrip:
    def test_read_page_is_typed_and_padded(self):
        size = PAGE_WORDS + 10
        memory = Memory(size)
        memory.poke(PAGE_WORDS + 3, 42)
        page = memory.read_page(1)
        assert len(page) == PAGE_WORDS  # short page zero-padded
        assert page[3] == 42
        assert all(value == 0 for value in page[10:])

    def test_read_page_is_a_copy(self):
        memory = Memory(2 * PAGE_WORDS)
        memory.poke(0, 1)
        page = memory.read_page(0)
        memory.poke(0, 2)
        assert page[0] == 1  # snapshot semantics, not a live view

    def test_load_page_accepts_lists_and_arrays(self):
        memory = Memory(2 * PAGE_WORDS)
        image = [0] * PAGE_WORDS
        image[7] = 1234
        memory.load_page(0, image)  # plain list
        assert memory.peek(7) == 1234
        other = Memory(2 * PAGE_WORDS)
        other.load_page(0, memory.read_page(0))  # typed array
        assert other.peek(7) == 1234
        assert other.dump(0, PAGE_WORDS) == memory.dump(0, PAGE_WORDS)

    def test_load_page_round_trip_full_memory(self):
        size = 2 * PAGE_WORDS + 5
        source = Memory(size)
        rng = random.Random(99)
        for _ in range(64):
            source.poke(rng.randrange(size), rng.getrandbits(32))
        clone = Memory(size)
        for page in sorted(source.nonzero_pages()):
            clone.load_page(page, source.read_page(page))
        assert clone.dump(0, size) == source.dump(0, size)
