"""Purity of the decode memo and the fused-dispatch exec cache.

The vectorized core shares decoded :class:`Instruction` objects (and the
derived ``(instruction, handler, cost)`` exec entries) across every
experiment of a campaign, so three properties are load-bearing:

* decoded instructions are deeply immutable — a shared object one
  experiment could mutate would leak state between experiments;
* memoized decode is extensionally identical to uncached decode for
  every word, legal or not;
* illegal words never poison either cache: fault injection constantly
  creates garbage words, and a cached "illegal" verdict (or worse, a
  cached bogus instruction) would corrupt later campaigns in-process.
"""

import dataclasses
import random

import pytest

from repro.thor import cpu as cpu_mod
from repro.thor import isa
from repro.thor.isa import (
    IllegalOpcode,
    Instruction,
    Opcode,
    assemble_word,
    decode,
    try_decode,
)

_VALID_FIELDS = {op.value for op in Opcode}


def _legal_words(count, seed=7):
    rng = random.Random(seed)
    words = []
    while len(words) < count:
        word = rng.getrandbits(32)
        if (word >> 26) & 0x3F in _VALID_FIELDS:
            words.append(word)
    return words


def _illegal_words(count, seed=11):
    rng = random.Random(seed)
    words = []
    while len(words) < count:
        word = rng.getrandbits(32)
        if (word >> 26) & 0x3F not in _VALID_FIELDS:
            words.append(word)
    return words


class TestInstructionImmutability:
    def test_fields_frozen(self):
        instr = decode(assemble_word(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)))
        with pytest.raises(dataclasses.FrozenInstanceError):
            instr.rd = 9
        with pytest.raises(dataclasses.FrozenInstanceError):
            instr.opcode = Opcode.SUB

    def test_decode_returns_shared_frozen_object(self):
        word = assemble_word(Instruction(Opcode.ADDI, rd=1, rs1=2, imm=42))
        first = decode(word)
        second = decode(word)
        assert first is second  # memoized: one shared frozen object


class TestDecodeMemoEquivalence:
    def test_memo_matches_uncached_decode(self):
        for word in _legal_words(200):
            assert decode(word) == isa._decode_uncached(word)

    def test_repeated_decode_is_stable(self):
        for word in _legal_words(50, seed=23):
            instrs = {decode(word) for _ in range(3)}
            assert len(instrs) == 1

    def test_every_6bit_opcode_field_agrees_with_uncached(self):
        for field in range(64):
            word = field << 26
            try:
                expected = isa._decode_uncached(word)
            except IllegalOpcode:
                with pytest.raises(IllegalOpcode):
                    decode(word)
            else:
                assert decode(word) == expected


class TestNoPoisoning:
    def test_illegal_words_never_enter_decode_cache(self):
        isa.decode_cache_clear()
        for word in _illegal_words(50):
            with pytest.raises(IllegalOpcode):
                decode(word)
            assert try_decode(word) is None
        assert isa.decode_cache_size() == 0

    def test_illegal_then_legal_decode_still_correct(self):
        """A raise mid-campaign must not leave partial entries behind."""
        isa.decode_cache_clear()
        legal = assemble_word(Instruction(Opcode.LDI, rd=3, imm=-5))
        for word in _illegal_words(10, seed=3):
            with pytest.raises(IllegalOpcode):
                decode(word)
            instr = decode(legal)
            assert instr.opcode is Opcode.LDI
            assert instr.imm == -5
        assert isa.decode_cache_size() == 1

    def test_illegal_words_never_enter_exec_cache(self):
        cpu_mod._EXEC_CACHE.clear()
        for word in _illegal_words(50, seed=5):
            assert cpu_mod._exec_entry(word) is None
        assert not cpu_mod._EXEC_CACHE

    def test_exec_entry_matches_decode(self):
        cpu_mod._EXEC_CACHE.clear()
        for word in _legal_words(50, seed=31):
            entry = cpu_mod._exec_entry(word)
            assert entry is not None
            instr, handler, cost = entry
            assert instr is decode(word)
            assert handler is cpu_mod._HANDLERS[instr.opcode]
            assert cost == isa.CYCLE_COST[instr.opcode]


class TestSizeBound:
    def test_clear_on_full_keeps_serving_correct_decodes(self, monkeypatch):
        monkeypatch.setattr(isa, "_DECODE_CACHE_MAX", 8)
        isa.decode_cache_clear()
        words = _legal_words(64, seed=13)
        for word in words:
            assert decode(word) == isa._decode_uncached(word)
        assert isa.decode_cache_size() <= 8
        # Still consistent after the memo was dropped and rebuilt.
        for word in words:
            assert decode(word) == isa._decode_uncached(word)

    def test_handler_table_covers_all_semantics(self):
        assert set(cpu_mod._HANDLERS) == set(isa.SEMANTICS)
