"""Unit tests for the pipeline latches and their fault semantics."""

from repro.thor.assembler import assemble
from repro.thor.cpu import Cpu
from repro.thor.isa import Instruction, Opcode, assemble_word
from repro.thor.pipeline import PipelineLatches


class TestLatches:
    def test_reset(self):
        latches = PipelineLatches()
        latches.latch_fetch(5)
        latches.latch_memory(1, 2)
        latches.reset()
        assert (latches.ir, latches.mar, latches.mdr) == (0, 0, 0)
        assert not latches.ir_forced

    def test_fetch_clears_forced(self):
        latches = PipelineLatches()
        latches.force_ir(7)
        latches.latch_fetch(9)
        assert not latches.ir_forced

    def test_values_masked(self):
        latches = PipelineLatches()
        latches.latch_fetch(1 << 40)
        assert latches.ir == 0

    def test_consume_forced(self):
        latches = PipelineLatches()
        latches.force_ir(42)
        assert latches.consume_forced_ir() == 42
        assert not latches.ir_forced


class TestForcedIrExecution:
    def _prepared_cpu(self):
        cpu = Cpu()
        program = assemble("ldi r1, 1\nldi r2, 2\nhalt\n")
        cpu.memory.load_image(program.words)
        cpu.reset(entry=program.entry)
        cpu.step()  # executes ldi r1, 1
        return cpu

    def test_forced_ir_replaces_next_instruction(self):
        cpu = self._prepared_cpu()
        # Force "ldi r5, 99" instead of the fetched "ldi r2, 2".
        cpu.pipeline.force_ir(
            assemble_word(Instruction(Opcode.LDI, rd=5, imm=99))
        )
        cpu.step()
        assert cpu.regs[5] == 99
        assert cpu.regs[2] == 0  # the displaced instruction never ran

    def test_forced_ir_is_one_shot(self):
        cpu = self._prepared_cpu()
        cpu.pipeline.force_ir(
            assemble_word(Instruction(Opcode.LDI, rd=5, imm=99))
        )
        cpu.step()
        cpu.step()  # back to normal fetch: executes "halt"? no — pc moved
        assert not cpu.pipeline.ir_forced

    def test_ir_observes_last_fetch(self):
        cpu = self._prepared_cpu()
        word = cpu.memory.peek(0x100)
        assert cpu.pipeline.ir == word

    def test_mar_mdr_observe_last_memory_transaction(self):
        cpu = Cpu()
        program = assemble(
            "ldi r1, buf\nldi r2, 7\nst r2, [r1+0]\nhalt\nbuf: .word 0\n"
        )
        cpu.memory.load_image(program.words)
        cpu.reset(entry=program.entry)
        while not cpu.halted:
            cpu.step()
        assert cpu.pipeline.mar == program.symbols["buf"]
        assert cpu.pipeline.mdr == 7
