"""Unit tests for the THOR-lite CPU core."""

import pytest

from repro.thor.assembler import assemble
from repro.thor.cpu import Cpu, CpuConfig, CpuHalted
from repro.thor.traps import Trap
from repro.util.bits import to_unsigned


def run_asm(source: str, config: CpuConfig = None, max_steps: int = 100000):
    """Assemble, load and run to the first halting event."""
    cpu = Cpu(config)
    program = assemble(source)
    cpu.memory.load_image(program.words)
    cpu.reset(entry=program.entry)
    event = None
    for _ in range(max_steps):
        event = cpu.step()
        if event is not None and event.kind in ("halt", "trap"):
            break
    return cpu, program, event


class TestArithmetic:
    def test_add(self):
        cpu, _, _ = run_asm("ldi r1, 7\nldi r2, 5\nadd r3, r1, r2\nhalt\n")
        assert cpu.regs[3] == 12

    def test_sub_negative_result(self):
        cpu, _, _ = run_asm("ldi r1, 3\nldi r2, 5\nsub r3, r1, r2\nhalt\n")
        assert cpu.regs[3] == to_unsigned(-2)
        assert cpu.psr.n

    def test_mul_signed(self):
        cpu, _, _ = run_asm("ldi r1, -4\nldi r2, 3\nmul r3, r1, r2\nhalt\n")
        assert cpu.regs[3] == to_unsigned(-12)

    def test_div_truncates_toward_zero(self):
        cpu, _, _ = run_asm("ldi r1, -7\nldi r2, 2\ndiv r3, r1, r2\nhalt\n")
        assert cpu.regs[3] == to_unsigned(-3)

    def test_mod_sign_follows_dividend(self):
        cpu, _, _ = run_asm("ldi r1, -7\nldi r2, 2\nmod r3, r1, r2\nhalt\n")
        assert cpu.regs[3] == to_unsigned(-1)

    def test_div_by_zero_traps(self):
        cpu, _, event = run_asm("ldi r1, 1\nldi r2, 0\ndiv r3, r1, r2\nhalt\n")
        assert event.kind == "trap"
        assert event.trap.trap is Trap.DIV_ZERO

    def test_add_wraps_32_bits(self):
        cpu, _, _ = run_asm(
            "li r1, 0xFFFFFFFF\nldi r2, 1\nadd r3, r1, r2\nhalt\n"
        )
        assert cpu.regs[3] == 0
        assert cpu.psr.z and cpu.psr.c

    def test_signed_overflow_sets_v(self):
        cpu, _, _ = run_asm(
            "li r1, 0x7FFFFFFF\nldi r2, 1\nadd r3, r1, r2\nhalt\n"
        )
        assert cpu.psr.v

    def test_overflow_trap_when_enabled(self):
        cpu, _, event = run_asm(
            "li r1, 0x7FFFFFFF\nldi r2, 1\nadd r3, r1, r2\nhalt\n",
            config=CpuConfig(overflow_trap=True),
        )
        assert event.kind == "trap"
        assert event.trap.trap is Trap.OVERFLOW


class TestLogicAndShifts:
    def test_and_or_xor(self):
        cpu, _, _ = run_asm(
            "ldi r1, 0b1100\nldi r2, 0b1010\n"
            "and r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2\nhalt\n"
        )
        assert cpu.regs[3] == 0b1000
        assert cpu.regs[4] == 0b1110
        assert cpu.regs[5] == 0b0110

    def test_not(self):
        cpu, _, _ = run_asm("ldi r1, 0\nnot r2, r1\nhalt\n")
        assert cpu.regs[2] == 0xFFFFFFFF

    def test_shifts(self):
        cpu, _, _ = run_asm(
            "ldi r1, 1\nshli r2, r1, 31\nshri r3, r2, 31\nhalt\n"
        )
        assert cpu.regs[2] == 0x80000000
        assert cpu.regs[3] == 1

    def test_sra_sign_fills(self):
        cpu, _, _ = run_asm(
            "li r1, 0x80000000\nldi r2, 4\nsra r3, r1, r2\nhalt\n"
        )
        assert cpu.regs[3] == 0xF8000000

    def test_shift_amount_masked_to_31(self):
        cpu, _, _ = run_asm("ldi r1, 2\nldi r2, 33\nshl r3, r1, r2\nhalt\n")
        assert cpu.regs[3] == 4  # 33 & 31 == 1


class TestControlFlow:
    def test_taken_branch(self):
        cpu, program, _ = run_asm(
            "ldi r1, 5\ncmpi r1, 5\nbeq skip\nldi r2, 1\nskip: halt\n"
        )
        assert cpu.regs[2] == 0

    def test_not_taken_branch(self):
        cpu, _, _ = run_asm(
            "ldi r1, 4\ncmpi r1, 5\nbeq skip\nldi r2, 1\nskip: halt\n"
        )
        assert cpu.regs[2] == 1

    @pytest.mark.parametrize(
        "branch,a,b,taken",
        [
            ("blt", 1, 2, True),
            ("blt", 2, 1, False),
            ("blt", -1, 1, True),
            ("bge", 2, 2, True),
            ("bge", -5, -4, False),
            ("bgt", 3, 2, True),
            ("bgt", 2, 2, False),
            ("ble", 2, 2, True),
            ("ble", 3, 2, False),
            ("bne", 1, 2, True),
            ("bne", 2, 2, False),
        ],
    )
    def test_signed_branch_semantics(self, branch, a, b, taken):
        cpu, _, _ = run_asm(
            f"ldi r1, {a}\nldi r2, {b}\ncmp r1, r2\n{branch} yes\n"
            "ldi r3, 0\nhalt\nyes: ldi r3, 1\nhalt\n"
        )
        assert cpu.regs[3] == (1 if taken else 0)

    def test_call_ret(self):
        cpu, _, _ = run_asm(
            "start: call sub\nldi r2, 7\nhalt\nsub: ldi r1, 3\nret\n"
        )
        assert (cpu.regs[1], cpu.regs[2]) == (3, 7)

    def test_jr_jumps_to_register(self):
        cpu, _, _ = run_asm(
            "ldi r1, target\njr r1\nldi r2, 1\ntarget: halt\n"
        )
        assert cpu.regs[2] == 0

    def test_fetch_beyond_memory_traps(self):
        cpu, _, event = run_asm("li r1, 0x20000\njr r1\n")
        assert event.trap.trap is Trap.ILLEGAL_ADDRESS


class TestMemoryOps:
    def test_load_store(self):
        cpu, program, _ = run_asm(
            "ldi r1, buf\nldi r2, 42\nst r2, [r1+1]\nld r3, [r1+1]\nhalt\n"
            "buf: .space 4\n"
        )
        assert cpu.regs[3] == 42

    def test_push_pop(self):
        cpu, _, _ = run_asm(
            "ldi sp, 0x200\nldi r1, 11\nldi r2, 22\npush r1\npush r2\n"
            "pop r3\npop r4\nhalt\n"
        )
        assert (cpu.regs[3], cpu.regs[4]) == (22, 11)
        assert cpu.regs[14] == 0x200

    def test_store_out_of_range_traps(self):
        cpu, _, event = run_asm("li r1, 0x10000\nst r1, [r1+0]\nhalt\n")
        assert event.trap.trap is Trap.ILLEGAL_ADDRESS

    def test_load_negative_address_traps(self):
        cpu, _, event = run_asm("ldi r1, 0\nld r2, [r1-5]\nhalt\n")
        assert event.trap.trap is Trap.ILLEGAL_ADDRESS

    def test_push_underflow_traps(self):
        cpu, _, event = run_asm("ldi sp, 0\nldi r1, 1\npush r1\nhalt\n")
        assert event.trap.trap is Trap.ILLEGAL_ADDRESS

    def test_mmio_bypasses_dcache(self):
        config = CpuConfig()
        cpu = Cpu(config)
        program = assemble(
            "li r1, 0xFF00\nld r2, [r1+0]\nld r3, [r1+0]\nhalt\n"
        )
        cpu.memory.load_image(program.words)
        cpu.memory.poke(0xFF00, 1)
        cpu.reset(entry=program.entry)
        cpu.step()  # li (2 words)
        cpu.step()
        cpu.step()  # first ld
        cpu.memory.poke(0xFF00, 2)  # external write (env simulator)
        cpu.step()  # second ld must see the new value
        assert cpu.regs[2] == 1
        assert cpu.regs[3] == 2


class TestTrapsAndEvents:
    def test_illegal_opcode_traps(self):
        cpu = Cpu()
        cpu.memory.poke(0x100, 0x3F << 26)
        cpu.reset(entry=0x100)
        event = cpu.step()
        assert event.trap.trap is Trap.ILLEGAL_OPCODE

    def test_halt_event_and_state(self):
        cpu, _, event = run_asm("halt\n")
        assert event.kind == "halt"
        assert cpu.halted

    def test_step_after_halt_raises(self):
        cpu, _, _ = run_asm("halt\n")
        with pytest.raises(CpuHalted):
            cpu.step()

    def test_software_trap_carries_code(self):
        cpu, _, event = run_asm("trap 42\nhalt\n")
        assert event.trap.trap is Trap.SOFTWARE
        assert event.trap.code == 42

    def test_clear_trap_resumes(self):
        cpu, program, event = run_asm("trap 1\nldi r1, 9\nhalt\n")
        assert event.kind == "trap"
        cpu.clear_trap()
        cpu.pc += 1  # skip the TRAP instruction
        while not cpu.halted:
            cpu.step()
        assert cpu.regs[1] == 9

    def test_sync_event_counts_iterations(self):
        cpu, _, _ = run_asm("sync\nsync\nhalt\n")
        assert cpu.iterations == 2

    def test_watchdog_traps(self):
        cpu, _, event = run_asm(
            "loop: jmp loop\n", config=CpuConfig(watchdog_cycles=100)
        )
        assert event.trap.trap is Trap.WATCHDOG


class TestCycleAccounting:
    def test_cycles_grow_monotonically(self):
        cpu, _, _ = run_asm("ldi r1, 1\nldi r2, 2\nadd r3, r1, r2\nhalt\n")
        assert cpu.cycles >= cpu.instret

    def test_mul_costs_more_than_add(self):
        cpu_add, _, _ = run_asm("ldi r1, 2\nldi r2, 3\nadd r3, r1, r2\nhalt\n")
        cpu_mul, _, _ = run_asm("ldi r1, 2\nldi r2, 3\nmul r3, r1, r2\nhalt\n")
        assert cpu_mul.cycles > cpu_add.cycles

    def test_cache_miss_penalty_visible(self):
        # Two loads to the same line: first one pays the miss.
        source = "ldi r1, buf\nld r2, [r1+0]\nld r3, [r1+1]\nhalt\nbuf: .word 1, 2\n"
        cpu, _, _ = run_asm(source)
        assert cpu.dcache.stats.misses == 1
        assert cpu.dcache.stats.hits == 1

    def test_reset_preserves_overflow_config(self):
        cpu = Cpu(CpuConfig(overflow_trap=True))
        cpu.reset()
        assert cpu.psr.overflow_enable
