"""Unit tests for the THOR-lite ISA encoding/decoding."""

import pytest

from repro.thor import isa
from repro.thor.isa import (
    ABSOLUTE_IMM,
    BRANCHES,
    I_TYPE,
    R_TYPE,
    IllegalOpcode,
    Instruction,
    Opcode,
    assemble_word,
    decode,
    try_decode,
)


class TestEncodingRoundTrip:
    @pytest.mark.parametrize("opcode", sorted(R_TYPE, key=int))
    def test_r_type_round_trip(self, opcode):
        instr = Instruction(opcode, rd=3, rs1=7, rs2=12)
        assert decode(assemble_word(instr)) == instr

    @pytest.mark.parametrize("opcode", sorted(I_TYPE, key=int))
    def test_i_type_round_trip(self, opcode):
        imm = 100 if opcode in ABSOLUTE_IMM else -100
        instr = Instruction(opcode, rd=1, rs1=2, imm=imm)
        assert decode(assemble_word(instr)) == instr

    def test_imm_extremes_signed(self):
        for imm in (isa.IMM_MIN, isa.IMM_MAX, 0):
            instr = Instruction(Opcode.ADDI, rd=0, rs1=0, imm=imm)
            assert decode(assemble_word(instr)).imm == imm

    def test_imm_extremes_absolute(self):
        for imm in (0, isa.IMM_MASK):
            instr = Instruction(Opcode.JMP, imm=imm)
            assert decode(assemble_word(instr)).imm == imm

    def test_imm_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            assemble_word(Instruction(Opcode.ADDI, imm=isa.IMM_MAX + 1))
        with pytest.raises(ValueError):
            assemble_word(Instruction(Opcode.ADDI, imm=isa.IMM_MIN - 1))
        with pytest.raises(ValueError):
            assemble_word(Instruction(Opcode.JMP, imm=-1))

    def test_register_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            assemble_word(Instruction(Opcode.ADD, rd=16))
        with pytest.raises(ValueError):
            assemble_word(Instruction(Opcode.ADD, rs1=16))
        with pytest.raises(ValueError):
            assemble_word(Instruction(Opcode.ADD, rs2=16))


class TestDecode:
    def test_illegal_opcode_raises(self):
        # Opcode field 0x3F is unassigned.
        with pytest.raises(IllegalOpcode):
            decode(0x3F << 26)

    def test_try_decode_returns_none(self):
        assert try_decode(0x3F << 26) is None

    def test_try_decode_legal(self):
        word = assemble_word(Instruction(Opcode.NOP))
        assert try_decode(word) == Instruction(Opcode.NOP)

    def test_every_6bit_value_decodes_or_raises(self):
        legal = 0
        for op_field in range(64):
            word = op_field << 26
            if try_decode(word) is not None:
                legal += 1
        assert legal == len(Opcode)

    def test_decode_masks_to_32_bits(self):
        word = assemble_word(Instruction(Opcode.NOP))
        assert decode(word | (1 << 40)) == Instruction(Opcode.NOP)


class TestStructure:
    def test_r_and_i_partition_opcodes(self):
        assert R_TYPE | I_TYPE == frozenset(Opcode)
        assert not (R_TYPE & I_TYPE)

    def test_branches_are_i_type(self):
        assert BRANCHES <= I_TYPE

    def test_cycle_costs_cover_all_opcodes(self):
        for opcode in Opcode:
            assert isa.CYCLE_COST[opcode] >= 1

    def test_mul_div_cost_more(self):
        assert isa.CYCLE_COST[Opcode.MUL] > isa.CYCLE_COST[Opcode.ADD]
        assert isa.CYCLE_COST[Opcode.DIV] > isa.CYCLE_COST[Opcode.MUL]

    def test_bit_flip_in_opcode_field_can_be_illegal(self):
        # Flipping the top opcode bit of NOP (0x00 -> 0x20=ADDI legal),
        # but flipping bits of SYNC (0x14) to 0x34=CALL stays legal while
        # 0x15 does not exist -> IllegalOpcode. This mirrors what fault
        # injection relies on.
        word = assemble_word(Instruction(Opcode.SYNC))
        flipped = word ^ (1 << 26)  # opcode 0x15
        with pytest.raises(IllegalOpcode):
            decode(flipped)
