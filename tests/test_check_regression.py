"""The CI benchmark-regression gate (benchmarks/check_regression.py).

Exercises the script exactly as the CI benchmarks job invokes it
(a subprocess of the same interpreter), including the acceptance case:
a synthetically slowed-down BENCH JSON must exit nonzero.
"""

import json
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "check_regression.py"


def _write(directory, name, payload):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


def _run(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
    )


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "baselines", tmp_path / "fresh"


BASELINE = {
    "_meta": {"scale": 0.2},
    "n_experiments": 40,
    "n_workers": 2,
    "serial_seconds": 1.0,
    "parallel_seconds": 0.5,
    "speedup": 2.0,
    "rows_identical": True,
}


def test_identical_results_pass(dirs):
    baseline_dir, fresh_dir = dirs
    _write(baseline_dir, "e12_parallel", BASELINE)
    _write(fresh_dir, "e12_parallel", BASELINE)
    proc = _run(
        "--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir)
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "within tolerance" in proc.stdout


def test_degraded_speedup_fails(dirs):
    """The acceptance case: a synthetic slowed-down result exits nonzero."""
    baseline_dir, fresh_dir = dirs
    _write(baseline_dir, "e12_parallel", BASELINE)
    degraded = dict(BASELINE)
    degraded["speedup"] = 0.4      # collapse beyond the 50% band
    degraded["parallel_seconds"] = 2.5
    _write(fresh_dir, "e12_parallel", degraded)
    proc = _run(
        "--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir)
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "[FAIL] speedup" in proc.stdout


def test_wall_clock_gated_only_with_flag(dirs):
    baseline_dir, fresh_dir = dirs
    _write(baseline_dir, "e12_parallel", BASELINE)
    slower = dict(BASELINE)
    slower["parallel_seconds"] = 5.0  # 10x wall-clock slowdown only
    _write(fresh_dir, "e12_parallel", slower)
    # Not gated by default.
    proc = _run(
        "--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir)
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    # Gated with the documented override knob.
    proc = _run(
        "--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir),
        "--gate-seconds",
    )
    assert proc.returncode == 1
    assert "[FAIL] parallel_seconds" in proc.stdout


def test_scale_mismatch_fails_without_override(dirs):
    baseline_dir, fresh_dir = dirs
    _write(baseline_dir, "e12_parallel", BASELINE)
    rescaled = dict(BASELINE)
    rescaled["_meta"] = {"scale": 1.0}
    _write(fresh_dir, "e12_parallel", rescaled)
    proc = _run(
        "--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir)
    )
    assert proc.returncode == 1
    assert "scale mismatch" in proc.stdout
    proc = _run(
        "--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir),
        "--allow-scale-mismatch",
    )
    assert proc.returncode == 0


def test_config_drift_fails(dirs):
    baseline_dir, fresh_dir = dirs
    _write(baseline_dir, "e12_parallel", BASELINE)
    drifted = dict(BASELINE)
    drifted["n_experiments"] = 39
    _write(fresh_dir, "e12_parallel", drifted)
    proc = _run(
        "--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir)
    )
    assert proc.returncode == 1
    assert "must match exactly" in proc.stdout


def test_broken_invariant_fails(dirs):
    baseline_dir, fresh_dir = dirs
    _write(baseline_dir, "e12_parallel", BASELINE)
    broken = dict(BASELINE)
    broken["rows_identical"] = False
    _write(fresh_dir, "e12_parallel", broken)
    proc = _run(
        "--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir)
    )
    assert proc.returncode == 1
    assert "[FAIL] rows_identical" in proc.stdout


def test_missing_fresh_result_fails(dirs):
    baseline_dir, fresh_dir = dirs
    _write(baseline_dir, "e12_parallel", BASELINE)
    fresh_dir.mkdir()
    proc = _run(
        "--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir)
    )
    assert proc.returncode == 1
    assert "no fresh result" in proc.stdout


def test_committed_baselines_are_wellformed():
    """Every committed baseline parses and is stamped with its scale."""
    baseline_dir = REPO_ROOT / "benchmarks" / "baselines"
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    assert baselines, "no committed baselines"
    for path in baselines:
        data = json.loads(path.read_text())
        assert isinstance(data.get("_meta", {}).get("scale"), float), path
