"""JobQueue: priority ordering, per-tenant quotas, lifecycle."""

import pytest

from repro.service.jobs import JobQueue
from repro.service.schema import JobSpec
from repro.util.errors import ServiceError
from tests.conftest import make_campaign


def spec(**overrides):
    envelope = dict(campaign=make_campaign())
    envelope.update(overrides)
    return JobSpec(**envelope)


class TestOrdering:
    def test_higher_priority_runs_first(self):
        queue = JobQueue()
        low = queue.submit(spec(priority=0))
        high = queue.submit(spec(priority=5))
        mid = queue.submit(spec(priority=2))
        order = [queue.pop_runnable().job_id for _ in range(3)]
        assert order == [high.job_id, mid.job_id, low.job_id]

    def test_fifo_within_equal_priority(self):
        queue = JobQueue()
        first = queue.submit(spec(priority=1))
        second = queue.submit(spec(priority=1))
        third = queue.submit(spec(priority=1))
        order = [queue.pop_runnable().job_id for _ in range(3)]
        assert order == [first.job_id, second.job_id, third.job_id]

    def test_pop_empty_queue_returns_none(self):
        assert JobQueue().pop_runnable() is None

    def test_pop_moves_job_to_running(self):
        queue = JobQueue()
        record = queue.submit(spec())
        assert queue.pop_runnable().job_id == record.job_id
        assert queue.get(record.job_id).state == "running"
        assert queue.pop_runnable() is None

    def test_requeue_restores_original_position(self):
        queue = JobQueue()
        first = queue.submit(spec(priority=1))
        second = queue.submit(spec(priority=1))
        claimed = queue.pop_runnable()
        assert claimed.job_id == first.job_id
        queue.requeue(first.job_id)
        # Back at the head, not behind the later submission.
        assert queue.pop_runnable().job_id == first.job_id
        assert queue.pop_runnable().job_id == second.job_id


class TestQuotas:
    def test_tenant_quota_blocks_excess_submissions(self):
        queue = JobQueue(tenant_quota=2)
        queue.submit(spec(tenant="alice"))
        queue.submit(spec(tenant="alice"))
        with pytest.raises(ServiceError, match="quota"):
            queue.submit(spec(tenant="alice"))

    def test_quota_is_per_tenant(self):
        queue = JobQueue(tenant_quota=1)
        queue.submit(spec(tenant="alice"))
        queue.submit(spec(tenant="bob"))  # different tenant: fine

    def test_terminal_jobs_free_quota(self):
        queue = JobQueue(tenant_quota=1)
        record = queue.submit(spec(tenant="alice"))
        queue.pop_runnable()
        queue.finish(record.job_id, "finished")
        queue.submit(spec(tenant="alice"))  # quota freed

    def test_max_queue_bounds_backlog(self):
        queue = JobQueue(max_queue=2)
        queue.submit(spec())
        queue.submit(spec())
        with pytest.raises(ServiceError, match="queue full"):
            queue.submit(spec())

    def test_running_jobs_do_not_count_against_backlog(self):
        queue = JobQueue(max_queue=1)
        queue.submit(spec())
        queue.pop_runnable()
        queue.submit(spec())  # backlog is empty again


class TestLifecycle:
    def test_paused_job_is_withheld_from_scheduler(self):
        queue = JobQueue()
        record = queue.submit(spec())
        queue.pause(record.job_id)
        assert queue.pop_runnable() is None
        assert queue.get(record.job_id).state == "paused"

    def test_resume_returns_to_original_position(self):
        queue = JobQueue()
        first = queue.submit(spec(priority=1))
        second = queue.submit(spec(priority=1))
        queue.pause(first.job_id)
        queue.resume(first.job_id)
        assert queue.pop_runnable().job_id == first.job_id
        assert queue.pop_runnable().job_id == second.job_id

    def test_cancel_queued_job(self):
        queue = JobQueue()
        record = queue.submit(spec())
        queue.cancel(record.job_id)
        assert queue.get(record.job_id).state == "cancelled"
        assert queue.get(record.job_id).finished_at is not None
        assert queue.pop_runnable() is None

    def test_cancel_paused_job(self):
        queue = JobQueue()
        record = queue.submit(spec())
        queue.pause(record.job_id)
        queue.cancel(record.job_id)
        assert queue.get(record.job_id).state == "cancelled"

    def test_cancel_refuses_running_job(self):
        queue = JobQueue()
        record = queue.submit(spec())
        queue.pop_runnable()
        with pytest.raises(ServiceError, match="running"):
            queue.cancel(record.job_id)

    def test_cancel_refuses_terminal_job(self):
        queue = JobQueue()
        record = queue.submit(spec())
        queue.pop_runnable()
        queue.finish(record.job_id, "finished")
        with pytest.raises(ServiceError, match="already finished"):
            queue.cancel(record.job_id)

    def test_pause_refuses_running_job(self):
        queue = JobQueue()
        record = queue.submit(spec())
        queue.pop_runnable()
        with pytest.raises(ServiceError, match="only queued"):
            queue.pause(record.job_id)

    def test_resume_refuses_unpaused_job(self):
        queue = JobQueue()
        record = queue.submit(spec())
        with pytest.raises(ServiceError, match="not paused"):
            queue.resume(record.job_id)

    def test_finish_records_error_and_result(self):
        queue = JobQueue()
        record = queue.submit(spec())
        queue.pop_runnable()
        queue.finish(record.job_id, "failed", error="boom",
                     result={"n_done": 3})
        final = queue.get(record.job_id)
        assert final.state == "failed"
        assert final.error == "boom"
        assert final.result == {"n_done": 3}
        assert final.terminal and not final.active

    def test_finish_rejects_non_terminal_state(self):
        queue = JobQueue()
        record = queue.submit(spec())
        with pytest.raises(ServiceError, match="not a terminal"):
            queue.finish(record.job_id, "running")

    def test_unknown_job_raises(self):
        with pytest.raises(ServiceError, match="no such job"):
            JobQueue().get("job-999999")


class TestIntrospection:
    def test_jobs_filters_by_tenant_and_state(self):
        queue = JobQueue()
        a = queue.submit(spec(tenant="alice"))
        queue.submit(spec(tenant="bob"))
        assert [r.job_id for r in queue.jobs(tenant="alice")] == [a.job_id]
        queue.pause(a.job_id)
        assert [r.job_id for r in queue.jobs(state="paused")] == [a.job_id]

    def test_depth_counts_queued_only(self):
        queue = JobQueue()
        queue.submit(spec())
        record = queue.submit(spec())
        assert queue.depth() == 2
        queue.pause(record.job_id)
        assert queue.depth() == 1
