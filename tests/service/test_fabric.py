"""End-to-end fabric integration: the byte-identity contract.

Starts a real :class:`FabricServer` (sockets, scheduler, worker
processes) and drives it through :class:`FabricClient` — the acceptance
path of the campaign fabric: a mixed-priority two-campaign batch across
at least two workers whose result rows are byte-identical to local
serial execution.
"""

import multiprocessing

import pytest

from repro.core import CampaignController, create_target
from repro.db import GoofiDatabase
from repro.service import (
    FabricCampaignController,
    FabricClient,
    FabricServer,
    ServiceConfig,
)
from repro.service.schema import canonical_rows_payload
from tests.conftest import make_campaign

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fabric integration tests need the fork start method",
)


@pytest.fixture
def fabric(tmp_path):
    config = ServiceConfig(
        db_path=str(tmp_path / "fabric.db"),
        total_workers=4,
        start_method="fork",
        poll_seconds=0.02,
    )
    server = FabricServer(config).start()
    yield server
    server.stop()


def serial_rows(campaign):
    """The comparison leg: the same campaign run serially, locally."""
    with GoofiDatabase(":memory:") as db:
        controller = CampaignController(
            create_target(campaign.target_name), sink=db
        )
        controller.run(campaign)
        return canonical_rows_payload(db, campaign.campaign_name)


def test_mixed_priority_batch_is_byte_identical_to_serial(fabric):
    client = FabricClient(fabric.url())
    first = make_campaign(campaign_name="fabric-a", n_experiments=8)
    second = make_campaign(
        campaign_name="fabric-b", n_experiments=8, seed=4321
    )
    low = client.submit(
        {"campaign": first.to_dict(), "tenant": "alice",
         "priority": 0, "n_workers": 2}
    )
    high = client.submit(
        {"campaign": second.to_dict(), "tenant": "bob",
         "priority": 5, "n_workers": 2}
    )
    for record in (low, high):
        status = client.wait(record["job_id"], timeout=120)
        assert status["state"] == "finished"
        assert status["run_id"] is not None
        assert status["result"]["n_done"] == 8
        assert status["allocated_workers"] >= 1
    assert client.results(low["job_id"])["rows"] == serial_rows(first)
    assert client.results(high["job_id"])["rows"] == serial_rows(second)


def test_runmeta_rows_carry_job_and_tenant(fabric, tmp_path):
    client = FabricClient(fabric.url())
    campaign = make_campaign(campaign_name="fabric-tags", n_experiments=4)
    record = client.submit(
        {"campaign": campaign.to_dict(), "tenant": "carol", "n_workers": 2}
    )
    status = client.wait(record["job_id"], timeout=120)
    assert status["state"] == "finished"
    with GoofiDatabase(str(tmp_path / "fabric.db")) as db:
        run = db.load_run(status["run_id"])
        assert run.job_id == record["job_id"]
        assert run.tenant == "carol"
        job = db.load_job(record["job_id"])
        assert job["state"] == "finished"
        assert job["run_id"] == status["run_id"]


def test_fabric_controller_submits_instead_of_executing(fabric):
    campaign = make_campaign(campaign_name="fabric-ctrl", n_experiments=6)
    snapshots = []
    controller = FabricCampaignController(
        FabricClient(fabric.url()), tenant="dave", n_workers=2,
        poll_seconds=0.05,
    )
    controller.add_listener(lambda progress: snapshots.append(progress.state))
    status = controller.run(campaign)
    assert status["state"] == "finished"
    assert controller.progress.state == "finished"
    assert controller.progress.n_done == 6
    assert controller.run_id == status["run_id"]
    assert snapshots  # listeners saw remote progress mirrored locally
    # Byte identity holds through the controller path too.
    rows = FabricClient(fabric.url()).results(controller.job_id)["rows"]
    assert rows == serial_rows(campaign)


def test_golden_cache_dedupes_reference_runs(tmp_path):
    config = ServiceConfig(
        db_path=str(tmp_path / "golden.db"),
        total_workers=2,
        start_method="fork",
        poll_seconds=0.02,
        golden_cache_dir=str(tmp_path / "golden-cache"),
    )
    with FabricServer(config).start() as server:
        client = FabricClient(server.url())
        campaign = make_campaign(
            campaign_name="fabric-golden", n_experiments=4
        )
        for _ in range(2):
            record = client.submit({"campaign": campaign.to_dict()})
            assert (
                client.wait(record["job_id"], timeout=120)["state"]
                == "finished"
            )
        cache_dir = tmp_path / "golden-cache"
        # One cached golden run, keyed by the shared config hash.
        assert len(list(cache_dir.glob("*"))) == 1
