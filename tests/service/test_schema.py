"""Wire contract: JobSpec round trips, ServiceConfig validation, fleet."""

import pytest

from repro.service.fleet import WorkerFleet
from repro.service.schema import JobSpec, ServiceConfig
from repro.util.errors import ServiceError
from tests.conftest import make_campaign


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(
            campaign=make_campaign(), tenant="alice", priority=3,
            n_workers=4, use_golden_cache=False,
        )
        rebuilt = JobSpec.from_dict(spec.to_dict())
        assert rebuilt.tenant == "alice"
        assert rebuilt.priority == 3
        assert rebuilt.n_workers == 4
        assert rebuilt.use_golden_cache is False
        assert rebuilt.campaign.to_dict() == spec.campaign.to_dict()

    def test_bare_campaign_spec_submits_with_defaults(self):
        # The exact document `goofi lint --spec` validates is accepted.
        spec = JobSpec.from_dict(make_campaign().to_dict())
        assert spec.tenant == "default"
        assert spec.priority == 0
        assert spec.n_workers == 1

    def test_invalid_campaign_is_a_service_error(self):
        with pytest.raises(ServiceError, match="invalid campaign"):
            JobSpec.from_dict({"campaign": {"campaign_name": "x"}})

    def test_non_object_body_rejected(self):
        with pytest.raises(ServiceError, match="JSON object"):
            JobSpec.from_dict(["not", "a", "job"])

    def test_validate_rejects_bad_envelope(self):
        with pytest.raises(ServiceError, match="n_workers"):
            JobSpec(campaign=make_campaign(), n_workers=0).validate()
        with pytest.raises(ServiceError, match="tenant"):
            JobSpec(campaign=make_campaign(), tenant="").validate()


class TestServiceConfig:
    def test_rejects_memory_database(self):
        with pytest.raises(ServiceError, match="file database"):
            ServiceConfig(db_path=":memory:").validate()

    def test_rejects_bad_knobs(self):
        with pytest.raises(ServiceError):
            ServiceConfig(db_path="x.db", total_workers=0).validate()
        with pytest.raises(ServiceError):
            ServiceConfig(db_path="x.db", poll_seconds=0).validate()


class TestWorkerFleet:
    def test_partial_grant_when_nearly_saturated(self):
        fleet = WorkerFleet(4)
        assert fleet.try_acquire(3) == 3
        # 1 slot left: the next job starts smaller instead of waiting.
        assert fleet.try_acquire(4) == 1
        assert fleet.try_acquire(2) == 0
        fleet.release(3)
        assert fleet.free == 3

    def test_release_never_exceeds_total(self):
        fleet = WorkerFleet(2)
        fleet.release(5)
        assert fleet.free == 2

    def test_snapshot(self):
        fleet = WorkerFleet(3)
        fleet.try_acquire(2)
        assert fleet.snapshot() == {
            "total_workers": 3,
            "free_workers": 1,
            "busy_workers": 2,
        }

    def test_zero_request_rejected(self):
        with pytest.raises(ServiceError):
            WorkerFleet(2).try_acquire(0)
