"""FabricClient transport behaviour: retry policy and error mapping."""

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.service.client import FabricClient
from repro.util.errors import ServiceError


class FakeResponse(io.BytesIO):
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None


def test_retries_connection_refused_then_succeeds(monkeypatch):
    """The server may still be binding when the first request goes out:
    connection refusals retry with backoff instead of failing."""
    calls = []

    def fake_urlopen(request, timeout=None):
        calls.append(request.full_url)
        if len(calls) < 3:
            raise urllib.error.URLError(ConnectionRefusedError(111))
        return FakeResponse(json.dumps({"service": "goofi-fabric"}).encode())

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    monkeypatch.setattr("time.sleep", lambda seconds: None)
    client = FabricClient("http://127.0.0.1:1", retries=5)
    assert client.info() == {"service": "goofi-fabric"}
    assert len(calls) == 3


def test_gives_up_after_retry_budget(monkeypatch):
    attempts = []

    def fake_urlopen(request, timeout=None):
        attempts.append(1)
        raise urllib.error.URLError(ConnectionRefusedError(111))

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    monkeypatch.setattr("time.sleep", lambda seconds: None)
    client = FabricClient("http://127.0.0.1:1", retries=2)
    with pytest.raises(ServiceError, match="unreachable"):
        client.info()
    assert len(attempts) == 3  # first try + 2 retries


def test_http_errors_do_not_retry(monkeypatch):
    """HTTPError subclasses URLError; the server answered, so the error
    surfaces immediately with the JSON detail extracted."""
    calls = []

    def fake_urlopen(request, timeout=None):
        calls.append(1)
        raise urllib.error.HTTPError(
            request.full_url, 404, "Not Found", {},
            io.BytesIO(json.dumps({"error": "no such job: job-9"}).encode()),
        )

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    client = FabricClient("http://127.0.0.1:1", retries=5)
    with pytest.raises(ServiceError, match="no such job: job-9"):
        client.status("job-9")
    assert len(calls) == 1


def test_non_refused_url_errors_do_not_retry(monkeypatch):
    calls = []

    def fake_urlopen(request, timeout=None):
        calls.append(1)
        raise urllib.error.URLError(OSError("no route to host"))

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    client = FabricClient("http://127.0.0.1:1", retries=5)
    with pytest.raises(ServiceError, match="unreachable"):
        client.info()
    assert len(calls) == 1


def test_real_connection_refused_raises(unused_tcp_port=None):
    # No listener on port 1: the refusal is real, the budget is small.
    client = FabricClient(
        "http://127.0.0.1:1", retries=1, retry_seconds=0.01
    )
    with pytest.raises(ServiceError, match="unreachable"):
        client.info()
