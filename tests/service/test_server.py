"""FabricServer routing and job lifecycle over the REST surface.

These tests drive :meth:`FabricServer._dispatch` directly — the full
request pipeline minus the socket — so routing, status codes and the
queue-level lifecycle are exercised without starting the scheduler
(submitted jobs deterministically stay ``queued``). The socket path and
real execution are covered by ``test_fabric.py``.
"""

import json

import pytest

from repro.db import GoofiDatabase
from repro.service import FabricServer, ServiceConfig
from tests.conftest import make_campaign


@pytest.fixture
def server(tmp_path):
    config = ServiceConfig(
        db_path=str(tmp_path / "fabric.db"), total_workers=2
    )
    fabric = FabricServer(config)
    yield fabric
    fabric.stop()


def call(server, method, path, payload=None):
    body = json.dumps(payload).encode() if payload is not None else b""
    status, content_type, text = server._dispatch(method, path, body)
    parsed = json.loads(text) if "json" in content_type else text
    return status, parsed


def submit(server, **overrides):
    payload = dict(campaign=make_campaign().to_dict())
    payload.update(overrides)
    status, body = call(server, "POST", "/jobs", payload)
    assert status == 201
    return body


class TestRouting:
    def test_info(self, server):
        status, body = call(server, "GET", "/")
        assert status == 200
        assert body["service"] == "goofi-fabric"
        assert body["fleet"]["total_workers"] == 2

    def test_healthz(self, server):
        submit(server)
        status, body = call(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["jobs"] == {"queued": 1}

    def test_metrics_is_openmetrics(self, server):
        status, content_type, text = server._dispatch(
            "GET", "/metrics", b""
        )
        assert status == 200
        assert "openmetrics" in content_type
        assert text.rstrip().endswith("# EOF")

    def test_unknown_endpoint_404(self, server):
        status, body = call(server, "GET", "/nope")
        assert status == 404

    def test_unknown_job_404(self, server):
        status, body = call(server, "GET", "/jobs/job-999999")
        assert status == 404
        assert "no such job" in body["error"]

    def test_method_not_allowed(self, server):
        status, _ = call(server, "DELETE", "/jobs")
        assert status == 405

    def test_bad_json_body_400(self, server):
        status, body = server._dispatch("POST", "/jobs", b"{nope")[::2]
        assert status == 400
        assert "not JSON" in json.loads(body)["error"]


class TestSubmission:
    def test_submit_returns_record(self, server):
        record = submit(server, tenant="alice", priority=2)
        assert record["job_id"] == "job-000001"
        assert record["state"] == "queued"
        assert record["tenant"] == "alice"
        assert record["priority"] == 2

    def test_submit_persists_job_row(self, server, tmp_path):
        record = submit(server)
        with GoofiDatabase(str(tmp_path / "fabric.db")) as db:
            row = db.load_job(record["job_id"])
        assert row["state"] == "queued"
        assert row["spec"]["campaign"]["campaign_name"] == "test-campaign"

    def test_quota_exhaustion_400(self, tmp_path):
        config = ServiceConfig(
            db_path=str(tmp_path / "q.db"), total_workers=2, tenant_quota=1
        )
        server = FabricServer(config)
        try:
            submit(server)
            payload = {"campaign": make_campaign().to_dict()}
            status, body = call(server, "POST", "/jobs", payload)
            assert status == 400
            assert "quota" in body["error"]
        finally:
            server.stop()

    def test_list_jobs_filters(self, server):
        submit(server, tenant="alice")
        submit(server, tenant="bob")
        status, body = call(server, "GET", "/jobs?tenant=alice")
        assert status == 200
        assert [job["tenant"] for job in body["jobs"]] == ["alice"]


class TestLifecycle:
    def test_pause_resume_cancel_queued_job(self, server):
        record = submit(server)
        job_id = record["job_id"]
        status, body = call(server, "POST", f"/jobs/{job_id}/pause")
        assert (status, body["state"]) == (200, "paused")
        status, body = call(server, "POST", f"/jobs/{job_id}/resume")
        assert (status, body["state"]) == (200, "queued")
        status, body = call(server, "POST", f"/jobs/{job_id}/cancel")
        assert (status, body["state"]) == (200, "cancelled")

    def test_illegal_transition_400(self, server):
        record = submit(server)
        job_id = record["job_id"]
        status, body = call(server, "POST", f"/jobs/{job_id}/resume")
        assert status == 400
        assert "not paused" in body["error"]

    def test_results_require_finished_job(self, server):
        record = submit(server)
        status, body = call(
            server, "GET", f"/jobs/{record['job_id']}/results"
        )
        assert status == 400
        assert "finished" in body["error"]

    def test_cancel_is_persisted(self, server, tmp_path):
        record = submit(server)
        call(server, "POST", f"/jobs/{record['job_id']}/cancel")
        with GoofiDatabase(str(tmp_path / "fabric.db")) as db:
            assert db.load_job(record["job_id"])["state"] == "cancelled"
