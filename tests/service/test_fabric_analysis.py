"""The fabric's ``/jobs/<id>/analysis`` endpoint and the live
``goofi analyze`` acceptance path: analytics over a job while the
campaign keeps completing, with CLI and endpoint payloads identical."""

import json
import multiprocessing
import time

import pytest

from repro.service import FabricClient, FabricServer, ServiceConfig
from repro.ui.app import main as goofi_main
from repro.util.errors import ServiceError
from tests.conftest import make_campaign

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fabric integration tests need the fork start method",
)


@pytest.fixture
def fabric(tmp_path):
    config = ServiceConfig(
        db_path=str(tmp_path / "fabric.db"),
        total_workers=2,
        start_method="fork",
        poll_seconds=0.02,
    )
    server = FabricServer(config).start()
    yield server
    server.stop()


def test_analysis_of_finished_job_matches_cli_json(fabric, capsys):
    client = FabricClient(fabric.url())
    campaign = make_campaign(campaign_name="fabric-an", n_experiments=8)
    record = client.submit({"campaign": campaign.to_dict(), "n_workers": 2})
    status = client.wait(record["job_id"], timeout=120)
    assert status["state"] == "finished"

    payload = client.analysis(record["job_id"])
    assert payload["job_id"] == record["job_id"]
    assert payload["campaign_name"] == "fabric-an"
    analysis = payload["analysis"]
    assert analysis["total"] == 8
    assert analysis["stopping"]["trials"] == analysis["outcomes"][
        "effective"
    ]["count"]

    # The acceptance contract: the endpoint payload and the CLI's
    # --json report over the same database state are identical.
    assert goofi_main([
        "analyze", "--db", fabric.config.db_path,
        "--campaign", "fabric-an", "--json",
    ]) == 0
    cli_report = json.loads(capsys.readouterr().out)
    assert cli_report == analysis


def test_analysis_while_job_is_live(fabric):
    """Analyze a paused (mid-flight) job, then let it finish — the
    read-only analytics pass must neither block nor be blocked by the
    job's writer."""
    client = FabricClient(fabric.url())
    campaign = make_campaign(campaign_name="fabric-live", n_experiments=24)
    record = client.submit({"campaign": campaign.to_dict(), "n_workers": 1})
    job_id = record["job_id"]

    deadline = time.monotonic() + 60
    status = client.status(job_id)
    while status["state"] == "queued" and time.monotonic() < deadline:
        time.sleep(0.02)
        status = client.status(job_id)
    assert status["state"] in ("running", "finished")

    # Immediately after start the reference run may not have committed
    # yet — the endpoint answers with a retryable client error until it
    # has (pausing only afterwards: a pause taken before the reference
    # lands would freeze the campaign in an unanalyzable state).
    payload = None
    while payload is None and time.monotonic() < deadline:
        try:
            payload = client.analysis(job_id)
        except ServiceError as exc:
            assert "not analyzable yet" in str(exc)
            time.sleep(0.05)
    assert payload is not None
    assert payload["state"] in ("running", "finished")
    assert 0 <= payload["analysis"]["total"] <= 24

    if client.status(job_id)["state"] == "running":
        client.pause(job_id)
        # Rows committed so far, classified mid-campaign while the job
        # is frozen.
        frozen = client.analysis(job_id)
        assert 0 <= frozen["analysis"]["total"] <= 24
        client.resume(job_id)

    final = client.wait(job_id, timeout=120)
    assert final["state"] == "finished"
    assert final["result"]["n_done"] == 24
    # And the campaign completed to the full count afterwards.
    assert client.analysis(job_id)["analysis"]["total"] == 24


def test_analysis_parameters_flow_through(fabric):
    client = FabricClient(fabric.url())
    campaign = make_campaign(campaign_name="fabric-eps", n_experiments=6)
    record = client.submit({"campaign": campaign.to_dict()})
    client.wait(record["job_id"], timeout=120)
    payload = client.analysis(record["job_id"], confidence=0.99, epsilon=0.2)
    stopping = payload["analysis"]["stopping"]
    assert stopping["confidence"] == 0.99
    assert stopping["target_half_width"] == 0.2


def test_analysis_of_unknown_job_is_a_client_error(fabric):
    client = FabricClient(fabric.url())
    with pytest.raises(ServiceError):
        client.analysis("job-999999")
