"""Unit tests for the campaign random source."""

import pytest

from repro.util.rng import CampaignRandom


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = CampaignRandom(99)
        b = CampaignRandom(99)
        assert [a.randint(0, 1000) for _ in range(20)] == [
            b.randint(0, 1000) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = CampaignRandom(1)
        b = CampaignRandom(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]


class TestSubstreams:
    def test_substream_reproducible(self):
        rng = CampaignRandom(7)
        first = rng.substream(3).random()
        again = CampaignRandom(7).substream(3).random()
        assert first == again

    def test_substream_independent_of_draw_order(self):
        rng = CampaignRandom(7)
        # Drawing from substream 0 must not perturb substream 1.
        s1_direct = CampaignRandom(7).substream(1).random()
        rng.substream(0).random()
        assert rng.substream(1).random() == s1_direct

    def test_substreams_differ_by_index(self):
        rng = CampaignRandom(7)
        assert rng.substream(0).random() != rng.substream(1).random()


class TestPickInjection:
    def test_time_in_range(self):
        rng = CampaignRandom(5).substream(0)
        for _ in range(50):
            time, locations = CampaignRandom.pick_injection(rng, 10, 100)
            assert 1 <= time <= 100
            assert len(locations) == 1
            assert 0 <= locations[0] < 10

    def test_multiplicity_without_replacement(self):
        rng = CampaignRandom(5).substream(1)
        _, locations = CampaignRandom.pick_injection(rng, 8, 10, multiplicity=8)
        assert sorted(locations) == list(range(8))

    def test_multiplicity_clamped_to_locations(self):
        rng = CampaignRandom(5).substream(2)
        _, locations = CampaignRandom.pick_injection(rng, 3, 10, multiplicity=9)
        assert len(locations) == 3

    def test_invalid_args_rejected(self):
        rng = CampaignRandom(5).substream(0)
        with pytest.raises(ValueError):
            CampaignRandom.pick_injection(rng, 0, 10)
        with pytest.raises(ValueError):
            CampaignRandom.pick_injection(rng, 5, 0)
