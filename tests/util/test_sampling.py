"""Unit tests for deterministic cartesian-product sampling."""

import pytest

from repro.util.sampling import iter_pairs, pair_count


class TestPairCount:
    def test_uncapped(self):
        assert pair_count([1, 2, 3], "ab") == 6

    def test_capped(self):
        assert pair_count([1, 2, 3], "ab", max_samples=4) == 4

    def test_cap_larger_than_product(self):
        assert pair_count([1, 2], "ab", max_samples=100) == 4

    def test_empty(self):
        assert pair_count([], "ab") == 0
        assert pair_count([], "ab", max_samples=5) == 0


class TestIterPairs:
    def test_full_enumeration(self):
        pairs = list(iter_pairs([1, 2], "ab"))
        assert pairs == [(1, "a"), (1, "b"), (2, "a"), (2, "b")]

    def test_sample_size_matches_pair_count(self):
        left, right = list(range(40)), list(range(40))
        pairs = list(iter_pairs(left, right, max_samples=17))
        assert len(pairs) == pair_count(left, right, 17) == 17

    def test_sample_is_deterministic(self):
        left, right = list(range(40)), list(range(40))
        a = list(iter_pairs(left, right, max_samples=17))
        b = list(iter_pairs(left, right, max_samples=17))
        assert a == b

    def test_sampled_pairs_are_distinct_and_valid(self):
        left, right = list(range(25)), list(range(25))
        pairs = list(iter_pairs(left, right, max_samples=100))
        assert len(set(pairs)) == 100
        assert all(a in left and b in right for a, b in pairs)

    def test_empty_product(self):
        assert list(iter_pairs([], [1, 2])) == []
        assert list(iter_pairs([1], [], max_samples=5)) == []

    def test_nonpositive_cap_rejected(self):
        with pytest.raises(ValueError):
            list(iter_pairs([1], [2], max_samples=0))
