"""Unit tests for repro.util.bits."""

import pytest

from repro.util import bits


class TestBitGetSetFlip:
    def test_get_low_bit(self):
        assert bits.bit_get(0b1010, 1) == 1
        assert bits.bit_get(0b1010, 0) == 0

    def test_get_high_bit(self):
        assert bits.bit_get(1 << 31, 31) == 1

    def test_set_to_one(self):
        assert bits.bit_set(0, 5, 1) == 32

    def test_set_to_zero(self):
        assert bits.bit_set(0xFF, 3, 0) == 0xF7

    def test_set_idempotent(self):
        assert bits.bit_set(0xAB, 1, 1) == bits.bit_set(bits.bit_set(0xAB, 1, 1), 1, 1)

    def test_flip_twice_restores(self):
        value = 0xDEADBEEF
        assert bits.bit_flip(bits.bit_flip(value, 17), 17) == value

    def test_flip_is_xor(self):
        assert bits.bit_flip(0, 4) == 16
        assert bits.bit_flip(16, 4) == 0

    def test_negative_bit_index_rejected(self):
        with pytest.raises(ValueError):
            bits.bit_get(1, -1)
        with pytest.raises(ValueError):
            bits.bit_set(1, -2, 0)
        with pytest.raises(ValueError):
            bits.bit_flip(1, -3)

    def test_bad_bit_value_rejected(self):
        with pytest.raises(ValueError):
            bits.bit_set(0, 0, 2)


class TestBitListConversions:
    def test_round_trip(self):
        value = 0b1011001
        assert bits.bits_to_int(bits.int_to_bits(value, 8)) == value

    def test_lsb_first(self):
        assert bits.int_to_bits(0b01, 2) == [1, 0]

    def test_width_zero(self):
        assert bits.int_to_bits(0, 0) == []
        assert bits.bits_to_int([]) == 0

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            bits.int_to_bits(4, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits.int_to_bits(-1, 4)

    def test_non_bit_rejected(self):
        with pytest.raises(ValueError):
            bits.bits_to_int([0, 2])


class TestParityPopcount:
    def test_popcount(self):
        assert bits.popcount(0) == 0
        assert bits.popcount(0xFF) == 8
        assert bits.popcount(0b1010101) == 4

    def test_parity_even_popcount_is_zero(self):
        assert bits.parity(0b11) == 0

    def test_parity_odd_popcount_is_one(self):
        assert bits.parity(0b111) == 1

    def test_single_flip_changes_parity(self):
        value = 0x12345678
        for bit in (0, 7, 31):
            assert bits.parity(bits.bit_flip(value, bit)) != bits.parity(value)


class TestSignConversions:
    def test_sign_extend_positive(self):
        assert bits.sign_extend(0x7F, 8) == 127

    def test_sign_extend_negative(self):
        assert bits.sign_extend(0xFF, 8) == -1
        assert bits.sign_extend(0x80, 8) == -128

    def test_to_unsigned_wraps(self):
        assert bits.to_unsigned(-1) == 0xFFFFFFFF
        assert bits.to_unsigned(-2, 8) == 0xFE

    def test_round_trip_signed(self):
        for value in (-(2**31), -1, 0, 1, 2**31 - 1):
            assert bits.to_signed(bits.to_unsigned(value)) == value

    def test_mask(self):
        assert bits.mask(0) == 0
        assert bits.mask(4) == 0xF
        assert bits.mask(32) == 0xFFFFFFFF
