"""Property-based tests for scan-chain invariants."""

from hypothesis import given, settings, strategies as st

from repro.thor.assembler import assemble
from repro.thor.cpu import Cpu
from repro.thor.scanchain import build_scan_chains


def make_cpu(steps: int) -> Cpu:
    cpu = Cpu()
    program = assemble(
        "start:\n"
        "  ldi r1, 10\n"
        "  ldi r2, buf\n"
        "loop:\n"
        "  st  r1, [r2+0]\n"
        "  ld  r3, [r2+0]\n"
        "  addi r2, r2, 1\n"
        "  subi r1, r1, 1\n"
        "  cmpi r1, 0\n"
        "  bne loop\n"
        "  halt\n"
        "buf: .space 16\n"
    )
    cpu.memory.load_image(program.words)
    cpu.reset(entry=program.entry)
    for _ in range(steps):
        if cpu.halted:
            break
        cpu.step()
    return cpu


class TestScanInvariants:
    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_read_is_stable(self, steps):
        """Reading the chain twice without stepping yields identical bits
        (observation does not disturb state)."""
        cpu = make_cpu(steps)
        chain = build_scan_chains(cpu)["internal"]
        assert chain.read() == chain.read()

    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_read_write_read_is_identity(self, steps):
        """A full read-modify-nothing-write cycle is state-preserving at
        any stop point — required for Figure 2's read/inject/write flow
        to only change the injected bits."""
        cpu = make_cpu(steps)
        chain = build_scan_chains(cpu)["internal"]
        bits = chain.read()
        chain.write(bits)
        assert chain.read() == bits

    @given(
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_single_flip_touches_exactly_one_writable_cell(self, steps, seed):
        import random

        cpu = make_cpu(steps)
        chain = build_scan_chains(cpu)["internal"]
        bits = chain.read()
        rng = random.Random(seed)
        writable_offsets = [
            chain.bit_offset(cell.path, bit)
            for cell in chain.cells()
            if not cell.read_only
            for bit in range(cell.width)
        ]
        offset = rng.choice(writable_offsets)
        bits[offset] ^= 1
        chain.write(bits)
        after = chain.read()
        diff = [i for i in range(chain.total_bits) if after[i] != bits[i]]
        # Everything we wrote must now read back exactly (no hidden
        # coupling between cells).
        assert diff == []
