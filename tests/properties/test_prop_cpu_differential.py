"""Differential testing: the CPU's ALU datapath vs an independent oracle.

Hypothesis generates random straight-line ALU programs and random initial
register files; the program runs on the real CPU (through memory, fetch,
decode, caches) and on a 20-line Python oracle. Final register files must
match bit for bit. This catches exactly the class of bug a fault-injection
substrate cannot afford: silently wrong instruction semantics, which would
masquerade as injected-fault effects.
"""

from hypothesis import given, settings, strategies as st

from repro.thor.cpu import Cpu
from repro.thor.isa import Instruction, Opcode, assemble_word
from repro.util.bits import to_signed, to_unsigned

_ALU_R = [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR,
          Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.SRA, Opcode.NOT,
          Opcode.MOV]
_ALU_I = [Opcode.ADDI, Opcode.SUBI, Opcode.MULI, Opcode.ANDI, Opcode.ORI,
          Opcode.XORI, Opcode.SHLI, Opcode.SHRI, Opcode.LDI, Opcode.LUI]

registers = st.integers(min_value=0, max_value=15)


@st.composite
def alu_instruction(draw):
    if draw(st.booleans()):
        opcode = draw(st.sampled_from(_ALU_R))
        return Instruction(
            opcode,
            rd=draw(registers),
            rs1=draw(registers),
            rs2=draw(registers),
        )
    opcode = draw(st.sampled_from(_ALU_I))
    if opcode is Opcode.LUI:
        imm = draw(st.integers(min_value=0, max_value=(1 << 18) - 1))
    else:
        imm = draw(st.integers(min_value=-(1 << 17), max_value=(1 << 17) - 1))
    return Instruction(opcode, rd=draw(registers), rs1=draw(registers),
                       imm=imm)


def oracle_step(regs, instr):
    """Independent semantics of the ALU subset."""
    op = instr.opcode
    a = regs[instr.rs1]
    b = regs[instr.rs2]
    imm = instr.imm

    if op is Opcode.ADD:
        value = a + b
    elif op is Opcode.SUB:
        value = a - b
    elif op is Opcode.MUL:
        value = to_signed(a) * to_signed(b)
    elif op is Opcode.AND:
        value = a & b
    elif op is Opcode.OR:
        value = a | b
    elif op is Opcode.XOR:
        value = a ^ b
    elif op is Opcode.SHL:
        value = a << (b & 31)
    elif op is Opcode.SHR:
        value = a >> (b & 31)
    elif op is Opcode.SRA:
        value = to_signed(a) >> (b & 31)
    elif op is Opcode.NOT:
        value = ~a
    elif op is Opcode.MOV:
        value = a
    elif op is Opcode.ADDI:
        value = a + to_unsigned(imm)
    elif op is Opcode.SUBI:
        value = a - to_unsigned(imm)
    elif op is Opcode.MULI:
        value = to_signed(a) * imm
    elif op is Opcode.ANDI:
        value = a & to_unsigned(imm)
    elif op is Opcode.ORI:
        value = a | to_unsigned(imm)
    elif op is Opcode.XORI:
        value = a ^ to_unsigned(imm)
    elif op is Opcode.SHLI:
        value = a << (imm & 31)
    elif op is Opcode.SHRI:
        value = a >> (imm & 31)
    elif op is Opcode.LDI:
        value = to_unsigned(imm)
    elif op is Opcode.LUI:
        value = imm << 14
    else:  # pragma: no cover
        raise AssertionError(op)
    regs[instr.rd] = to_unsigned(value)


class TestCpuVsOracle:
    @given(
        st.lists(alu_instruction(), min_size=1, max_size=30),
        st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=16,
            max_size=16,
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_register_file_matches_oracle(self, program, initial_regs):
        cpu = Cpu()
        for address, instr in enumerate(program):
            cpu.memory.poke(0x100 + address, assemble_word(instr))
        cpu.memory.poke(0x100 + len(program),
                        assemble_word(Instruction(Opcode.HALT)))
        cpu.reset(entry=0x100)
        for index, value in enumerate(initial_regs):
            cpu.regs.write(index, value)

        oracle_regs = list(initial_regs)
        for instr in program:
            oracle_step(oracle_regs, instr)

        while not cpu.halted:
            event = cpu.step()
            assert event is None or event.kind == "halt", (
                f"unexpected event {event} in a pure ALU program"
            )

        assert cpu.regs.snapshot() == oracle_regs
