"""Property tests for campaign set-up operations and location selection."""

from hypothesis import given, settings, strategies as st

from repro.core.campaign import CampaignData
from repro.core.locations import LocationCell, LocationSpace

names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


@st.composite
def location_spaces(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    cells = []
    seen = set()
    for i in range(n):
        path = f"block{draw(st.integers(0, 3))}.cell{i}"
        if path in seen:
            continue
        seen.add(path)
        cells.append(
            LocationCell(
                space="scan:internal",
                path=path,
                width=draw(st.integers(min_value=1, max_value=32)),
                read_only=draw(st.booleans()),
            )
        )
    if not any(not cell.read_only for cell in cells):
        cells.append(LocationCell("scan:internal", "anchor", 8))
    return LocationSpace(cells)


class TestLocationSpaceProperties:
    @given(location_spaces())
    @settings(max_examples=60)
    def test_expand_counts_match_widths(self, space):
        locations = space.expand(["scan:internal/*"])
        writable = [cell for cell in space.cells() if not cell.read_only]
        assert len(locations) == sum(cell.width for cell in writable)

    @given(location_spaces())
    @settings(max_examples=60)
    def test_expanded_locations_unique(self, space):
        locations = space.expand(["scan:internal/*"])
        assert len({loc.key() for loc in locations}) == len(locations)

    @given(location_spaces())
    @settings(max_examples=60)
    def test_tree_leafs_equal_cells(self, space):
        assert len(space.tree().leaf_cells()) == len(space.cells())

    @given(location_spaces())
    @settings(max_examples=40)
    def test_subset_patterns_select_subsets(self, space):
        all_cells = space.select_cells(["scan:internal/*"])
        block0 = space.select_cells(["scan:internal/block0.*"])
        assert set(c.full_path for c in block0) <= set(
            c.full_path for c in all_cells
        )


@st.composite
def mergeable_campaigns(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    campaigns = []
    pattern_pool = [
        "scan:internal/cpu.regfile.*",
        "scan:internal/cpu.psr",
        "scan:internal/dcache.*",
        "scan:internal/icache.*",
    ]
    for i in range(count):
        patterns = draw(
            st.lists(st.sampled_from(pattern_pool), min_size=1, max_size=3)
        )
        campaigns.append(
            CampaignData(
                campaign_name=f"m{i}-{draw(names)}",
                location_patterns=list(dict.fromkeys(patterns)),
                n_experiments=draw(st.integers(min_value=1, max_value=500)),
                seed=draw(st.integers(min_value=0, max_value=999)),
            )
        )
    return campaigns


class TestMergeProperties:
    @given(mergeable_campaigns())
    @settings(max_examples=60)
    def test_merge_sums_experiments(self, campaigns):
        merged = CampaignData.merge("merged", campaigns)
        assert merged.n_experiments == sum(c.n_experiments for c in campaigns)

    @given(mergeable_campaigns())
    @settings(max_examples=60)
    def test_merge_unions_patterns_without_duplicates(self, campaigns):
        merged = CampaignData.merge("merged", campaigns)
        expected = []
        for campaign in campaigns:
            for pattern in campaign.location_patterns:
                if pattern not in expected:
                    expected.append(pattern)
        assert merged.location_patterns == expected

    @given(mergeable_campaigns())
    @settings(max_examples=40)
    def test_merge_result_is_serializable(self, campaigns):
        merged = CampaignData.merge("merged", campaigns)
        assert CampaignData.from_json(merged.to_json()).to_dict() == (
            merged.to_dict()
        )
