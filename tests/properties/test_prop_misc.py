"""Property-based tests: statistics, codecs and campaign serialization."""

import json

from hypothesis import given, settings, strategies as st

from repro.analysis.coverage import wilson_interval
from repro.core.campaign import CampaignData, FaultModelSpec
from repro.core.triggers import TriggerSpec
from repro.db.statevector import decode_state_payload, encode_state_payload

cell_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz.:/0123456789", min_size=1, max_size=24
)
state_vectors = st.dictionaries(
    cell_names, st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=12
)


class TestWilsonProperties:
    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=0, max_value=500))
    def test_interval_valid(self, successes, extra):
        trials = successes + extra
        lo, hi = wilson_interval(successes, trials)
        assert 0.0 <= lo <= hi <= 1.0
        if trials:
            assert lo <= successes / trials <= hi

    @given(st.integers(min_value=1, max_value=200))
    def test_symmetry(self, trials):
        """coverage(k of n) and coverage(n-k of n) mirror around 0.5."""
        k = trials // 3
        lo1, hi1 = wilson_interval(k, trials)
        lo2, hi2 = wilson_interval(trials - k, trials)
        assert abs(lo1 - (1 - hi2)) < 1e-9
        assert abs(hi1 - (1 - lo2)) < 1e-9


class TestStateVectorCodecProperties:
    @given(state_vectors, st.lists(state_vectors, max_size=5))
    @settings(max_examples=50)
    def test_round_trip(self, final, detail):
        payload = decode_state_payload(encode_state_payload(final, detail))
        assert payload["final"] == final
        assert payload["detail"] == detail


@st.composite
def campaigns(draw):
    technique = draw(st.sampled_from(CampaignData.VALID_TECHNIQUES))
    patterns = {
        "scifi": ["scan:internal/cpu.*"],
        "swifi-pre": ["memory:code/*"],
        "swifi-runtime": ["swreg/cpu.regfile.*"],
        "simfi": ["scan:internal/*"],
        "pinlevel": ["scan:boundary/pins.data_bus"],
    }[technique]
    return CampaignData(
        campaign_name=draw(st.text(min_size=1, max_size=16,
                                   alphabet="abcdefgh-123")),
        technique=technique,
        location_patterns=patterns,
        n_experiments=draw(st.integers(min_value=1, max_value=10**6)),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        fault_model=FaultModelSpec(
            kind=draw(st.sampled_from(FaultModelSpec.VALID_KINDS)),
            multiplicity=draw(st.integers(min_value=1, max_value=8)),
        ),
        trigger=TriggerSpec(
            kind=draw(st.sampled_from(["time-uniform", "time-fixed", "clock"])),
            time=draw(st.integers(min_value=0, max_value=10**6)),
            period=draw(st.integers(min_value=1, max_value=10**6)),
        ),
        logging_mode=draw(st.sampled_from(["normal", "detail"])),
        use_preinjection=draw(st.booleans()),
    )


class TestCampaignSerializationProperties:
    @given(campaigns())
    @settings(max_examples=60)
    def test_json_round_trip(self, campaign):
        restored = CampaignData.from_json(campaign.to_json())
        assert restored.to_dict() == campaign.to_dict()

    @given(campaigns())
    @settings(max_examples=30)
    def test_json_is_canonical(self, campaign):
        text = campaign.to_json()
        assert json.loads(text) == json.loads(
            CampaignData.from_json(text).to_json()
        )
