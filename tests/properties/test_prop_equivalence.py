"""Property test: statically-derived outcomes equal real executions.

The equivalence-collapse correctness gate (E14): for any campaign shape,

* running with ``preinjection_mode="equivalence"`` must produce exactly
  the results of ``preinjection_mode="static"`` — same injections, same
  terminations, same outputs, same observed state (the partition only
  changes *which* experiments execute, never what is reported);
* every statically-derived member result must equal what force-executing
  that member produces — asserted by running the whole campaign at
  ``verify_equivalence=1.0``, which re-executes every derived member and
  hard-fails the campaign on the first divergence.

Hypothesis drives seed, campaign size, workload and location selection;
the invariant is exact equality of the canonicalised results (wall-clock
zeroed, provenance masked — provenance is the one field equivalence mode
adds on top of static mode).
"""

import dataclasses

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import create_target
from tests.conftest import make_campaign

#: Narrow selections collapse well; the broad register-file pattern is
#: singleton-heavy — included to pin correctness there too.
_PATTERNS = [
    ["scan:internal/cpu.regfile.r5"],
    ["scan:internal/cpu.regfile.r10"],
    ["scan:internal/cpu.regfile.r5", "scan:internal/cpu.regfile.r10"],
    ["scan:internal/cpu.regfile.*"],
]

campaign_shapes = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**16),
        "n_experiments": st.integers(min_value=2, max_value=10),
        "workload_name": st.sampled_from(["vecsum", "bubblesort"]),
        "patterns": st.sampled_from(range(len(_PATTERNS))),
    }
)


def _canonical(sink):
    rows = []
    for result in sink.results:
        data = dataclasses.asdict(result)
        data["wall_seconds"] = 0.0
        data["derived_from"] = None
        rows.append(data)
    return rows


def _run(shape, mode, verify=0.0):
    campaign = make_campaign(
        campaign_name="equiv-prop",
        preinjection_mode=mode,
        use_preinjection=True,
        location_patterns=_PATTERNS[shape["patterns"]],
        seed=shape["seed"],
        n_experiments=shape["n_experiments"],
        workload_name=shape["workload_name"],
    )
    target = create_target("thor-rd")
    target.verify_equivalence = verify
    sink = target.run_campaign(campaign)
    return _canonical(sink), sink


class TestEquivalenceSoundness:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(shape=campaign_shapes)
    def test_equivalence_equals_static_and_survives_verification(
        self, shape
    ):
        static_rows, _ = _run(shape, mode="static")
        # verify=1.0 force-executes every derived member and raises
        # CampaignError on any divergence — the derived==real property.
        equiv_rows, sink = _run(shape, mode="equivalence", verify=1.0)
        assert equiv_rows == static_rows
        assert len(sink.results) == shape["n_experiments"]
