"""Property test: warm-started experiments are byte-identical to cold.

The warm-start correctness gate (E13): for any campaign shape, running
with ``warm_start=True`` (checkpoint restore at the nearest capture at
or before the first injection time) must produce exactly the results of
``warm_start=False`` (the paper's cold start-from-reset path) — same
injections, same terminations, same outputs, same observed state — for
every technique, seed and workload. The only tolerated difference is
the wall-clock field, which is nondeterministic in both modes.

Hypothesis drives technique, seed, campaign size and checkpoint
cadence; the invariant is exact equality of the canonicalised results.
The same gate covers the divergence-window accelerations stacked on
top of warm starts: early exits and outcome-memo replays must be
byte-identical to the plain run-to-termination tail.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import create_target
from tests.conftest import make_campaign

#: Warm-eligible techniques plus swifi-runtime (always cold by design —
#: included to pin down that the flag is a no-op there, not a crash).
_TECHNIQUE_PATTERNS = {
    "scifi": ["scan:internal/cpu.regfile.*"],
    "simfi": ["scan:internal/cpu.regfile.*", "memory:data/*"],
    "pinlevel": ["scan:boundary/pins.data_bus"],
    "swifi-runtime": ["memory:data/*"],
}

campaign_shapes = st.fixed_dictionaries(
    {
        "technique": st.sampled_from(sorted(_TECHNIQUE_PATTERNS)),
        "seed": st.integers(min_value=0, max_value=2**16),
        "n_experiments": st.integers(min_value=1, max_value=6),
        "workload_name": st.sampled_from(["vecsum", "bubblesort"]),
        "checkpoint_interval": st.sampled_from([None, 64, 1000]),
    }
)


def _canonical(sink):
    rows = []
    for result in sink.results:
        data = dataclasses.asdict(result)
        data["wall_seconds"] = 0.0
        rows.append(data)
    return rows


def _run(shape, warm, plain=False):
    campaign = make_campaign(
        campaign_name="warm-prop",
        technique=shape["technique"],
        location_patterns=_TECHNIQUE_PATTERNS[shape["technique"]],
        seed=shape["seed"],
        n_experiments=shape["n_experiments"],
        workload_name=shape["workload_name"],
        checkpoint_interval=shape["checkpoint_interval"],
        warm_start=warm,
    )
    target = create_target("thor-rd")
    if plain:
        # The paper's unaccelerated Figure-2 tail: no divergence-window
        # early exits, no outcome memo (goofi run --no-early-exit).
        target.early_exit = False
        target.memoize = False
    sink = target.run_campaign(campaign)
    return _canonical(sink), target


class TestWarmColdEquivalence:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(shape=campaign_shapes)
    def test_warm_equals_cold(self, shape):
        cold, _ = _run(shape, warm=False)
        warm, target = _run(shape, warm=True)
        assert warm == cold
        if shape["technique"] in ("scifi", "simfi", "pinlevel"):
            # Warm eligibility: the reference run captured checkpoints.
            assert target._checkpoints is not None
            assert len(target._checkpoints) >= 1
        else:
            assert target._checkpoints is None

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(shape=campaign_shapes)
    def test_early_exit_equals_plain_tail(self, shape):
        """Divergence-window early exits and memo replays must be
        invisible in the logged rows: the default accelerated path is
        byte-identical to the plain run-to-termination tail for every
        technique, seed, workload and checkpoint cadence."""
        accelerated, _ = _run(shape, warm=True)
        plain, _ = _run(shape, warm=True, plain=True)
        assert accelerated == plain

    def test_warm_saves_simulated_cycles(self):
        """The restore really skips prefix simulation (counter check)."""
        from repro.observability import configure, disable, get_observability

        configure(metrics=True)
        try:
            campaign = make_campaign(
                campaign_name="warm-cycles",
                n_experiments=4,
                workload_name="bubblesort",
                warm_start=True,
            )
            create_target("thor-rd").run_campaign(campaign)
            snapshot = get_observability().metrics.snapshot()
            counters = snapshot.get("counters", snapshot)
            hits = counters.get("checkpoint.hits", 0)
            saved = counters.get("checkpoint.cycles_saved", 0)
            assert hits >= 1
            assert saved > 0
        finally:
            disable()
