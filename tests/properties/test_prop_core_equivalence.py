"""Property test: the vectorized core is row-identical to the reference.

The fast dispatcher (:meth:`repro.thor.cpu.Cpu._step_fast` — memoized
fused fetch/decode/execute over per-opcode handlers) must be
*extensionally invisible*: for any campaign shape, every logged
experiment row — injections drawn, termination kind and detail, outputs,
observed state vectors, cycle counts — must equal what the seed's
straight-line decode/if-chain core (:meth:`Cpu._step_reference`)
produces. Hypothesis drives technique, seed, campaign size and workload;
the invariant is exact equality of the canonicalised rows (only the
nondeterministic wall-clock field is zeroed).

This is the correctness gate for the whole perf PR: the E18 benchmark
measures the same two dispatchers and is only meaningful because this
suite pins them to identical behaviour.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import create_target
from repro.thor.cpu import Cpu
from tests.conftest import make_campaign

_TECHNIQUE_PATTERNS = {
    "scifi": ["scan:internal/cpu.regfile.*"],
    "simfi": ["scan:internal/cpu.regfile.*", "memory:data/*"],
    "pinlevel": ["scan:boundary/pins.data_bus"],
    "swifi-runtime": ["memory:data/*"],
}

campaign_shapes = st.fixed_dictionaries(
    {
        "technique": st.sampled_from(sorted(_TECHNIQUE_PATTERNS)),
        "seed": st.integers(min_value=0, max_value=2**16),
        "n_experiments": st.integers(min_value=1, max_value=6),
        "workload_name": st.sampled_from(["vecsum", "bubblesort"]),
        "warm_start": st.booleans(),
    }
)


def _canonical(sink):
    rows = []
    for result in sink.results:
        data = dataclasses.asdict(result)
        data["wall_seconds"] = 0.0
        rows.append(data)
    return rows


def _run(shape, fast):
    previous = Cpu.fast_dispatch
    Cpu.fast_dispatch = fast
    try:
        campaign = make_campaign(
            campaign_name="core-equivalence-prop",
            technique=shape["technique"],
            location_patterns=_TECHNIQUE_PATTERNS[shape["technique"]],
            seed=shape["seed"],
            n_experiments=shape["n_experiments"],
            workload_name=shape["workload_name"],
            warm_start=shape["warm_start"],
        )
        target = create_target("thor-rd")
        sink = target.run_campaign(campaign)
    finally:
        Cpu.fast_dispatch = previous
    return _canonical(sink)


class TestCoreEquivalence:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(shape=campaign_shapes)
    def test_fast_rows_equal_reference_rows(self, shape):
        fast = _run(shape, fast=True)
        reference = _run(shape, fast=False)
        assert fast == reference

    def test_dispatcher_binding_follows_class_attribute(self):
        previous = Cpu.fast_dispatch
        try:
            Cpu.fast_dispatch = True
            assert Cpu().step.__func__ is Cpu._step_fast
            Cpu.fast_dispatch = False
            assert Cpu().step.__func__ is Cpu._step_reference
        finally:
            Cpu.fast_dispatch = previous

    def test_single_step_state_identical_on_program(self):
        """Cheap direct pin (no campaign machinery): stepping the same
        program under both dispatchers yields identical snapshots and
        digests every step."""
        from repro.core.checkpoint import state_digest
        from repro.thor.assembler import assemble
        from repro.thor.testcard import TestCard

        source = """
            start:
                LDI  r14, 0xE000   ; stack pointer
                LDI  r1, 100
                LDI  r2, 3
            loop:
                MUL  r3, r1, r2
                DIV  r4, r3, r2
                ADDI r1, r1, -1
                ST   r3, [r1+0x200]
                LD   r5, [r1+0x200]
                PUSH r5
                POP  r6
                CMPI r1, 0
                BNE  loop
                HALT
        """
        program = assemble(source)
        previous = Cpu.fast_dispatch
        try:
            cards = []
            for fast in (True, False):
                Cpu.fast_dispatch = fast
                card = TestCard()
                card.init()
                card.load_program(program)
                cards.append(card)
            fast_card, ref_card = cards
            for _ in range(2000):
                if fast_card.cpu.halted:
                    break
                fast_event = fast_card.cpu.step()
                ref_event = ref_card.cpu.step()
                assert (fast_event is None) == (ref_event is None)
                fast_snapshot = fast_card.cpu.snapshot()
                assert fast_snapshot == ref_card.cpu.snapshot()
                assert state_digest(fast_snapshot) == state_digest(
                    ref_card.cpu.snapshot()
                )
            assert fast_card.cpu.halted and ref_card.cpu.halted
        finally:
            Cpu.fast_dispatch = previous
