"""Robustness fuzzing: arbitrary memory images must never crash the
simulators.

A fault-injection substrate executes *corrupted* programs as its normal
mode of operation, so the machines must be total: any bit pattern either
executes, halts, or raises a hardware trap — never a Python exception.
Hypothesis throws random images and random run lengths at both targets.
"""

from hypothesis import given, settings, strategies as st

from repro.thor.cpu import Cpu, CpuHalted
from repro.tsm.machine import TsmHalted, TsmMachine

words = st.integers(min_value=0, max_value=0xFFFFFFFF)
tsm_words = st.integers(min_value=0, max_value=0xFFFF)


class TestThorTotality:
    @given(
        st.lists(words, min_size=1, max_size=40),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=120, deadline=None)
    def test_random_images_never_crash(self, image, steps):
        cpu = Cpu()
        for offset, word in enumerate(image):
            cpu.memory.poke(0x100 + offset, word)
        cpu.reset(entry=0x100)
        for _ in range(steps):
            if cpu.halted:
                break
            event = cpu.step()
            if event is not None and event.kind in ("halt", "trap"):
                break
        # Invariants that must survive arbitrary garbage:
        assert cpu.cycles >= 0
        assert 0 <= cpu.pc <= 0xFFFFFFFF
        for index in range(16):
            assert 0 <= cpu.regs[index] <= 0xFFFFFFFF

    @given(st.lists(words, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_halted_cpu_stays_halted(self, image):
        cpu = Cpu()
        for offset, word in enumerate(image):
            cpu.memory.poke(0x100 + offset, word)
        cpu.reset(entry=0x100)
        for _ in range(300):
            if cpu.halted:
                break
            cpu.step()
        if cpu.halted:
            import pytest

            with pytest.raises(CpuHalted):
                cpu.step()


class TestTsmTotality:
    @given(
        st.lists(tsm_words, min_size=1, max_size=40),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=120, deadline=None)
    def test_random_images_never_crash(self, image, steps):
        machine = TsmMachine()
        for offset, word in enumerate(image):
            machine.memory[0x10 + offset] = word
        machine.reset(entry=0x10)
        for _ in range(steps):
            if machine.halted:
                break
            event = machine.step()
            if event is not None and event.kind in ("halt", "trap"):
                break
        # Stack pointers must stay inside their physical arrays — the
        # machine's own EDMs are the only way out of bounds is reported.
        assert 0 <= machine.sp <= machine.config.data_stack_depth
        assert 0 <= machine.rsp <= machine.config.return_stack_depth

    @given(
        st.lists(tsm_words, min_size=1, max_size=20),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=80, deadline=None)
    def test_scan_injection_mid_run_never_crashes(self, image, steps, bit):
        """Inject a random stack-cell flip mid-run, keep executing."""
        machine = TsmMachine()
        for offset, word in enumerate(image):
            machine.memory[0x10 + offset] = word
        machine.reset(entry=0x10)
        for _ in range(steps):
            if machine.halted:
                break
            machine.step()
        if not machine.halted:
            machine.dstack[0] ^= 1 << bit
            for _ in range(50):
                if machine.halted:
                    break
                machine.step()
        assert machine.sp >= 0  # bound violations end in traps, not crashes

    @given(
        st.lists(tsm_words, min_size=1, max_size=20),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=80, deadline=None)
    def test_corrupted_stack_pointers_trap_not_crash(self, image, sp, rsp):
        """A scan-injected stack pointer outside the physical array must
        surface as a stack-fault trap on the next access, never as a
        Python-level error (the sp scan cell is wider than the stack)."""
        machine = TsmMachine()
        for offset, word in enumerate(image):
            machine.memory[0x10 + offset] = word
        machine.reset(entry=0x10)
        machine.step()
        if not machine.halted:
            machine.sp = sp
            machine.rsp = rsp
            for _ in range(80):
                if machine.halted:
                    break
                machine.step()
