"""Property-based tests for bit utilities (hypothesis)."""

from hypothesis import given, strategies as st

from repro.util import bits

words = st.integers(min_value=0, max_value=0xFFFFFFFF)
bit_indices = st.integers(min_value=0, max_value=31)


class TestFlipProperties:
    @given(words, bit_indices)
    def test_flip_is_involution(self, value, bit):
        assert bits.bit_flip(bits.bit_flip(value, bit), bit) == value

    @given(words, bit_indices)
    def test_flip_changes_exactly_one_bit(self, value, bit):
        flipped = bits.bit_flip(value, bit)
        assert bits.popcount(value ^ flipped) == 1

    @given(words, bit_indices)
    def test_set_then_get(self, value, bit):
        assert bits.bit_get(bits.bit_set(value, bit, 1), bit) == 1
        assert bits.bit_get(bits.bit_set(value, bit, 0), bit) == 0

    @given(words, bit_indices)
    def test_set_preserves_other_bits(self, value, bit):
        for target in (0, 1):
            changed = bits.bit_set(value, bit, target)
            mask = ~(1 << bit)
            assert changed & mask == value & mask


class TestConversionProperties:
    @given(words)
    def test_int_bits_round_trip(self, value):
        assert bits.bits_to_int(bits.int_to_bits(value, 32)) == value

    @given(st.lists(st.sampled_from([0, 1]), max_size=64))
    def test_bits_int_round_trip(self, bit_list):
        value = bits.bits_to_int(bit_list)
        assert bits.int_to_bits(value, len(bit_list)) == bit_list

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_signed_unsigned_round_trip(self, value):
        assert bits.to_signed(bits.to_unsigned(value)) == value


class TestParityProperties:
    @given(words, bit_indices)
    def test_single_flip_always_changes_parity(self, value, bit):
        assert bits.parity(value) != bits.parity(bits.bit_flip(value, bit))

    @given(words, bit_indices, bit_indices)
    def test_double_flip_parity(self, value, bit_a, bit_b):
        double = bits.bit_flip(bits.bit_flip(value, bit_a), bit_b)
        if bit_a == bit_b:
            assert bits.parity(double) == bits.parity(value)
        else:
            # Two distinct flips cancel in the parity sum — the reason
            # multiplicity-2 faults escape the cache parity check.
            assert bits.parity(double) == bits.parity(value)

    @given(words)
    def test_parity_is_xor_of_bits(self, value):
        expected = 0
        for bit in bits.int_to_bits(value, 32):
            expected ^= bit
        assert bits.parity(value) == expected
