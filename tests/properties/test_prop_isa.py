"""Property-based tests for ISA encode/decode and the CPU ALU."""

from hypothesis import given, settings, strategies as st

from repro.thor import isa
from repro.thor.cpu import _add_sub
from repro.thor.isa import (
    ABSOLUTE_IMM,
    I_TYPE,
    R_TYPE,
    Instruction,
    Opcode,
    assemble_word,
    decode,
    try_decode,
)
from repro.util.bits import to_signed, to_unsigned

registers = st.integers(min_value=0, max_value=15)
words = st.integers(min_value=0, max_value=0xFFFFFFFF)


@st.composite
def instructions(draw):
    opcode = draw(st.sampled_from(sorted(Opcode, key=int)))
    rd = draw(registers)
    rs1 = draw(registers)
    if opcode in R_TYPE:
        return Instruction(opcode, rd=rd, rs1=rs1, rs2=draw(registers))
    if opcode in ABSOLUTE_IMM:
        imm = draw(st.integers(min_value=0, max_value=isa.IMM_MASK))
    else:
        imm = draw(st.integers(min_value=isa.IMM_MIN, max_value=isa.IMM_MAX))
    return Instruction(opcode, rd=rd, rs1=rs1, imm=imm)


class TestEncodingProperties:
    @given(instructions())
    def test_round_trip(self, instr):
        assert decode(assemble_word(instr)) == instr

    @given(instructions())
    def test_encoded_word_fits_32_bits(self, instr):
        assert 0 <= assemble_word(instr) <= 0xFFFFFFFF

    @given(words)
    def test_decode_never_crashes(self, word):
        # Any 32-bit pattern either decodes or raises IllegalOpcode —
        # the invariant fault injection into instruction words relies on.
        instr = try_decode(word)
        if instr is not None:
            assert instr.opcode in Opcode

    @given(instructions(), st.integers(min_value=0, max_value=31))
    @settings(max_examples=200)
    def test_flipped_word_decodes_or_traps(self, instr, bit):
        word = assemble_word(instr) ^ (1 << bit)
        result = try_decode(word)
        if result is not None:
            # A legal mutation must round-trip canonically (R-type
            # instructions have don't-care low bits, so the re-encoded
            # word may legitimately differ from the corrupted one).
            assert decode(assemble_word(result)) == result


class TestAluProperties:
    @given(words, words)
    def test_add_matches_python(self, a, b):
        result, carry, overflow = _add_sub(a, b, subtract=False)
        assert result == (a + b) & 0xFFFFFFFF
        assert carry == (a + b > 0xFFFFFFFF)
        signed = to_signed(a) + to_signed(b)
        assert overflow == not_in_range(signed)

    @given(words, words)
    def test_sub_matches_python(self, a, b):
        result, carry, overflow = _add_sub(a, b, subtract=True)
        assert result == (a - b) & 0xFFFFFFFF
        signed = to_signed(a) - to_signed(b)
        assert overflow == not_in_range(signed)

    @given(words)
    def test_sub_self_is_zero(self, a):
        result, _, overflow = _add_sub(a, a, subtract=True)
        assert result == 0
        assert not overflow


def not_in_range(signed: int) -> bool:
    return not (-(1 << 31) <= signed <= (1 << 31) - 1)
