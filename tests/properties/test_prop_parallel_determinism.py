"""Property test: parallel campaigns are byte-identical to serial runs.

The paper's reproducibility contract — every experiment derives from a
deterministic per-experiment RNG substream — means sharding a campaign
over a process pool must not change a single logged byte (modulo the
wall-clock timing field, which ``canonical_experiment_rows`` zeroes).

Hypothesis drives the campaign shape (technique, seed, size) and the
pool shape (worker count, shard size, batch size); the invariant is
exact equality of the canonicalised database rows.
"""

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import create_target, worker_factory
from repro.core.parallel import (
    ParallelConfig,
    canonical_experiment_rows,
    run_parallel_campaign,
)
from repro.db import GoofiDatabase
from tests.conftest import make_campaign

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel tests need the fork start method",
)

#: Each technique reaches a different location space (Table 1).
_TECHNIQUE_PATTERNS = {
    "scifi": ["scan:internal/cpu.regfile.*"],
    "swifi-pre": ["memory:data/*"],
    "swifi-runtime": ["memory:data/*"],
}

campaign_shapes = st.fixed_dictionaries(
    {
        "technique": st.sampled_from(sorted(_TECHNIQUE_PATTERNS)),
        "seed": st.integers(min_value=0, max_value=2**16),
        "n_experiments": st.integers(min_value=1, max_value=8),
    }
)

pool_shapes = st.fixed_dictionaries(
    {
        "n_workers": st.integers(min_value=1, max_value=3),
        "shard_size": st.integers(min_value=1, max_value=4),
        "batch_size": st.integers(min_value=1, max_value=5),
    }
)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(shape=campaign_shapes, pool=pool_shapes)
def test_parallel_rows_byte_identical_to_serial(shape, pool):
    campaign = make_campaign(
        campaign_name=f"prop-{shape['technique']}-{shape['seed']}",
        location_patterns=_TECHNIQUE_PATTERNS[shape["technique"]],
        **shape,
    )

    serial_db = GoofiDatabase(":memory:")
    create_target("thor-rd").run_campaign(campaign, sink=serial_db)

    parallel_db = GoofiDatabase(":memory:")
    run_parallel_campaign(
        campaign,
        worker_factory("thor-rd"),
        sink=parallel_db,
        config=ParallelConfig(start_method="fork", **pool),
    )

    serial_rows = canonical_experiment_rows(serial_db, campaign.campaign_name)
    parallel_rows = canonical_experiment_rows(
        parallel_db, campaign.campaign_name
    )
    assert len(serial_rows) == shape["n_experiments"]
    assert serial_rows == parallel_rows
    serial_db.close()
    parallel_db.close()
