"""Soundness of the static liveness oracle against the dynamic one.

The static analysis contract (DESIGN.md): for every (location, time)
pair, ``dynamic.is_live`` implies ``static.is_live`` — the trace-free
over-approximation may keep dead pairs, but must never prune a live one.
Violations would make static/hybrid pre-injection pruning skip faults
that *can* propagate, silently biasing campaign statistics.

Exercised for **every bundled workload** over a deterministic sample of
the interesting location classes: register-file bits, the PSR, PC, IR
and the workload's memory words.
"""

import pytest

from repro.core.campaign import CampaignData, EnvironmentSpec
from repro.core.framework import create_target
from repro.core.locations import FaultLocation
from repro.core.preinjection import (
    HybridPreInjectionAnalysis,
    PreInjectionAnalysis,
)
from repro.staticanalysis import StaticPreInjectionAnalysis
from repro.util.sampling import iter_pairs
from repro.workloads import available_workloads

MAX_PAIRS = 1500


def _campaign(workload):
    kwargs = dict(
        campaign_name=f"soundness-{workload}",
        technique="scifi",
        workload_name=workload,
        location_patterns=["scan:internal/cpu.regfile.*"],
        n_experiments=1,
        seed=7,
    )
    if workload == "pid-control":
        kwargs["environment"] = EnvironmentSpec(
            name="inverted-pendulum", params={"initial": 0.2}
        )
        kwargs["max_iterations"] = 50
    return CampaignData(**kwargs)


def _oracles(workload):
    target = create_target("thor-rd")
    target.read_campaign_data(_campaign(workload))
    reference = target.make_reference_run()
    space = target.location_space()
    dynamic = PreInjectionAnalysis.from_trace(reference.trace, space)
    static = StaticPreInjectionAnalysis(
        target.workload_program(), duration=reference.duration_cycles
    )
    return target, reference, dynamic, static


def _sample_locations(target):
    """Register bits, PSR, PC, IR, and memory words of the workload."""
    space = target.location_space()
    locations = [
        FaultLocation("scan:internal", f"cpu.regfile.r{n}", bit)
        for n in range(16)
        for bit in (0, 15)
    ]
    locations += [
        FaultLocation("scan:internal", "cpu.psr", 0),
        FaultLocation("scan:internal", "cpu.pc", 0),
        FaultLocation("scan:internal", "cpu.pipeline.ir", 0),
    ]
    memory_cells = [
        cell
        for cell in space.cells()
        if cell.space.startswith("memory:")
    ]
    for cell in memory_cells[:40]:
        locations.append(FaultLocation(cell.space, cell.path, 0))
    return locations


@pytest.mark.parametrize("workload", available_workloads())
def test_static_overapproximates_dynamic(workload):
    target, reference, dynamic, static = _oracles(workload)
    locations = _sample_locations(target)
    duration = reference.duration_cycles
    step = max(1, duration // 60)
    times = list(range(1, duration + 1, step)) + [duration]

    violations = [
        (location.key(), t)
        for location, t in iter_pairs(locations, times, MAX_PAIRS)
        if dynamic.is_live(location, t) and not static.is_live(location, t)
    ]
    assert violations == [], (
        f"static oracle pruned live pairs for {workload}: {violations[:10]}"
    )


@pytest.mark.parametrize("workload", ["vecsum", "bubblesort"])
def test_hybrid_equals_dynamic(workload):
    """Given soundness, static AND dynamic == dynamic."""
    target, reference, dynamic, static = _oracles(workload)
    hybrid = HybridPreInjectionAnalysis(static, dynamic)
    locations = _sample_locations(target)
    times = list(range(1, reference.duration_cycles + 1, 13))
    for location, t in iter_pairs(locations, times, 600):
        assert hybrid.is_live(location, t) == dynamic.is_live(location, t)
    assert hybrid.disagreements(locations, times, max_samples=600) == []
