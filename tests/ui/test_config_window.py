"""Tests for the target-configuration window (Figure 5 / F5)."""

import pytest

from repro.ui.config_window import TargetConfigurationWindow
from repro.util.errors import ConfigurationError


class TestRendering:
    def test_render_lists_positions_and_modes(self, thor_target):
        window = TargetConfigurationWindow(thor_target)
        text = window.render(max_rows=12)
        assert "cpu.pc" in text
        assert "r/w" in text
        assert "observe-only" in text

    def test_locations_include_read_only_flag(self, thor_target):
        window = TargetConfigurationWindow(thor_target)
        rows = window.locations()
        by_path = {row["path"]: row for row in rows}
        assert by_path["cpu.cycle_counter"]["read_only"]
        assert not by_path["cpu.psr"]["read_only"]

    def test_positions_are_chain_offsets(self, thor_target):
        window = TargetConfigurationWindow(thor_target)
        rows = [r for r in window.locations() if r["chain"] == "internal"]
        # Offsets are strictly increasing along the chain.
        positions = [row["position"] for row in rows]
        assert positions == sorted(positions)


class TestPersistence:
    def test_save_and_load_round_trip(self, thor_target, db):
        window = TargetConfigurationWindow(thor_target, db)
        window.annotate("cpu.psr", "status word, bits ZNCV")
        window.save()
        reloaded = TargetConfigurationWindow(thor_target, db)
        description = reloaded.load("thor-rd")
        assert description["annotations"]["cpu.psr"] == "status word, bits ZNCV"
        assert reloaded.annotations["cpu.psr"]

    def test_annotate_unknown_location_rejected(self, thor_target):
        window = TargetConfigurationWindow(thor_target)
        with pytest.raises(ConfigurationError):
            window.annotate("cpu.flux_capacitor", "!")

    def test_save_without_db_rejected(self, thor_target):
        window = TargetConfigurationWindow(thor_target)
        with pytest.raises(ConfigurationError):
            window.save()

    def test_saved_description_matches_target(self, thor_target, db):
        window = TargetConfigurationWindow(thor_target, db)
        window.save()
        stored = db.load_target("thor-rd")
        assert stored["memory_size"] == 65536
        assert len(stored["chains"]["internal"]) > 100
