"""Tests for the progress window (Figure 7 / F7)."""

from repro.core.controller import CampaignController
from repro.ui.progress_window import ProgressWindow
from tests.conftest import make_campaign


class TestLiveUpdates:
    def test_snapshots_accumulate(self, thor_target):
        controller = CampaignController(thor_target)
        window = ProgressWindow(controller)
        controller.run(make_campaign(n_experiments=5))
        assert len(window.snapshots) >= 5
        assert window.latest.n_done == 5
        assert window.latest.state == "finished"

    def test_render_shows_counts_and_bar(self, thor_target):
        controller = CampaignController(thor_target)
        window = ProgressWindow(controller)
        controller.run(make_campaign(n_experiments=4))
        text = window.render()
        assert "4/4" in text
        assert "100.0%" in text
        assert "#" * 40 in text
        assert "faults injected: 4" in text

    def test_render_shows_terminations_and_detections(self, thor_target):
        controller = CampaignController(thor_target)
        window = ProgressWindow(controller)
        campaign = make_campaign(
            n_experiments=20,
            location_patterns=["scan:internal/icache.*"],
            workload_name="bubblesort",
            seed=9,
        )
        controller.run(campaign)
        text = window.render()
        assert "terminations:" in text
        # I-cache faults are frequently parity-detected at this seed.
        assert "detections:" in text

    def test_render_before_run_is_safe(self, thor_target):
        controller = CampaignController(thor_target)
        window = ProgressWindow(controller)
        assert "[idle]" in window.render()


class TestButtons:
    def test_end_button_stops_campaign(self, thor_target):
        controller = CampaignController(thor_target)
        window = ProgressWindow(controller)

        def auto_end(progress):
            if progress.n_done == 2:
                window.end()

        controller.add_listener(auto_end)
        sink = controller.run(make_campaign(n_experiments=30))
        assert len(sink.results) == 2
        assert window.latest.state == "stopped"

    def test_pause_and_restart_buttons_delegate(self, thor_target):
        controller = CampaignController(thor_target)
        window = ProgressWindow(controller)
        window.pause()
        assert controller.paused
        window.restart()
        assert not controller.paused

    def test_stream_output(self, thor_target, capsys):
        import sys

        controller = CampaignController(thor_target)
        ProgressWindow(controller, stream=sys.stdout)
        controller.run(make_campaign(n_experiments=2))
        captured = capsys.readouterr()
        assert "Campaign: test-campaign" in captured.out
