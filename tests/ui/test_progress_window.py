"""Tests for the progress window (Figure 7 / F7)."""

from repro.core.controller import CampaignController
from repro.ui.progress_window import ProgressWindow
from tests.conftest import make_campaign


class TestLiveUpdates:
    def test_snapshots_accumulate(self, thor_target):
        controller = CampaignController(thor_target)
        window = ProgressWindow(controller)
        controller.run(make_campaign(n_experiments=5))
        assert len(window.snapshots) >= 5
        assert window.latest.n_done == 5
        assert window.latest.state == "finished"

    def test_render_shows_counts_and_bar(self, thor_target):
        controller = CampaignController(thor_target)
        window = ProgressWindow(controller)
        controller.run(make_campaign(n_experiments=4))
        text = window.render()
        assert "4/4" in text
        assert "100.0%" in text
        assert "#" * 40 in text
        assert "faults injected: 4" in text

    def test_render_shows_terminations_and_detections(self, thor_target):
        controller = CampaignController(thor_target)
        window = ProgressWindow(controller)
        campaign = make_campaign(
            n_experiments=20,
            location_patterns=["scan:internal/icache.*"],
            workload_name="bubblesort",
            seed=9,
        )
        controller.run(campaign)
        text = window.render()
        assert "terminations:" in text
        # I-cache faults are frequently parity-detected at this seed.
        assert "detections:" in text

    def test_render_before_run_is_safe(self, thor_target):
        controller = CampaignController(thor_target)
        window = ProgressWindow(controller)
        assert "[idle]" in window.render()


class TestButtons:
    def test_end_button_stops_campaign(self, thor_target):
        controller = CampaignController(thor_target)
        window = ProgressWindow(controller)

        def auto_end(progress):
            if progress.n_done == 2:
                window.end()

        controller.add_listener(auto_end)
        sink = controller.run(make_campaign(n_experiments=30))
        assert len(sink.results) == 2
        assert window.latest.state == "stopped"

    def test_pause_and_restart_buttons_delegate(self, thor_target):
        controller = CampaignController(thor_target)
        window = ProgressWindow(controller)
        window.pause()
        assert controller.paused
        window.restart()
        assert not controller.paused

    def test_stream_output(self, thor_target, capsys):
        import sys

        controller = CampaignController(thor_target)
        ProgressWindow(controller, stream=sys.stdout)
        controller.run(make_campaign(n_experiments=2))
        captured = capsys.readouterr()
        assert "Campaign: test-campaign" in captured.out


class TestParallelDigest:
    """The live window under a ParallelCampaignController: worker lines
    and the metrics digest with two or more workers."""

    @staticmethod
    def _parallel_controller(n_workers=2):
        import multiprocessing

        import pytest as _pytest

        if "fork" not in multiprocessing.get_all_start_methods():
            _pytest.skip("parallel tests need the fork start method")
        from repro.core import (
            ParallelCampaignController,
            ParallelConfig,
            worker_factory,
        )

        return ParallelCampaignController(
            worker_factory("thor-rd"),
            config=ParallelConfig(
                n_workers=n_workers,
                shard_size=3,
                batch_size=4,
                timeout_seconds=30.0,
                start_method="fork",
            ),
        )

    def test_worker_line_and_metrics_digest(self):
        from repro import observability

        observability.configure(metrics=True)
        try:
            controller = self._parallel_controller(n_workers=2)
            window = ProgressWindow(controller)
            controller.run(make_campaign(n_experiments=12, seed=21))
            text = window.render()
            assert "workers: 2" in text
            assert "12/12" in text
            # The digest folds the per-worker counters into the total.
            assert "metrics: experiments=12" in text
        finally:
            observability.disable()

    def test_pause_resume_preserved_under_parallel(self):
        controller = self._parallel_controller(n_workers=2)
        window = ProgressWindow(controller)
        resumed = []

        def pause_once(progress):
            if progress.n_done == 3 and not resumed:
                window.pause()
                assert controller.paused
                resumed.append(True)
                window.restart()

        controller.add_listener(pause_once)
        sink = controller.run(make_campaign(n_experiments=12, seed=4))
        assert resumed
        assert not controller.paused
        assert len(sink.results) == 12
        assert window.latest.state == "finished"

    def test_eta_appears_while_running(self):
        from repro import observability

        observability.configure(metrics=True)
        try:
            controller = self._parallel_controller(n_workers=2)
            window = ProgressWindow(controller)
            mid_render = []

            def snoop(progress):
                if 0 < progress.n_done < 18:
                    mid_render.append(window.render())

            controller.add_listener(snoop)
            controller.run(make_campaign(n_experiments=18, seed=7))
            assert mid_render
            assert any("eta:" in text for text in mid_render)
            # Finished runs drop the ETA from the final render.
            assert "eta:" not in window.render()
        finally:
            observability.disable()

    def test_health_alert_line_rendered(self):
        from repro.core import create_target
        from repro.observability.health import (
            CampaignHealthMonitor,
            HealthAlert,
            set_health,
        )

        monitor = CampaignHealthMonitor()
        monitor.begin("c1", n_total=10)
        monitor.alerts.append(
            HealthAlert(kind="stall", message="no progress in 9.0s", ts=0.0)
        )
        previous = set_health(monitor)
        try:
            controller = CampaignController(create_target("thor-rd"))
            window = ProgressWindow(controller)
            text = window.render()
            assert "health [stall]: no progress in 9.0s" in text
        finally:
            set_health(previous)
