"""Tests for the goofi CLI."""

import pytest

from repro.ui.app import main


class TestListingCommands:
    def test_targets(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        assert "thor-rd" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        assert "bubblesort" in capsys.readouterr().out

    def test_techniques(self, capsys):
        assert main(["techniques"]) == 0
        out = capsys.readouterr().out
        assert "scifi" in out and "swifi-pre" in out

    def test_tree(self, capsys):
        assert main(["tree", "--target", "thor-rd"]) == 0
        assert "regfile" in capsys.readouterr().out

    def test_port_skeleton(self, capsys):
        assert main(["port-skeleton", "--name", "MyBoard"]) == 0
        out = capsys.readouterr().out
        assert "class MyBoard(Framework)" in out


class TestFullWorkflow:
    def test_configure_campaign_run_analyze(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        assert main(["configure", "--db", db, "--target", "thor-rd"]) == 0
        assert main([
            "campaign", "--db", db, "--name", "cli-camp",
            "--workload", "vecsum", "--experiments", "8", "--seed", "3",
        ]) == 0
        assert main(["campaigns", "--db", db]) == 0
        assert "cli-camp" in capsys.readouterr().out
        assert main(["run", "--db", db, "--campaign", "cli-camp",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "8/8" in out
        assert main(["analyze", "--db", db, "--campaign", "cli-camp"]) == 0
        out = capsys.readouterr().out
        assert "detection coverage" in out

    def test_merge_command(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        main(["campaign", "--db", db, "--name", "a", "--experiments", "5"])
        main(["campaign", "--db", db, "--name", "b", "--experiments", "6",
              "--locations", "scan:internal/cpu.psr"])
        assert main(["merge", "--db", db, "--into", "ab", "a", "b"]) == 0
        assert "11 experiments" in capsys.readouterr().out

    def test_rerun_command(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        main(["campaign", "--db", db, "--name", "rr", "--workload", "vecsum",
              "--experiments", "3"])
        main(["run", "--db", db, "--campaign", "rr", "--quiet"])
        assert main(["rerun", "--db", db, "--campaign", "rr",
                     "--index", "1"]) == 0
        out = capsys.readouterr().out
        assert "rr-exp00001-rerun" in out
        assert "per-instruction states" in out

    def test_gen_analysis_to_file(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        output = str(tmp_path / "script.py")
        main(["campaign", "--db", db, "--name", "g", "--experiments", "2"])
        assert main(["gen-analysis", "--db", db, "--campaign", "g",
                     "--output", output]) == 0
        text = open(output).read()
        compile(text, output, "exec")

    def test_error_reported_cleanly(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        assert main(["run", "--db", db, "--campaign", "ghost"]) == 1
        assert "goofi: error" in capsys.readouterr().err


class TestStatisticsCommands:
    def test_plan(self, capsys):
        assert main(["plan", "--half-width", "0.05"]) == 0
        assert "385 experiments" in capsys.readouterr().out

    def test_compare(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        for name, locations in [
            ("x", "scan:internal/cpu.regfile.*"),
            ("y", "scan:internal/dcache.*"),
        ]:
            main(["campaign", "--db", db, "--name", name, "--workload",
                  "vecsum", "--experiments", "12", "--locations", locations])
            main(["run", "--db", db, "--campaign", name, "--quiet"])
        capsys.readouterr()
        assert main(["compare", "--db", db, "x", "y"]) == 0
        out = capsys.readouterr().out
        assert "effectiveness:" in out
        assert "z=" in out

    def test_propagate_after_rerun(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        main(["campaign", "--db", db, "--name", "p", "--workload", "vecsum",
              "--experiments", "4", "--preinjection"])
        main(["run", "--db", db, "--campaign", "p", "--quiet"])
        main(["rerun", "--db", db, "--campaign", "p", "--index", "0"])
        capsys.readouterr()
        assert main(["propagate", "--db", db, "--experiment",
                     "p-exp00000-rerun"]) == 0
        out = capsys.readouterr().out
        assert "p-exp00000-rerun" in out
        assert "diverge" in out  # either diverged-at or no-divergence text

    def test_faultspace(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        main(["campaign", "--db", db, "--name", "fs", "--workload", "vecsum",
              "--experiments", "10"])
        main(["run", "--db", db, "--campaign", "fs", "--quiet"])
        capsys.readouterr()
        assert main(["faultspace", "--db", db, "--campaign", "fs"]) == 0
        out = capsys.readouterr().out
        assert "locations x" in out
        assert "stored reference run" in out

    def test_faultspace_without_run_uses_fresh_reference(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        main(["campaign", "--db", db, "--name", "fs2", "--workload", "vecsum",
              "--experiments", "10"])
        capsys.readouterr()
        assert main(["faultspace", "--db", db, "--campaign", "fs2"]) == 0
        assert "fresh reference run" in capsys.readouterr().out

    def test_workloads_per_target(self, capsys):
        assert main(["workloads", "--target", "tsm-1"]) == 0
        out = capsys.readouterr().out
        assert "sumsq" in out
        assert "bubblesort" not in out

    def test_propagate_without_detail_states_fails(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        main(["campaign", "--db", db, "--name", "q", "--workload", "vecsum",
              "--experiments", "2"])
        main(["run", "--db", db, "--campaign", "q", "--quiet"])
        capsys.readouterr()
        assert main(["propagate", "--db", db, "--experiment",
                     "q-exp00000"]) == 1
        assert "no detail-mode states" in capsys.readouterr().err


class TestLintCommand:
    @staticmethod
    def _spec(tmp_path, name, **overrides):
        from tests.conftest import make_campaign

        overrides.setdefault("campaign_name", name)
        path = tmp_path / f"{name}.json"
        path.write_text(make_campaign(**overrides).to_json())
        return str(path)

    def test_clean_spec_exits_zero(self, tmp_path, capsys):
        spec = self._spec(tmp_path, "clean")
        assert main(["lint", "--spec", spec]) == 0
        assert "ok" in capsys.readouterr().out

    def test_error_finding_exits_one(self, tmp_path, capsys):
        spec = self._spec(
            tmp_path,
            "broken",
            location_patterns=[
                "scan:internal/cpu.regfile.*",
                "scan:internal/cpu.bogus.*",
            ],
        )
        assert main(["lint", "--spec", spec]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "zero-match-pattern" in out

    def test_multiple_specs_reported_individually(self, tmp_path, capsys):
        good = self._spec(tmp_path, "good")
        bad = self._spec(
            tmp_path, "bad", location_patterns=["scan:internal/cpu.nope.*"]
        )
        assert main(["lint", "--spec", good, bad]) == 1
        out = capsys.readouterr().out
        assert f"{good}: ok" in out
        assert f"{bad}: FAIL" in out

    def test_invalid_spec_reported_not_raised(self, tmp_path, capsys):
        spec = self._spec(tmp_path, "badmode", workload_name="no-such-load")
        assert main(["lint", "--spec", spec]) == 1
        assert "invalid-campaign" in capsys.readouterr().out

    def test_stored_campaign_lint(self, tmp_path, capsys):
        db = str(tmp_path / "lint.db")
        main(["campaign", "--db", db, "--name", "stored",
              "--experiments", "5"])
        assert main(["lint", "--db", db, "--campaign", "stored"]) == 0
        assert "stored: ok" in capsys.readouterr().out

    def test_campaign_without_db_is_usage_error(self, capsys):
        assert main(["lint", "--campaign", "x"]) == 2

    def test_nothing_to_lint_is_usage_error(self, capsys):
        assert main(["lint"]) == 2

    def test_partition_flag_reports_equivalence_stats(self, tmp_path, capsys):
        spec = self._spec(
            tmp_path,
            "equiv",
            preinjection_mode="equivalence",
            use_preinjection=True,
            location_patterns=["scan:internal/cpu.regfile.r5"],
            n_experiments=8,
        )
        assert main(["lint", "--spec", spec, "--partition"]) == 0
        assert "equiv" in capsys.readouterr().out

    def test_example_specs_lint_clean(self, capsys):
        import pathlib

        examples = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples" / "campaigns"
        )
        specs = sorted(str(p) for p in examples.glob("*.json"))
        assert specs, "examples/campaigns must ship lintable specs"
        assert main(["lint", "--spec"] + specs) == 0


class TestRunVerifyEquivalence:
    def test_run_with_verification(self, tmp_path, capsys):
        from repro.db import GoofiDatabase
        from tests.conftest import make_campaign

        db = str(tmp_path / "verify.db")
        campaign = make_campaign(
            campaign_name="equiv-cli",
            preinjection_mode="equivalence",
            use_preinjection=True,
            location_patterns=["scan:internal/cpu.regfile.r5"],
            n_experiments=6,
        )
        with GoofiDatabase(db) as handle:
            handle.save_campaign(campaign)
        assert main(["run", "--db", db, "--campaign", "equiv-cli",
                     "--quiet", "--verify-equivalence", "0.5"]) == 0
        assert "6/6" in capsys.readouterr().out

    def test_bad_fraction_rejected(self, tmp_path, capsys):
        from repro.db import GoofiDatabase
        from tests.conftest import make_campaign

        db = str(tmp_path / "verify.db")
        with GoofiDatabase(db) as handle:
            handle.save_campaign(make_campaign(campaign_name="c"))
        assert main(["run", "--db", db, "--campaign", "c", "--quiet",
                     "--verify-equivalence", "1.5"]) == 1
        assert "must be in [0, 1]" in capsys.readouterr().err
