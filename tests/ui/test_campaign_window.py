"""Tests for the campaign set-up window (Figure 6 / F6)."""

import pytest

from repro.core.campaign import FaultModelSpec
from repro.core.triggers import TriggerSpec
from repro.ui.campaign_window import CampaignSetupWindow
from repro.util.errors import ConfigurationError


@pytest.fixture
def window(db):
    window = CampaignSetupWindow(db)
    window.select_target("thor-rd")
    window.set_name("ui-camp")
    window.set_workload("vecsum")
    window.choose_locations(["scan:internal/cpu.regfile.*"])
    window.set_experiments(12, seed=5)
    return window


class TestBuilding:
    def test_build_produces_valid_campaign(self, window):
        campaign = window.build()
        assert campaign.campaign_name == "ui-camp"
        assert campaign.n_experiments == 12
        assert campaign.seed == 5

    def test_fault_model_and_trigger_settings(self, window):
        window.set_fault_model(FaultModelSpec(kind="intermittent"))
        window.set_trigger(TriggerSpec(kind="branch"))
        campaign = window.build()
        assert campaign.fault_model.kind == "intermittent"
        assert campaign.trigger.kind == "branch"

    def test_termination_settings(self, window):
        window.set_termination(timeout_cycles=5000, max_iterations=7)
        campaign = window.build()
        assert campaign.timeout_cycles == 5000
        assert campaign.max_iterations == 7

    def test_environment_setting(self, window):
        window.set_workload("pid-control", assertions=True)
        window.set_environment("dc-motor", k=2.0)
        campaign = window.build()
        assert campaign.environment.name == "dc-motor"
        assert campaign.environment.params == {"k": 2.0}

    def test_unknown_workload_rejected(self, window):
        with pytest.raises(ConfigurationError):
            window.set_workload("tetris")

    def test_render_shows_selections(self, window):
        text = window.render()
        assert "ui-camp" in text
        assert "vecsum" in text
        assert "scan:internal/cpu.regfile.*" in text


class TestLocationTree:
    def test_tree_is_hierarchical(self, window):
        text = window.location_tree()
        assert "regfile" in text
        assert "dcache" in text
        assert "[read-only]" in text

    def test_matching_locations_counts_bits(self, window):
        count = window.matching_locations(["scan:internal/cpu.regfile.*"])
        assert count == 16 * 32

    def test_tree_requires_target(self, db):
        window = CampaignSetupWindow(db)
        with pytest.raises(ConfigurationError):
            window.location_tree()


class TestPersistence:
    def test_save_load_modify(self, window, db):
        window.save()
        other = CampaignSetupWindow(db)
        loaded = other.load("ui-camp")
        assert loaded.n_experiments == 12
        other.set_experiments(99)
        other.set_name("ui-camp-2")
        other.save()
        assert set(db.list_campaigns()) == {"ui-camp", "ui-camp-2"}
        assert db.load_campaign("ui-camp-2").n_experiments == 99
        # Original untouched.
        assert db.load_campaign("ui-camp").n_experiments == 12

    def test_merge_stored_campaigns(self, window, db):
        window.save()
        window.set_name("ui-camp-b")
        window.choose_locations(["scan:internal/cpu.psr"])
        window.set_experiments(8)
        window.save()
        merged = CampaignSetupWindow(db).merge(
            ["ui-camp", "ui-camp-b"], "ui-merged"
        )
        assert merged.n_experiments == 20
        assert set(merged.location_patterns) == {
            "scan:internal/cpu.regfile.*",
            "scan:internal/cpu.psr",
        }
        assert "ui-merged" in db.list_campaigns()

    def test_saved_campaign_runs(self, window, db, thor_target):
        window.save()
        campaign = db.load_campaign("ui-camp")
        sink = thor_target.run_campaign(campaign, sink=db)
        assert db.count_experiments("ui-camp") == 12
