"""The ``goofi analyze`` CLI: reports, --json, diffing and --gate."""

import json

import pytest

from repro.core.experiment import Injection, Termination
from repro.core.locations import FaultLocation
from repro.db import GoofiDatabase
from repro.ui.app import main
from tests.conftest import make_campaign
from tests.db.test_database import make_reference, make_result


def _result(i, detected):
    termination = (
        Termination(kind="trap", pc=1, cycle=50, trap_name="wdog")
        if detected
        else Termination(kind="timeout", pc=2, cycle=999)
    )
    return make_result(
        i,
        termination=termination,
        injections=[
            Injection(
                time=i % 90,
                location=FaultLocation(
                    "scan:internal", f"cpu.regfile.r{i % 4}", i % 8
                ),
                op="flip",
                bit_before=0,
                bit_after=1,
            )
        ],
    )


def _write_db(path, detected_count, total, **campaign_kw):
    """A campaign database where the first ``detected_count`` of
    ``total`` effective experiments were detected. With identical
    ``campaign_kw`` two databases carry the same config hash."""
    campaign = make_campaign(n_experiments=total, **campaign_kw)
    with GoofiDatabase(str(path)) as db:
        db.save_campaign(campaign)
        db.log_reference(campaign, make_reference())
        db.log_experiments(
            campaign,
            [_result(i, detected=i < detected_count) for i in range(total)],
        )
    return str(path)


class TestAnalyzeCommand:
    def test_report_over_synthetic_campaign(self, tmp_path, capsys):
        db = _write_db(tmp_path / "a.db", 40, 100)
        assert main(["analyze", "--db", db, "--campaign",
                     "test-campaign"]) == 0
        out = capsys.readouterr().out
        assert "detection coverage" in out
        assert "Clopper-Pearson" in out
        assert "stopping advice" in out

    def test_json_report_round_trips(self, tmp_path, capsys):
        db = _write_db(tmp_path / "a.db", 40, 100)
        assert main(["analyze", "--db", db, "--campaign", "test-campaign",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 100
        assert payload["stopping"]["successes"] == 40
        assert payload["detection_coverage"]["estimate"] == pytest.approx(
            0.4
        )

    def test_missing_campaign_exits_1(self, tmp_path, capsys):
        db = _write_db(tmp_path / "a.db", 2, 4)
        assert main(["analyze", "--db", db, "--campaign", "ghost"]) == 1
        assert "goofi: error:" in capsys.readouterr().err

    def test_half_width_controls_stopping(self, tmp_path, capsys):
        db = _write_db(tmp_path / "a.db", 40, 100)
        assert main(["analyze", "--db", db, "--campaign", "test-campaign",
                     "--half-width", "0.4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stopping"]["satisfied"] is True


class TestAnalyzeGate:
    def test_gate_fails_on_injected_regression_same_config_hash(
        self, tmp_path, capsys
    ):
        # Two runs of the byte-identical campaign spec (same config
        # hash), where the fresh run's detections collapsed.
        base = _write_db(tmp_path / "base.db", 80, 100)
        fresh = _write_db(tmp_path / "fresh.db", 30, 100)
        code = main(["analyze", "--db", fresh, "--campaign", "test-campaign",
                     "--diff", "test-campaign", "--diff-db", base, "--gate"])
        captured = capsys.readouterr()
        assert code == 1
        assert "identical" in captured.out  # hashes matched
        assert "verdict: REGRESSION" in captured.out
        assert "regressed vs" in captured.err

    def test_gate_passes_on_identical_runs(self, tmp_path, capsys):
        base = _write_db(tmp_path / "base.db", 40, 100)
        fresh = _write_db(tmp_path / "fresh.db", 40, 100)
        assert main(["analyze", "--db", fresh, "--campaign", "test-campaign",
                     "--diff", "test-campaign", "--diff-db", base,
                     "--gate"]) == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_changed_config_reports_delta_and_never_gates(
        self, tmp_path, capsys
    ):
        base = _write_db(tmp_path / "base.db", 80, 100)
        fresh = _write_db(tmp_path / "fresh.db", 30, 100, seed=777)
        assert main(["analyze", "--db", fresh, "--campaign", "test-campaign",
                     "--diff", "test-campaign", "--diff-db", base,
                     "--gate"]) == 0
        out = capsys.readouterr().out
        assert "DIFFERENT" in out
        assert "seed" in out
        assert "configs differ" in out

    def test_gate_without_diff_is_a_usage_error(self, tmp_path, capsys):
        db = _write_db(tmp_path / "a.db", 2, 4)
        assert main(["analyze", "--db", db, "--campaign", "test-campaign",
                     "--gate"]) == 2
        assert "--gate needs --diff" in capsys.readouterr().err

    def test_diff_json_payload(self, tmp_path, capsys):
        base = _write_db(tmp_path / "base.db", 80, 100)
        fresh = _write_db(tmp_path / "fresh.db", 30, 100)
        assert main(["analyze", "--db", fresh, "--campaign", "test-campaign",
                     "--diff", "test-campaign", "--diff-db", base,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["same_config"] is True
        assert payload["regressed"] is True
        assert payload["outcome_delta"]["detected"]["base_count"] == 80
