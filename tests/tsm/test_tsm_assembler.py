"""Unit tests for the TSM mini-assembler and board."""

import pytest

from repro.thor.testcard import DebugEventKind
from repro.tsm.assembler import assemble_tsm
from repro.tsm.board import TsmBoard
from repro.tsm.machine import TsmOp, decode
from repro.util.errors import AssemblerError, TargetError


class TestAssembler:
    def test_labels_and_jumps(self):
        program = assemble_tsm("start:\n jmp end\n nop\nend: halt\n")
        op, operand = decode(program.words[program.entry])
        assert op is TsmOp.JMP
        assert operand == program.symbols["end"]

    def test_word_directive(self):
        program = assemble_tsm("v: word 0x123\n")
        assert program.words[program.symbols["v"]] == 0x123
        assert program.kinds[program.symbols["v"]] == "data"

    def test_negative_pushi(self):
        program = assemble_tsm("start: pushi -1\nhalt\n")
        op, operand = decode(program.words[program.entry])
        assert op is TsmOp.PUSHI
        assert operand == 0x3FF  # sign-extended -1 in 10 bits

    def test_pushi_range_checked(self):
        with pytest.raises(AssemblerError):
            assemble_tsm("start: pushi 512\n")
        assemble_tsm("start: pushi 511\n")
        assemble_tsm("start: pushi -512\n")

    def test_operand_range_checked(self):
        with pytest.raises(AssemblerError):
            assemble_tsm("start: jmp 1024\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_tsm("start: fly\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_tsm("a: nop\na: nop\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_tsm("start: jmp void\n")

    def test_stray_operand_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_tsm("start: dup 3\n")

    def test_comments_and_blank_lines(self):
        program = assemble_tsm("; header\n\nstart: halt ; done\n")
        assert len(program.words) == 1

    def test_entry_defaults_to_origin(self):
        program = assemble_tsm("nop\nhalt\n", origin=0x40)
        assert program.entry == 0x40


class TestBoard:
    def test_run_to_halt(self):
        board = TsmBoard()
        board.init()
        board.load_program(assemble_tsm("start:\n pushi 3\n storei v\n halt\nv: word 0\n"))
        event = board.run(timeout_cycles=1000)
        assert event.kind is DebugEventKind.HALT
        assert board.read_memory(board.program.symbols["v"]) == 3

    def test_stop_cycle_breakpoint_and_resume(self):
        board = TsmBoard()
        board.init()
        board.load_program(assemble_tsm(
            "start:\n pushi 1\n pushi 2\n add\n storei v\n halt\nv: word 0\n"
        ))
        event = board.run(timeout_cycles=1000, stop_cycle=2)
        assert event.kind is DebugEventKind.BREAKPOINT
        event = board.run(timeout_cycles=1000)
        assert event.kind is DebugEventKind.HALT

    def test_timeout(self):
        board = TsmBoard()
        board.init()
        board.load_program(assemble_tsm("start:\nloop: jmp loop\n"))
        event = board.run(timeout_cycles=100)
        assert event.kind is DebugEventKind.TIMEOUT

    def test_scan_chain_round_trip(self):
        board = TsmBoard()
        board.init()
        board.load_program(assemble_tsm("start:\n pushi 5\n halt\n"))
        board.run(timeout_cycles=100, stop_cycle=1)
        bits = board.read_chain("internal")
        board.write_chain("internal", bits)
        assert board.read_chain("internal") == bits

    def test_scan_write_changes_stack_cell(self):
        board = TsmBoard()
        board.init()
        board.load_program(assemble_tsm("start:\n pushi 5\n storei v\n halt\nv: word 0\n"))
        board.run(timeout_cycles=100, stop_cycle=1)  # after pushi
        chain = board.chain("internal")
        bits = board.read_chain("internal")
        offset = chain.bit_offset("tsm.dstack.s0", 1)
        bits[offset] ^= 1
        board.write_chain("internal", bits)
        board.run(timeout_cycles=1000)
        assert board.read_memory(board.program.symbols["v"]) == 5 ^ 2

    def test_unknown_chain_rejected(self):
        board = TsmBoard()
        with pytest.raises(TargetError):
            board.read_chain("boundary")

    def test_run_after_halt_rejected(self):
        board = TsmBoard()
        board.init()
        board.load_program(assemble_tsm("start: halt\n"))
        board.run(timeout_cycles=100)
        with pytest.raises(TargetError):
            board.run(timeout_cycles=100)
