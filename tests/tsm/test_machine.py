"""Unit tests for the TSM-1 stack machine."""

import pytest

from repro.thor.traps import Trap
from repro.tsm.assembler import assemble_tsm
from repro.tsm.machine import TsmConfig, TsmHalted, TsmMachine, TsmOp, decode, encode


def run(source, config=None, max_steps=100000):
    machine = TsmMachine(config)
    program = assemble_tsm(source)
    machine.load_image(program.words)
    machine.reset(entry=program.entry)
    event = None
    for _ in range(max_steps):
        event = machine.step()
        if event is not None and event.kind in ("halt", "trap"):
            break
    return machine, program, event


class TestEncoding:
    def test_round_trip(self):
        word = encode(TsmOp.PUSHI, 0x155)
        op, operand = decode(word)
        assert op is TsmOp.PUSHI
        assert operand == 0x155

    def test_illegal_opcode_decodes_none(self):
        op, _ = decode(0x3F << 10)
        assert op is None

    def test_operand_range_checked(self):
        with pytest.raises(ValueError):
            encode(TsmOp.JMP, 1 << 10)


class TestStackOps:
    def test_pushi_and_arith(self):
        machine, program, event = run(
            "start:\n pushi 6\n pushi 7\n mul\n storei out\n halt\nout: word 0\n"
        )
        assert event.kind == "halt"
        assert machine.memory[program.symbols["out"]] == 42

    def test_negative_immediate(self):
        machine, program, _ = run(
            "start:\n pushi -3\n pushi 5\n add\n storei out\n halt\nout: word 0\n"
        )
        assert machine.memory[program.symbols["out"]] == 2

    def test_dup_swap_over_drop(self):
        machine, program, _ = run(
            "start:\n pushi 1\n pushi 2\n over\n"  # 1 2 1
            " add\n"                                # 1 3
            " swap\n"                               # 3 1
            " dup\n drop\n"                         # 3 1
            " sub\n storei out\n halt\nout: word 0\n"
        )
        assert machine.memory[program.symbols["out"]] == 2  # 3-1

    def test_load_store_indirect(self):
        machine, program, _ = run(
            "start:\n pushi 9\n pushi v\n store\n"
            " pushi v\n load\n storei out\n halt\n"
            "v: word 0\nout: word 0\n"
        )
        assert machine.memory[program.symbols["out"]] == 9

    def test_div_truncates(self):
        machine, program, _ = run(
            "start:\n pushi -7\n pushi 2\n div\n storei out\n halt\nout: word 0\n"
        )
        assert machine.memory[program.symbols["out"]] == (-3) & 0xFFFFFFFF


class TestControlFlow:
    def test_jz_taken(self):
        machine, program, _ = run(
            "start:\n pushi 0\n jz skip\n pushi 1\n storei out\nskip: halt\n"
            "out: word 0\n"
        )
        assert machine.memory[program.symbols["out"]] == 0

    def test_jnz_taken(self):
        machine, program, _ = run(
            "start:\n pushi 5\n jnz skip\n pushi 1\n storei out\nskip: halt\n"
            "out: word 0\n"
        )
        assert machine.memory[program.symbols["out"]] == 0

    def test_call_ret(self):
        machine, program, _ = run(
            "start:\n call sub\n storei out\n halt\n"
            "sub:\n pushi 11\n ret\nout: word 0\n"
        )
        assert machine.memory[program.symbols["out"]] == 11

    def test_sync_counts(self):
        machine, _, _ = run("start:\n sync\n sync\n halt\n")
        assert machine.iterations == 2


class TestErrorDetection:
    def test_data_stack_underflow(self):
        _, _, event = run("start:\n drop\n halt\n")
        assert event.kind == "trap"
        assert event.trap.detail == "data-stack underflow"

    def test_data_stack_overflow(self):
        source = "start:\n" + " pushi 1\n" * 17 + " halt\n"
        _, _, event = run(source)
        assert event.trap.detail == "data-stack overflow"

    def test_return_stack_overflow_on_runaway_recursion(self):
        _, _, event = run("start:\nloop: call loop\n")
        assert event.trap.detail == "return-stack overflow"

    def test_return_stack_underflow(self):
        _, _, event = run("start:\n ret\n")
        assert event.trap.detail == "return-stack underflow"

    def test_illegal_opcode(self):
        machine = TsmMachine()
        machine.memory[0x10] = 0x3F << 10
        machine.reset(entry=0x10)
        event = machine.step()
        assert event.trap.trap is Trap.ILLEGAL_OPCODE

    def test_illegal_load_address(self):
        _, _, event = run("start:\n pushi 511\n dup\n mul\n load\n halt\n")
        # 511*511 = 261121 > 4096
        assert event.trap.trap is Trap.ILLEGAL_ADDRESS

    def test_div_by_zero(self):
        _, _, event = run("start:\n pushi 4\n pushi 0\n div\n halt\n")
        assert event.trap.trap is Trap.DIV_ZERO

    def test_watchdog(self):
        _, _, event = run(
            "start:\nloop: jmp loop\n",
            config=TsmConfig(watchdog_cycles=50),
        )
        assert event.trap.trap is Trap.WATCHDOG

    def test_step_after_halt_raises(self):
        machine, _, _ = run("start:\n halt\n")
        with pytest.raises(TsmHalted):
            machine.step()


class TestInjectedFaults:
    def test_sp_flip_can_cause_underflow(self):
        """The machine's signature EDM: corrupting SP upward past live
        entries makes a later pop read garbage, corrupting it to 0 while
        entries are live makes the next pop underflow."""
        machine = TsmMachine()
        program = assemble_tsm(
            "start:\n pushi 1\n pushi 2\n add\n storei out\n halt\nout: word 0\n"
        )
        machine.load_image(program.words)
        machine.reset(entry=program.entry)
        machine.step()  # pushi 1
        machine.step()  # pushi 2
        machine.sp = 0  # injected flip clears the live entries
        event = machine.step()  # add underflows
        assert event.trap.detail == "data-stack underflow"

    def test_rstack_flip_redirects_return(self):
        machine = TsmMachine()
        program = assemble_tsm(
            "start:\n call sub\n halt\n"
            "sub:\n pushi 1\n ret\n"
        )
        machine.load_image(program.words)
        machine.reset(entry=program.entry)
        machine.step()  # call
        machine.rstack[0] ^= 1 << 1  # flip a return-address bit
        machine.step()  # pushi
        machine.step()  # ret -> corrupted address
        assert machine.pc == (program.symbols["start"] + 1) ^ 2
