"""Detail tests for the TSM interface: observe fallback, workload
registry exposure, detail logging and fault-list preview on the second
target."""

import pytest

from repro.core import create_target
from repro.core.campaign import CampaignData


def tsm_campaign(**overrides):
    defaults = dict(
        campaign_name="tsm-detail",
        target_name="tsm-1",
        technique="scifi",
        workload_name="sumsq",
        location_patterns=["scan:internal/tsm.dstack.*"],
        n_experiments=5,
        seed=81,
    )
    defaults.update(overrides)
    return CampaignData(**defaults)


class TestObserveFallback:
    def test_default_observe_patterns_fall_back_to_internal_chain(self):
        # CampaignData's default observe patterns name Thor cells; the
        # TSM port must fall back to observing its own chain.
        target = create_target("tsm-1")
        sink = target.run_campaign(tsm_campaign())
        vector = sink.reference.state_vector
        assert any("tsm.dstack" in key for key in vector)
        assert any("tsm.pc" in key for key in vector)

    def test_explicit_observe_patterns_respected(self):
        target = create_target("tsm-1")
        campaign = tsm_campaign(
            observe_patterns=["scan:internal/tsm.sp", "scan:internal/tsm.pc"]
        )
        sink = target.run_campaign(campaign)
        assert set(sink.reference.state_vector) == {
            "scan:internal/tsm.sp",
            "scan:internal/tsm.pc",
        }


class TestWorkloadRegistryExposure:
    def test_available_workloads(self):
        target = create_target("tsm-1")
        assert target.available_workloads() == ["countloop", "factorial",
                                                "sumsq"]

    def test_thor_exposes_full_registry(self):
        from repro.workloads import available_workloads

        target = create_target("thor-rd")
        assert target.available_workloads() == available_workloads()


class TestSecondTargetFeatures:
    def test_detail_logging_on_tsm(self):
        target = create_target("tsm-1")
        sink = target.run_campaign(tsm_campaign(logging_mode="detail"))
        assert len(sink.reference.detail_states) > 10
        for result in sink.results:
            assert result.detail_states

    def test_preview_on_tsm_matches_run(self):
        campaign = tsm_campaign(n_experiments=4)
        previews = create_target("tsm-1").preview_fault_list(campaign, 4)
        sink = create_target("tsm-1").run_campaign(campaign)
        for preview, result in zip(previews, sink.results):
            assert [a["time"] for a in preview["actions"]] == [
                injection.time for injection in result.injections
            ]

    def test_intermittent_model_on_tsm(self):
        from repro.core.campaign import FaultModelSpec

        target = create_target("tsm-1")
        campaign = tsm_campaign(
            fault_model=FaultModelSpec(kind="intermittent", burst_length=2,
                                       burst_spacing=5),
        )
        sink = target.run_campaign(campaign)
        assert any(len(result.injections) == 2 for result in sink.results)
