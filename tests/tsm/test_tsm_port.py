"""Tests for the TSM-1 port: the paper's adaptation contract, verified on
a second, architecturally different target."""

import pytest

from repro.analysis import classify_campaign
from repro.core import CampaignData, create_target
from repro.core.framework import missing_blocks, supported_techniques
from repro.db import GoofiDatabase
from repro.db.autoanalysis import run_auto_analysis
from repro.tsm.interface import TsmInterface
from repro.tsm.workloads import available_tsm_workloads, get_tsm_workload
from repro.util.errors import CampaignError


def tsm_campaign(**overrides):
    defaults = dict(
        campaign_name="tsm-test",
        target_name="tsm-1",
        technique="scifi",
        workload_name="sumsq",
        location_patterns=["scan:internal/tsm.dstack.*",
                           "scan:internal/tsm.sp"],
        n_experiments=10,
        seed=64,
    )
    defaults.update(overrides)
    return CampaignData(**defaults)


class TestPartialPortContract:
    def test_supports_exactly_scifi_and_swifi_pre(self):
        assert supported_techniques(TsmInterface) == ["scifi", "swifi-pre"]

    def test_missing_blocks_for_runtime_swifi(self):
        missing = missing_blocks(TsmInterface, "swifi-runtime")
        assert "instrument_workload" in missing

    def test_unsupported_technique_fails_at_use(self):
        target = create_target("tsm-1")
        campaign = tsm_campaign(
            technique="swifi-runtime",
            location_patterns=["memory:code/*"],
        )
        from repro.util.errors import NotImplementedByPort

        with pytest.raises(NotImplementedByPort):
            target.run_campaign(campaign)


class TestTsmCampaigns:
    def test_scifi_campaign_runs(self):
        target = create_target("tsm-1")
        sink = target.run_campaign(tsm_campaign(n_experiments=15))
        assert len(sink.results) == 15
        assert sink.reference.outputs["result"] == 385

    def test_swifi_pre_campaign_detects_stack_faults(self):
        target = create_target("tsm-1")
        campaign = tsm_campaign(
            technique="swifi-pre",
            location_patterns=["memory:code/*", "memory:data/*"],
            n_experiments=40,
            seed=66,
        )
        sink = target.run_campaign(campaign)
        summary = classify_campaign(sink.results, sink.reference)
        # Code-image corruption on a stack machine trips the stack-bound
        # or illegal-opcode EDMs for some experiments.
        assert summary.detected > 0

    def test_sp_injection_space_is_live(self):
        """Flipping the stack pointer while entries are live is a high-
        effectiveness fault class — the TSM equivalent of PC faults."""
        target = create_target("tsm-1")
        campaign = tsm_campaign(
            location_patterns=["scan:internal/tsm.sp",
                               "scan:internal/tsm.rsp",
                               "scan:internal/tsm.pc"],
            n_experiments=40,
            seed=67,
        )
        sink = target.run_campaign(campaign)
        summary = classify_campaign(sink.results, sink.reference)
        assert summary.effective > 0

    def test_database_and_analysis_work_unmodified(self, db):
        """Layer separation (Figure 1): the database and analysis layers
        serve the new target with zero changes."""
        target = create_target("tsm-1")
        campaign = tsm_campaign(n_experiments=8)
        db.save_target("tsm-1", target.describe_target())
        target.run_campaign(campaign, sink=db)
        assert db.count_experiments("tsm-test") == 8
        report = run_auto_analysis(db, "tsm-test")
        assert "detection coverage" in report
        assert db.load_target("tsm-1")["data_stack_depth"] == 16

    def test_reproducible(self):
        def run():
            sink = create_target("tsm-1").run_campaign(
                tsm_campaign(n_experiments=6, seed=99)
            )
            return [
                (r.termination.kind, [i.to_dict() for i in r.injections])
                for r in sink.results
            ]

        assert run() == run()

    def test_loop_workload_iteration_bound(self):
        target = create_target("tsm-1")
        campaign = tsm_campaign(workload_name="countloop", n_experiments=4)
        sink = target.run_campaign(campaign)
        assert sink.reference.termination.kind == "max_iterations"
        assert sink.reference.outputs["counter"] == 20


class TestTsmWorkloads:
    @pytest.mark.parametrize("name", ["sumsq", "factorial"])
    def test_golden_outputs(self, name):
        from repro.tsm.board import TsmBoard

        workload = get_tsm_workload(name)
        board = TsmBoard()
        board.init()
        board.load_program(workload.program)
        event = board.run(timeout_cycles=10**6)
        for key, (base, _) in workload.outputs.items():
            if key in workload.expected:
                assert board.read_memory(base) == workload.expected[key][0]

    def test_registry(self):
        assert set(available_tsm_workloads()) == {
            "sumsq", "factorial", "countloop"
        }
        with pytest.raises(Exception):
            get_tsm_workload("quake")


class TestUiOnSecondTarget:
    def test_config_window_renders_tsm(self, db):
        from repro.ui import TargetConfigurationWindow

        target = create_target("tsm-1")
        window = TargetConfigurationWindow(target, db)
        text = window.render()
        assert "tsm.dstack.s0" in text
        assert "tsm.cycle_counter" in text
        window.save()
        assert "tsm-1" in db.list_targets()

    def test_campaign_window_tree_for_tsm(self):
        from repro.ui import CampaignSetupWindow

        window = CampaignSetupWindow()
        window.select_target("tsm-1")
        window.set_workload("sumsq")
        tree = window.location_tree()
        assert "dstack" in tree

    def test_workload_validation_is_target_aware(self):
        from repro.ui import CampaignSetupWindow
        from repro.util.errors import ConfigurationError

        window = CampaignSetupWindow()
        window.select_target("tsm-1")
        with pytest.raises(ConfigurationError):
            window.set_workload("bubblesort")  # a Thor workload
