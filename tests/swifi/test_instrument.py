"""Tests for runtime-SWIFI trap instrumentation."""

import pytest

from repro.core.faultmodels import InjectionAction, InjectionPlan
from repro.core.locations import FaultLocation
from repro.core.trace import Trace, TraceStep
from repro.swifi.instrument import SWIFI_TRAP_CODE, TrapInstrumenter, _trap_word
from repro.thor.assembler import assemble
from repro.thor.testcard import DebugEventKind, TestCard

COUNT_PROGRAM = """
start:
    ldi r1, 0
    ldi r2, 0
loop:
    addi r1, r1, 1
    addi r2, r2, 2
    cmpi r1, 5
    blt loop
    ldi r3, out
    st  r1, [r3+0]
    st  r2, [r3+1]
    halt
out:
    .space 2
"""


def traced_run(source):
    """Run once collecting a minimal trace (pc + cycles)."""
    card = TestCard()
    card.init()
    program = assemble(source)
    card.load_program(program)
    trace = Trace()
    prev = [0]

    def hook(c):
        trace.append(
            TraceStep(
                index=len(trace),
                pc=c.cpu.last_exec.pc,
                cycle_before=prev[0],
                cycle_after=c.cpu.cycles,
            )
        )
        prev[0] = c.cpu.cycles

    card.on_step = hook
    card.run(timeout_cycles=10**6)
    return program, trace


def fresh_card(program):
    card = TestCard()
    card.init()
    card.load_program(program)
    return card


def reg_location(n, bit):
    return FaultLocation("swreg", f"cpu.regfile.r{n}", bit)


class TestInstrumentation:
    def test_trap_planted_and_restored(self):
        program, trace = traced_run(COUNT_PROGRAM)
        card = fresh_card(program)
        instrumenter = TrapInstrumenter(card)
        target_step = trace.steps[4]
        plan = InjectionPlan(
            [InjectionAction(time=target_step.cycle_before,
                             locations=(reg_location(1, 5),))]
        )
        instrumenter.instrument(plan, trace)
        assert card.read_memory(target_step.pc) == _trap_word()
        card.trap_hook = instrumenter.handle_trap
        card.on_step = instrumenter.on_step
        event = card.run(timeout_cycles=10**6)
        assert event.kind is DebugEventKind.HALT
        # Original instruction restored after servicing.
        assert card.read_memory(target_step.pc) == program.words[target_step.pc]

    def test_injection_recorded_and_applied(self):
        program, trace = traced_run(COUNT_PROGRAM)
        card = fresh_card(program)
        instrumenter = TrapInstrumenter(card)
        # Flip bit 5 of r1 mid-loop; the loop exit condition changes, so
        # outputs must differ from the fault-free run.
        mid = trace.duration_cycles // 2
        plan = InjectionPlan(
            [InjectionAction(time=mid, locations=(reg_location(1, 5),))]
        )
        instrumenter.instrument(plan, trace)
        card.trap_hook = instrumenter.handle_trap
        card.on_step = instrumenter.on_step
        card.run(timeout_cycles=10**6)
        assert len(instrumenter.injections) == 1
        injection = instrumenter.injections[0]
        assert injection.location.path == "cpu.regfile.r1"
        assert injection.bit_before != injection.bit_after

    def test_occurrence_targeting_skips_early_hits(self):
        program, trace = traced_run(COUNT_PROGRAM)
        # The loop body address executes 5 times; target the 3rd.
        loop_pc = program.symbols["loop"]
        occurrences = trace.executions_of(loop_pc)
        assert len(occurrences) == 5
        third = occurrences[2]
        card = fresh_card(program)
        instrumenter = TrapInstrumenter(card)
        plan = InjectionPlan(
            [InjectionAction(time=third.cycle_before,
                             locations=(reg_location(2, 0),))]
        )
        instrumenter.instrument(plan, trace)
        card.trap_hook = instrumenter.handle_trap
        card.on_step = instrumenter.on_step
        card.run(timeout_cycles=10**6)
        assert len(instrumenter.injections) == 1
        # Injection happened at the third occurrence: r2 had been
        # incremented twice (value 4), so bit 0 stays 0 -> flip sets 1.
        planted = instrumenter._planted[loop_pc]
        assert planted.hits == 3

    def test_memory_location_injection(self):
        program, trace = traced_run(COUNT_PROGRAM)
        card = fresh_card(program)
        instrumenter = TrapInstrumenter(card)
        out = program.symbols["out"]
        location = FaultLocation("memory:data", f"word.0x{out:04x}", 0)
        plan = InjectionPlan(
            [InjectionAction(time=trace.duration_cycles - 1,
                             locations=(location,))]
        )
        instrumenter.instrument(plan, trace)
        card.trap_hook = instrumenter.handle_trap
        card.on_step = instrumenter.on_step
        card.run(timeout_cycles=10**6)
        assert len(instrumenter.injections) == 1

    def test_foreign_trap_not_consumed(self):
        program = assemble("trap 7\nhalt\n")
        card = fresh_card(program)
        instrumenter = TrapInstrumenter(card)
        card.trap_hook = instrumenter.handle_trap
        event = card.run(timeout_cycles=1000)
        assert event.kind is DebugEventKind.TRAP
        assert event.trap.code == 7


class TestCampaignLevel:
    def test_runtime_campaign_results_reproducible(self, thor_target):
        from tests.conftest import make_campaign

        campaign = make_campaign(
            technique="swifi-runtime",
            location_patterns=["swreg/cpu.regfile.*"],
            n_experiments=8,
            seed=13,
        )
        sink1 = thor_target.run_campaign(campaign)
        from repro.core import create_target

        sink2 = create_target("thor-rd").run_campaign(campaign)
        assert [
            [i.to_dict() for i in r.injections] for r in sink1.results
        ] == [[i.to_dict() for i in r.injections] for r in sink2.results]
