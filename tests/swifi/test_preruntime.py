"""Tests for pre-runtime SWIFI."""

import pytest

from repro.swifi.preruntime import flip_image_bit
from repro.thor.assembler import assemble
from repro.thor.testcard import TestCard


@pytest.fixture
def loaded_card():
    card = TestCard()
    card.init()
    card.load_program(assemble("start: ldi r1, 5\nhalt\nv: .word 0xF0\n"))
    return card


class TestFlipImageBit:
    def test_flip(self, loaded_card):
        address = 0x102  # the data word
        before, after = flip_image_bit(loaded_card, address, 0)
        assert (before, after) == (0, 1)
        assert loaded_card.read_memory(address) == 0xF1

    def test_stuck_at_zero(self, loaded_card):
        address = 0x102
        before, after = flip_image_bit(loaded_card, address, 4, op="stuck0")
        assert (before, after) == (1, 0)
        assert loaded_card.read_memory(address) == 0xE0

    def test_stuck_at_same_value_noop(self, loaded_card):
        address = 0x102
        before, after = flip_image_bit(loaded_card, address, 4, op="stuck1")
        assert (before, after) == (1, 1)
        assert loaded_card.read_memory(address) == 0xF0

    def test_flip_in_code_changes_behaviour(self, loaded_card):
        # Flip the lowest immediate bit of "ldi r1, 5" -> "ldi r1, 4".
        flip_image_bit(loaded_card, 0x100, 0)
        loaded_card.run(timeout_cycles=1000)
        assert loaded_card.cpu.regs[1] == 4


class TestCampaignLevel:
    def test_preruntime_faults_land_before_execution(self, thor_target):
        from tests.conftest import make_campaign

        campaign = make_campaign(
            technique="swifi-pre",
            location_patterns=["memory:data/*"],
            workload_name="bubblesort",
            n_experiments=10,
            seed=21,
        )
        sink = thor_target.run_campaign(campaign)
        for result in sink.results:
            assert all(injection.time == 0 for injection in result.injections)

    def test_data_flip_often_escapes(self, thor_target):
        """Flipping high bits of input data must corrupt the checksum —
        value escapes are common for data-area injections."""
        from repro.analysis import Outcome, classify_campaign
        from tests.conftest import make_campaign

        campaign = make_campaign(
            technique="swifi-pre",
            location_patterns=["memory:data/*"],
            workload_name="bubblesort",
            n_experiments=30,
            seed=8,
        )
        sink = thor_target.run_campaign(campaign)
        summary = classify_campaign(sink.results, sink.reference)
        assert summary.count(Outcome.ESCAPED_VALUE) > 0
