"""Setup shim for environments without the ``wheel`` package.

Offline hosts with older setuptools cannot build PEP 660 editable wheels;
``pip install -e . --no-build-isolation`` falls back to this legacy path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
