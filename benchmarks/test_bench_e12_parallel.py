"""E12 — parallel campaign execution (serial vs N-worker wall time).

Regenerates: the companion scaling study for the sharded multiprocessing
campaign runner (``repro.core.parallel``). One SWIFI pre-runtime
campaign is executed twice — serially through the classic
``run_campaign`` path and in parallel through ``run_parallel_campaign``
with ``E12_WORKERS`` workers (default 4) — against file-backed GOOFI
databases, and the logged ``LoggedSystemState`` experiment rows are
compared byte-for-byte (modulo the wall-clock field).

Shapes asserted:

* the parallel run logs *exactly* the rows the serial run logs — the
  per-experiment RNG substream contract makes sharding invisible;
* every experiment terminates (none dropped by the pool plumbing);
* on hosts with >= 2 usable cores, 4 workers deliver >= 2x wall-clock
  speedup (the paper-style acceptance number; skipped on single-core
  CI boxes where the pool can only interleave).

Environment knobs:

* ``E12_FULL=1``      run the full 1000-experiment acceptance campaign
                      (default 200 to keep the suite quick);
* ``E12_WORKERS=N``   worker count for the parallel leg (default 4).

Emits ``BENCH_e12_parallel.json`` next to the repo root.
"""

import multiprocessing
import os
import time

import pytest

from benchmarks.conftest import FULL_SCALE, scaled, write_bench_json
from repro.core import CampaignData, create_target, worker_factory
from repro.core.parallel import (
    ParallelConfig,
    canonical_experiment_rows,
    run_parallel_campaign,
)
from repro.db import GoofiDatabase

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the parallel benchmark needs the fork start method",
)

N_EXPERIMENTS = 1000 if os.environ.get("E12_FULL") == "1" else scaled(200)
N_WORKERS = int(os.environ.get("E12_WORKERS", "4"))


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _make_campaign():
    return CampaignData(
        campaign_name="e12-parallel-swifi",
        target_name="thor-rd",
        technique="swifi-pre",
        workload_name="vecsum",
        location_patterns=["memory:data/*"],
        n_experiments=N_EXPERIMENTS,
        seed=1212,
    )


def test_bench_e12_parallel(benchmark, tmp_path):
    campaign = _make_campaign()

    def body():
        serial_db = GoofiDatabase(str(tmp_path / "serial.db"))
        t0 = time.perf_counter()
        create_target(campaign.target_name).run_campaign(
            campaign, sink=serial_db
        )
        serial_seconds = time.perf_counter() - t0

        parallel_db = GoofiDatabase(str(tmp_path / "parallel.db"))
        t0 = time.perf_counter()
        run_parallel_campaign(
            campaign,
            worker_factory(campaign.target_name),
            sink=parallel_db,
            config=ParallelConfig(
                n_workers=N_WORKERS, start_method="fork"
            ),
        )
        parallel_seconds = time.perf_counter() - t0

        serial_rows = canonical_experiment_rows(
            serial_db, campaign.campaign_name
        )
        parallel_rows = canonical_experiment_rows(
            parallel_db, campaign.campaign_name
        )
        serial_db.close()
        parallel_db.close()
        return serial_rows, parallel_rows, serial_seconds, parallel_seconds

    serial_rows, parallel_rows, serial_seconds, parallel_seconds = (
        benchmark.pedantic(body, rounds=1, iterations=1)
    )

    cores = _usable_cores()
    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print()
    print(
        f"E12: serial vs {N_WORKERS}-worker parallel SWIFI campaign "
        f"({N_EXPERIMENTS} experiments, {cores} usable core(s))"
    )
    print(f"  serial:   {serial_seconds:8.3f} s")
    print(f"  parallel: {parallel_seconds:8.3f} s   speedup {speedup:.2f}x")

    write_bench_json(
        "e12_parallel",
        {
            "n_experiments": N_EXPERIMENTS,
            "n_workers": N_WORKERS,
            "usable_cores": cores,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "rows_identical": serial_rows == parallel_rows,
        },
    )

    # Byte-identical logged rows: the acceptance criterion proper.
    assert len(serial_rows) == N_EXPERIMENTS
    assert serial_rows == parallel_rows

    # Wall-clock acceptance number, only meaningful with real cores to
    # spread over and full-sized campaigns (pool startup dominates tiny
    # ones); single-core CI boxes can merely interleave.
    if FULL_SCALE and cores >= 2 and N_WORKERS >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {N_WORKERS} workers on {cores} "
            f"cores, measured {speedup:.2f}x"
        )
