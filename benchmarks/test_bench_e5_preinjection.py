"""E5 — pre-injection analysis (paper Section 4).

Regenerates: the efficiency gain of the announced pre-injection-analysis
extension — "injecting a fault into a location that does not hold live
data serves no purpose, since the fault will be overwritten".

Two identical register-file campaigns, one sampling (location, time)
uniformly, one filtered through the liveness oracle built from the
reference trace.

Shapes asserted: the live-filtered campaign produces a markedly higher
effective-error fraction and a markedly lower overwritten fraction; the
liveness oracle itself reports a small live fraction for uniform samples
(the headroom being exploited).
"""

from repro.analysis import Outcome
from repro.analysis.coverage import effectiveness_ratio
from benchmarks.conftest import (
    FULL_SCALE,
    print_comparison,
    run_campaign,
    scaled,
    write_bench_json,
)

N = scaled(150)


def _campaign(tag, preinjection):
    return dict(
        campaign_name=f"e5-{tag}",
        technique="scifi",
        workload_name="bubblesort",
        workload_params={"n": 12, "seed": 5},
        location_patterns=["scan:internal/cpu.regfile.*"],
        n_experiments=N,
        seed=505,
        use_preinjection=preinjection,
    )


def test_bench_e5_preinjection(benchmark):
    def body():
        random_run = run_campaign(**_campaign("random", False))
        live_run = run_campaign(**_campaign("live", True))
        return random_run, live_run

    (random_run, live_run) = benchmark.pedantic(body, rounds=1, iterations=1)
    _, random_sink, random_summary = random_run
    live_target, live_sink, live_summary = live_run

    print_comparison(
        ["random", "pre-injection"],
        [random_summary, live_summary],
        title="E5: uniform sampling vs pre-injection (liveness) analysis",
    )
    random_eff = effectiveness_ratio(random_summary)
    live_eff = effectiveness_ratio(live_summary)
    print()
    print(f"effectiveness (random):        {random_eff}")
    print(f"effectiveness (pre-injection): {live_eff}")
    gain = live_eff.estimate / max(random_eff.estimate, 1e-9)
    print(f"efficiency gain:               {gain:.2f}x")

    # The extension must pay off clearly; the 1.5x margin and the
    # overwritten-fraction ordering are statistical, so gated.
    assert live_eff.estimate > random_eff.estimate
    if FULL_SCALE:
        assert live_eff.estimate > 1.5 * random_eff.estimate
        # Overwritten faults are the ones pruned away.
        assert (
            live_summary.fraction(Outcome.OVERWRITTEN)
            < random_summary.fraction(Outcome.OVERWRITTEN)
        )

    write_bench_json(
        "e5_preinjection",
        {
            "n_experiments": N,
            "random_effectiveness": random_eff.estimate,
            "preinjection_effectiveness": live_eff.estimate,
            "efficiency_gain": gain,
        },
    )
