"""E7 — single vs multiple transient bit flips (paper Section 1:
"GOOFI is capable of injecting single or multiple transient bit-flip
faults").

Regenerates: the outcome distribution as fault multiplicity grows
(1, 2, 4 simultaneous flips per experiment), on register-file + D-cache
locations.

Shapes asserted:
* effectiveness grows monotonically-ish with multiplicity (more flips,
  more chances to hit live state) — asserted as m=4 strictly above m=1,
* undetected wrong results appear at higher multiplicity (even parity is
  blind to double flips inside one protected field).
"""

from benchmarks.conftest import (
    FULL_SCALE,
    print_comparison,
    run_campaign,
    scaled,
    write_bench_json,
)
from repro.core.campaign import FaultModelSpec

N = scaled(150)


def _run(multiplicity):
    return run_campaign(
        campaign_name=f"e7-m{multiplicity}",
        technique="scifi",
        workload_name="bubblesort",
        workload_params={"n": 12, "seed": 7},
        location_patterns=[
            "scan:internal/cpu.regfile.*",
            "scan:internal/dcache.*",
        ],
        fault_model=FaultModelSpec(kind="transient",
                                   multiplicity=multiplicity),
        n_experiments=N,
        seed=707,
    )


def test_bench_e7_multiplicity(benchmark):
    multiplicities = (1, 2, 4)
    outcomes = benchmark.pedantic(
        lambda: {m: _run(m) for m in multiplicities}, rounds=1, iterations=1
    )

    labels = [f"m={m}" for m in multiplicities]
    summaries = [outcomes[m][2] for m in multiplicities]
    print_comparison(labels, summaries,
                     title="E7: outcome mix vs fault multiplicity")
    print()
    print(f"{'multiplicity':>12s} {'effective':>10s} {'detected':>9s} "
          f"{'escaped':>8s}")
    for m in multiplicities:
        summary = outcomes[m][2]
        print(f"{m:>12d} {summary.effective:>10d} {summary.detected:>9d} "
              f"{summary.escaped:>8d}")

    eff = {m: outcomes[m][2].effective for m in multiplicities}
    assert eff[4] >= eff[1]
    if FULL_SCALE:
        assert eff[4] > eff[1]
    # Every experiment recorded the right number of injected bits.
    for m in multiplicities:
        sink = outcomes[m][1]
        assert all(len(r.injections) == m for r in sink.results)

    write_bench_json(
        "e7_multiplicity",
        {
            "n_experiments": N,
            "effective_by_multiplicity": {
                str(m): eff[m] for m in multiplicities
            },
        },
    )
