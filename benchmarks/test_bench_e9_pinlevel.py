"""E9 — pin-level fault injection (paper Section 2.1).

"By combining different abstract methods we can define algorithms for
fault injection techniques such as SCIFI, SWIFI or pin level fault
injection." This bench exercises the third family: EXTEST-style forcing
of data-bus pads armed through the boundary chain, compared against
SCIFI injections into the cache *arrays* on the same workload.

Shape asserted: array faults that are effective get caught by the cache
parity mechanism (parity is computed over the stored array); pin faults
corrupt words *before* parity is computed, so their effective outcomes
are dominated by undetected wrong results — the classic argument for
why parity does not protect against bus/pad faults.
"""

from repro.analysis import Outcome
from benchmarks.conftest import (
    FULL_SCALE,
    print_comparison,
    run_campaign,
    scaled,
    write_bench_json,
)

N = scaled(120)


def _run(tag, technique, patterns):
    return run_campaign(
        campaign_name=f"e9-{tag}",
        technique=technique,
        workload_name="bubblesort",
        workload_params={"n": 12, "seed": 9},
        location_patterns=patterns,
        n_experiments=N,
        seed=909,
    )


def test_bench_e9_pinlevel(benchmark):
    def body():
        return (
            _run("pins", "pinlevel", ["scan:boundary/pins.data_bus"]),
            _run("arrays", "scifi", ["scan:internal/dcache.*",
                                     "scan:internal/icache.*"]),
        )

    (pins, arrays) = benchmark.pedantic(body, rounds=1, iterations=1)
    _, pin_sink, pin_summary = pins
    _, array_sink, array_summary = arrays

    print_comparison(
        ["bus pins (pinlevel)", "cache arrays (scifi)"],
        [pin_summary, array_summary],
        title="E9: pin-level bus forcing vs cache-array injection",
    )

    # Cache-array faults: parity is the dominant detector.
    parity_detections = sum(
        count
        for name, count in array_summary.detections_by_mechanism.items()
        if name.endswith("_parity")
    )
    assert parity_detections > 0
    assert parity_detections >= 0.8 * array_summary.detected

    # Pin faults: invisible to parity (structural — holds at any scale).
    assert "dcache_parity" not in pin_summary.detections_by_mechanism
    assert "icache_parity" not in pin_summary.detections_by_mechanism

    pin_escape_rate = pin_summary.escaped / max(1, pin_summary.effective)
    array_escape_rate = array_summary.escaped / max(1, array_summary.effective)
    print()
    print(f"escape rate among effective faults: "
          f"pins {pin_escape_rate:.0%} vs arrays {array_escape_rate:.0%}")
    if FULL_SCALE:
        # Wrong results dominate pin-fault escapes and the escape-rate
        # ordering holds — statistical margins, gated to full campaigns.
        assert pin_summary.count(Outcome.ESCAPED_VALUE) > pin_summary.detected
        assert pin_escape_rate > array_escape_rate

    write_bench_json(
        "e9_pinlevel",
        {
            "n_experiments": N,
            "pin_escape_rate": pin_escape_rate,
            "array_escape_rate": array_escape_rate,
            "parity_detections": parity_detections,
        },
    )
