"""E16 — campaign fabric: oversubscribed mixed-priority batch vs serial.

Regenerates: the scaling/correctness study for the campaign fabric
(``repro.service``, ``goofi serve``). A real :class:`FabricServer` —
sockets, priority queue, scheduler, worker fleet — executes a
three-campaign mixed-priority batch submitted through the REST client.
The fleet is deliberately *oversubscribed* relative to the 1-core CI
box (more worker slots than cores, more shards than workers), because
that is the fabric's degradation story: saturation must queue and
interleave, never fork-bomb or corrupt results. Each campaign is then
re-run serially through the classic path and the logged experiment rows
are compared byte-for-byte (modulo the wall-clock field, via the shared
:func:`~repro.service.schema.canonical_rows_payload` form).

Shapes asserted:

* every job of the batch finishes (none lost to the scheduler or the
  fleet accounting) and logs exactly ``n_experiments`` rows;
* the fabric's rows are byte-identical to serial execution for every
  campaign — the determinism contract survives the whole service stack
  (HTTP, queue, fleet grants, concurrent sqlite writers);
* fleet accounting returns to idle (no leaked worker slots).

Environment knobs:

* ``E16_JOBS``     campaigns in the batch (default 3);
* ``E16_WORKERS``  fleet slot budget (default 4 — oversubscribed on CI).

Emits ``BENCH_e16_fabric.json`` next to the repo root.
"""

import multiprocessing
import os
import time

import pytest

from benchmarks.conftest import scaled, write_bench_json
from repro.core import CampaignData, CampaignController, create_target
from repro.db import GoofiDatabase
from repro.service import FabricClient, FabricServer, ServiceConfig
from repro.service.schema import canonical_rows_payload

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the fabric benchmark needs the fork start method",
)

N_JOBS = int(os.environ.get("E16_JOBS", "3"))
FLEET_WORKERS = int(os.environ.get("E16_WORKERS", "4"))
N_EXPERIMENTS = scaled(48)

#: Priorities cycle through the batch so the queue really reorders.
PRIORITIES = (0, 5, 2)


def _campaign(index):
    return CampaignData(
        campaign_name=f"e16-fabric-{index}",
        target_name="thor-rd",
        technique="scifi",
        workload_name="vecsum",
        location_patterns=["scan:internal/cpu.regfile.*"],
        n_experiments=N_EXPERIMENTS,
        seed=1600 + index,
    )


def _serial_rows(campaign, tmp_path, index):
    with GoofiDatabase(str(tmp_path / f"serial-{index}.db")) as db:
        controller = CampaignController(
            create_target(campaign.target_name), sink=db
        )
        controller.run(campaign)
        return canonical_rows_payload(db, campaign.campaign_name)


def test_bench_e16_fabric(benchmark, tmp_path):
    campaigns = [_campaign(index) for index in range(N_JOBS)]

    def fabric_leg():
        config = ServiceConfig(
            db_path=str(tmp_path / "fabric.db"),
            total_workers=FLEET_WORKERS,
            start_method="fork",
            poll_seconds=0.02,
        )
        t0 = time.perf_counter()
        with FabricServer(config).start() as server:
            client = FabricClient(server.url())
            records = [
                client.submit(
                    {
                        "campaign": campaign.to_dict(),
                        "tenant": f"tenant-{index % 2}",
                        "priority": PRIORITIES[index % len(PRIORITIES)],
                        "n_workers": 2,
                    }
                )
                for index, campaign in enumerate(campaigns)
            ]
            statuses = [
                client.wait(record["job_id"], timeout=600)
                for record in records
            ]
            seconds = time.perf_counter() - t0
            rows = [
                client.results(record["job_id"])["rows"]
                for record in records
            ]
            fleet = client.info()["fleet"]
        return statuses, rows, fleet, seconds

    statuses, fabric_rows, fleet, fabric_seconds = benchmark.pedantic(
        fabric_leg, rounds=1, iterations=1
    )

    t0 = time.perf_counter()
    serial_rows = [
        _serial_rows(campaign, tmp_path, index)
        for index, campaign in enumerate(campaigns)
    ]
    serial_seconds = time.perf_counter() - t0

    total = N_JOBS * N_EXPERIMENTS
    rows_identical = fabric_rows == serial_rows
    throughput = total / max(fabric_seconds, 1e-9)

    print()
    print(
        f"E16: fabric batch of {N_JOBS} campaigns x {N_EXPERIMENTS} "
        f"experiments over a {FLEET_WORKERS}-slot fleet"
    )
    print(f"  fabric: {fabric_seconds:8.3f} s "
          f"({throughput:.1f} experiments/s)")
    print(f"  serial: {serial_seconds:8.3f} s")
    print(f"  rows byte-identical to serial: {rows_identical}")

    write_bench_json(
        "e16_fabric",
        {
            "n_experiments": total,
            "n_workers": FLEET_WORKERS,
            "n_jobs": N_JOBS,
            "fabric_seconds": fabric_seconds,
            "serial_seconds": serial_seconds,
            "fabric_throughput_per_second": throughput,
            "rows_identical": rows_identical,
        },
    )

    # Correctness gates: every job completed, every row matches serial.
    for status in statuses:
        assert status["state"] == "finished"
        assert status["result"]["n_done"] == N_EXPERIMENTS
    for rows in fabric_rows:
        assert len(rows) == N_EXPERIMENTS
    assert rows_identical
    # The fleet returned every slot (no leaked grants).
    assert fleet["busy_workers"] == 0
    assert fleet["total_workers"] == FLEET_WORKERS
