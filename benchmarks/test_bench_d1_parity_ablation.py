"""D1 ablation — cache parity checked on access vs no parity checking.

DESIGN.md calls out the decision to check parity on every cache access.
This ablation quantifies what the mechanism buys: the same D-cache fault
campaign on two chip builds, parity checking enabled vs fused off.

Shapes asserted: with parity on, a large share of effective cache faults
is detected and (in this configuration) nothing escapes undetected; with
parity off, detections vanish and wrong results appear.
"""

from repro.analysis import Outcome
from repro.core import CampaignData, create_target, register_target
from repro.core.framework import unregister_target
from repro.analysis import classify_campaign
from repro.scifi.interface import ThorRDInterface
from repro.thor.cpu import CpuConfig
from benchmarks.conftest import (
    FULL_SCALE,
    print_comparison,
    scaled,
    write_bench_json,
)

N = scaled(100)


def _run(target_name):
    campaign = CampaignData(
        campaign_name=f"d1-{target_name}",
        target_name=target_name,
        technique="scifi",
        workload_name="matmul",
        workload_params={"dim": 4, "seed": 3},
        location_patterns=["scan:internal/dcache.*"],
        n_experiments=N,
        seed=111,
    )
    target = create_target(target_name)
    sink = target.run_campaign(campaign)
    return classify_campaign(sink.results, sink.reference)


def test_bench_d1_parity_ablation(benchmark):
    @register_target("d1-noparity")
    class NoParity(ThorRDInterface):
        def __init__(self):
            super().__init__(config=CpuConfig(parity_checking=False))

    try:
        with_parity, without_parity = benchmark.pedantic(
            lambda: (_run("thor-rd"), _run("d1-noparity")),
            rounds=1,
            iterations=1,
        )
    finally:
        unregister_target("d1-noparity")

    print_comparison(
        ["parity on", "parity off"],
        [with_parity, without_parity],
        title="D1: cache-parity ablation (same faults, same workload)",
    )

    assert with_parity.detected > 0
    assert without_parity.detected == 0
    if FULL_SCALE:
        # Without the mechanism, cache faults surface as wrong results.
        assert (
            without_parity.count(Outcome.ESCAPED_VALUE)
            > with_parity.count(Outcome.ESCAPED_VALUE)
        )
        # Detection coverage of effective errors is high with parity on.
        assert with_parity.detected >= 0.7 * with_parity.effective

    write_bench_json(
        "d1_parity_ablation",
        {
            "n_experiments": N,
            "parity_on_detected": with_parity.detected,
            "parity_off_detected": without_parity.detected,
        },
    )
