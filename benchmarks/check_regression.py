#!/usr/bin/env python3
"""Benchmark-regression gate over the ``BENCH_<name>.json`` artifacts.

Compares freshly produced benchmark JSON files (written next to the repo
root by the benchmarks in this directory) against the committed
baselines under ``benchmarks/baselines/`` and exits nonzero when a gated
metric regressed beyond the tolerance band.

Gating rules, by metric-name suffix/substring (all case-insensitive):

* higher-is-better quality metrics — names containing ``speedup``,
  ``ratio``, ``fraction``, ``gain``, ``effectiveness`` or ending in
  ``per_second`` / ``rate`` — fail when
  ``fresh < baseline * (1 - tolerance)``;
* wall-clock metrics — names containing ``seconds``, ``latency`` or
  ``overhead`` — are *reported only* by default (CI boxes have noisy
  clocks); pass ``--gate-seconds`` (or ``GOOFI_BENCH_GATE_SECONDS=1``)
  to fail when ``fresh > baseline * (1 + tolerance)``;
* exact-match configuration keys — ``n_experiments``, ``n_workers`` —
  fail on any difference (a size drift would invalidate the comparison);
* boolean invariants (e.g. ``rows_identical``) fail when the baseline is
  true and the fresh run is false;
* anything else is informational.

The ``_meta.scale`` stamp recorded by ``benchmarks/conftest.py`` must
match between baseline and fresh run unless ``--allow-scale-mismatch``
is given: numbers taken at different ``GOOFI_BENCH_SCALE`` values are
not comparable.

Override knobs (CI documented in .github/workflows/ci.yml):

* ``--tolerance`` / ``GOOFI_BENCH_TOLERANCE`` — relative band, default
  0.5 (generous: shared CI runners jitter; the gate exists to catch
  collapses, not 5% noise);
* ``--gate-seconds`` / ``GOOFI_BENCH_GATE_SECONDS=1`` — also gate
  wall-clock metrics;
* ``--write-baseline`` — refresh the committed baselines from the fresh
  run instead of comparing (use after an intentional perf change).

Usage::

    python benchmarks/check_regression.py                 # all baselines
    python benchmarks/check_regression.py e11_static_pruning e12_parallel
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys
from typing import Dict, Iterator, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"

HIGHER_BETTER_TOKENS = (
    "speedup",
    "ratio",
    "fraction",
    "gain",
    "effectiveness",
)
HIGHER_BETTER_SUFFIXES = ("per_second", "rate")
WALL_CLOCK_TOKENS = ("seconds", "latency", "overhead")
EXACT_KEYS = ("n_experiments", "n_workers")


def classify(name: str) -> str:
    """Map a metric name to a gating class."""
    lowered = name.lower()
    leaf = lowered.rsplit(".", 1)[-1]
    if leaf in EXACT_KEYS:
        return "exact"
    if any(token in lowered for token in WALL_CLOCK_TOKENS):
        return "wall-clock"
    if any(token in lowered for token in HIGHER_BETTER_TOKENS):
        return "higher-better"
    if any(lowered.endswith(suffix) for suffix in HIGHER_BETTER_SUFFIXES):
        return "higher-better"
    return "info"


def flatten(payload: Dict, prefix: str = "") -> Iterator[Tuple[str, object]]:
    """Flatten nested dicts to dotted metric names; skips ``_meta``."""
    for key, value in sorted(payload.items()):
        if key == "_meta":
            continue
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from flatten(value, prefix=f"{name}.")
        else:
            yield name, value


def load(path: pathlib.Path) -> Dict:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return data


def compare_metric(
    name: str,
    baseline: object,
    fresh: object,
    tolerance: float,
    gate_seconds: bool,
) -> Tuple[bool, str]:
    """Returns (ok, message) for one metric pair."""
    kind = classify(name)
    if isinstance(baseline, bool) or isinstance(fresh, bool):
        ok = not (baseline is True and fresh is not True)
        status = "ok" if ok else "FAIL"
        return ok, f"  [{status}] {name}: {baseline} -> {fresh} (invariant)"
    if isinstance(baseline, str) or isinstance(fresh, str):
        ok = baseline == fresh
        status = "ok" if ok else "FAIL"
        return ok, f"  [{status}] {name}: {baseline!r} -> {fresh!r}"
    if not isinstance(baseline, (int, float)) or not isinstance(
        fresh, (int, float)
    ):
        return True, f"  [info] {name}: {baseline} -> {fresh}"
    if kind == "exact":
        ok = baseline == fresh
        status = "ok" if ok else "FAIL"
        return ok, (
            f"  [{status}] {name}: {baseline} -> {fresh} (must match exactly)"
        )
    delta = _relative_change(float(baseline), float(fresh))
    detail = f"{name}: {baseline:.6g} -> {fresh:.6g} ({delta:+.1%})"
    if kind == "higher-better":
        ok = float(fresh) >= float(baseline) * (1.0 - tolerance)
        status = "ok" if ok else "FAIL"
        return ok, f"  [{status}] {detail}"
    if kind == "wall-clock":
        if not gate_seconds:
            return True, f"  [info] {detail} (wall-clock, not gated)"
        ok = float(fresh) <= float(baseline) * (1.0 + tolerance)
        status = "ok" if ok else "FAIL"
        return ok, f"  [{status}] {detail}"
    return True, f"  [info] {detail}"


def _relative_change(baseline: float, fresh: float) -> float:
    if baseline == 0:
        return 0.0 if fresh == 0 else math.inf
    return (fresh - baseline) / abs(baseline)


def check_bench(
    name: str,
    baseline_path: pathlib.Path,
    fresh_path: pathlib.Path,
    tolerance: float,
    gate_seconds: bool,
    allow_scale_mismatch: bool,
) -> Tuple[int, List[str]]:
    """Compare one benchmark; returns (n_failures, report_lines)."""
    lines = [f"{name}:"]
    baseline = load(baseline_path)
    fresh = load(fresh_path)

    base_scale = baseline.get("_meta", {}).get("scale")
    fresh_scale = fresh.get("_meta", {}).get("scale")
    if base_scale != fresh_scale and not allow_scale_mismatch:
        lines.append(
            f"  [FAIL] _meta.scale mismatch: baseline {base_scale} vs "
            f"fresh {fresh_scale} (pass --allow-scale-mismatch to override)"
        )
        return 1, lines

    failures = 0
    fresh_metrics = dict(flatten(fresh))
    for metric, base_value in flatten(baseline):
        if metric not in fresh_metrics:
            failures += 1
            lines.append(f"  [FAIL] {metric}: missing from fresh run")
            continue
        ok, message = compare_metric(
            metric, base_value, fresh_metrics[metric], tolerance, gate_seconds
        )
        lines.append(message)
        if not ok:
            failures += 1
    return failures, lines


def _resolve_names(args_names: List[str], baseline_dir: pathlib.Path) -> List[str]:
    if args_names:
        return args_names
    return sorted(
        path.stem[len("BENCH_"):]
        for path in baseline_dir.glob("BENCH_*.json")
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate fresh BENCH_*.json results against baselines."
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="benchmark names (e.g. e12_parallel); default: every baseline",
    )
    parser.add_argument(
        "--fresh-dir",
        default=str(REPO_ROOT),
        help="directory holding the fresh BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline-dir",
        default=str(BASELINE_DIR),
        help="directory holding the committed baselines",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("GOOFI_BENCH_TOLERANCE", "0.5")),
        help="relative tolerance band (GOOFI_BENCH_TOLERANCE; default 0.5)",
    )
    parser.add_argument(
        "--gate-seconds",
        action="store_true",
        default=os.environ.get("GOOFI_BENCH_GATE_SECONDS", "") not in ("", "0"),
        help="also gate wall-clock metrics (GOOFI_BENCH_GATE_SECONDS=1)",
    )
    parser.add_argument(
        "--allow-scale-mismatch",
        action="store_true",
        help="compare runs taken at different GOOFI_BENCH_SCALE values",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="refresh the baselines from the fresh run instead of comparing",
    )
    args = parser.parse_args(argv)

    fresh_dir = pathlib.Path(args.fresh_dir)
    baseline_dir = pathlib.Path(args.baseline_dir)

    if args.write_baseline:
        baseline_dir.mkdir(parents=True, exist_ok=True)
        names = args.names or sorted(
            path.stem[len("BENCH_"):]
            for path in fresh_dir.glob("BENCH_*.json")
        )
        for name in names:
            source = fresh_dir / f"BENCH_{name}.json"
            target = baseline_dir / f"BENCH_{name}.json"
            target.write_text(source.read_text())
            print(f"wrote baseline {target}")
        return 0

    names = _resolve_names(args.names, baseline_dir)
    if not names:
        print(f"no baselines found under {baseline_dir}", file=sys.stderr)
        return 1

    total_failures = 0
    for name in names:
        baseline_path = baseline_dir / f"BENCH_{name}.json"
        fresh_path = fresh_dir / f"BENCH_{name}.json"
        if not baseline_path.exists():
            print(f"{name}:\n  [FAIL] no baseline at {baseline_path}")
            total_failures += 1
            continue
        if not fresh_path.exists():
            print(f"{name}:\n  [FAIL] no fresh result at {fresh_path}")
            total_failures += 1
            continue
        failures, lines = check_bench(
            name,
            baseline_path,
            fresh_path,
            args.tolerance,
            args.gate_seconds,
            args.allow_scale_mismatch,
        )
        print("\n".join(lines))
        total_failures += failures

    if total_failures:
        print(
            f"\n{total_failures} gated metric(s) regressed beyond "
            f"tolerance {args.tolerance:.0%}",
            file=sys.stderr,
        )
        return 1
    print(f"\nall gated metrics within tolerance {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
