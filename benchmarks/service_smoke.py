#!/usr/bin/env python3
"""CI smoke for the campaign fabric service surface.

Starts ``goofi serve`` on an ephemeral port as a real subprocess,
submits ``examples/campaigns/static_pruning_scifi.json`` through
:class:`repro.service.FabricClient`, polls the job to completion, and
asserts the canonical result rows are byte-identical to a local serial
run of the same spec. The final job status document is written to
``service-job-status.json`` — uploaded as a CI artifact so a red run
leaves the job's last known state behind. Exits nonzero on any
mismatch so the CI step actually gates.

Usage:  python benchmarks/service_smoke.py [status-out.json]
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile

_URL = re.compile(r"fabric: serving on (http://\S+)")
_SPEC = os.path.join("examples", "campaigns", "static_pruning_scifi.json")


def serial_rows(spec):
    from repro.core import CampaignController, CampaignData, create_target
    from repro.db import GoofiDatabase
    from repro.service.schema import canonical_rows_payload

    campaign = CampaignData.from_dict(spec)
    with GoofiDatabase(":memory:") as db:
        CampaignController(
            create_target(campaign.target_name), sink=db
        ).run(campaign)
        return canonical_rows_payload(db, campaign.campaign_name)


def main() -> int:
    from repro.service import FabricClient

    out_path = sys.argv[1] if len(sys.argv) > 1 else "service-job-status.json"
    workdir = tempfile.mkdtemp(prefix="goofi-service-smoke-")
    with open(_SPEC, encoding="utf-8") as handle:
        spec = json.load(handle)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.ui.app", "serve",
         "--db", f"{workdir}/fabric.db", "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE, text=True,
    )
    status = None
    try:
        match = None
        for line in process.stdout:
            match = _URL.search(line)
            if match:
                break
        if match is None:
            print("service_smoke: server never announced a URL")
            return 1
        url = match.group(1)
        print(f"service_smoke: fabric announced {url}")
        client = FabricClient(url)
        record = client.submit(
            {"campaign": spec, "tenant": "ci", "n_workers": 2}
        )
        job_id = record["job_id"]
        print(f"service_smoke: submitted {job_id} "
              f"({record['campaign_name']})")
        status = client.wait(job_id, timeout=600)
        if status["state"] != "finished":
            print(f"service_smoke: job ended {status['state']}: "
                  f"{status.get('error')}")
            return 1
        rows = client.results(job_id)["rows"]
        expected = serial_rows(spec)
        if rows != expected:
            print(
                f"service_smoke: fabric rows diverge from serial "
                f"({len(rows)} vs {len(expected)} rows)"
            )
            return 1
        result = status.get("result") or {}
        print(
            f"service_smoke: {job_id} finished with "
            f"{result.get('n_done')} experiments; "
            f"{len(rows)} rows byte-identical to serial"
        )
        return 0
    finally:
        if status is not None:
            with open(out_path, "w", encoding="utf-8") as handle:
                json.dump(status, handle, indent=2, sort_keys=True)
            print(f"service_smoke: wrote {out_path}")
        if process.poll() is None:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()


if __name__ == "__main__":
    sys.exit(main())
