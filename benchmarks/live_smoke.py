#!/usr/bin/env python3
"""CI smoke for the live-telemetry surface.

Runs ``goofi run --serve-metrics 0`` (ephemeral port) as a subprocess,
scrapes ``/snapshot`` and ``/metrics`` while the campaign is live, and
writes the last snapshot it managed to capture to
``live-snapshot.json`` — uploaded as a CI artifact together with any
``flight-*.jsonl`` post-mortems. Exits nonzero when the exposition is
malformed or no scrape succeeded, so the CI step actually gates.

Usage:  python benchmarks/live_smoke.py [output.json]
"""

import json
import re
import subprocess
import sys
import tempfile
import urllib.error
import urllib.request

_URL = re.compile(r"http://127\.0\.0\.1:(\d+)/metrics")


def scrape(port: int, path: str):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5
    ) as response:
        return response.read().decode("utf-8")


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "live-snapshot.json"
    workdir = tempfile.mkdtemp(prefix="goofi-live-smoke-")
    db = f"{workdir}/smoke.db"
    subprocess.run(
        [sys.executable, "-m", "repro.ui.app", "campaign", "--db", db,
         "--name", "live-smoke", "--experiments", "200", "--seed", "5"],
        check=True, stdout=subprocess.DEVNULL,
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.ui.app", "run", "--db", db,
         "--campaign", "live-smoke", "--quiet",
         "--serve-metrics", "0", "--flight-records", "64"],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        match = None
        for line in process.stdout:
            match = _URL.search(line)
            if match:
                break
        if match is None:
            print("live_smoke: exporter never announced a port")
            return 1
        port = int(match.group(1))
        print(f"live_smoke: exporter announced port {port}")
        snapshot = None
        exposition = None
        while process.poll() is None:
            try:
                snapshot = json.loads(scrape(port, "/snapshot"))
                exposition = scrape(port, "/metrics")
                health = json.loads(scrape(port, "/healthz"))
            except urllib.error.HTTPError as exc:
                # HTTPError subclasses URLError: without this branch a
                # 503 stall probe would be mistaken for run teardown
                # and silently pass. Dump the body (the /healthz JSON)
                # so the CI log shows *why* the probe went non-200.
                body = exc.read().decode("utf-8", "replace")
                print(
                    f"live_smoke: port {port} {exc.url} returned "
                    f"{exc.code}; last body:"
                )
                print(body)
                return 1
            except (urllib.error.URLError, OSError):
                break  # the run finished and tore the exporter down
            # "disabled" races the first scrape: the run's monitor is
            # installed once the campaign actually starts.
            if health.get("status") not in (
                "ok", "drift", "stall", "disabled",
            ):
                print(f"live_smoke: unexpected health {health!r}")
                return 1
        process.stdout.read()  # drain
        returncode = process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
    if returncode != 0:
        print(f"live_smoke: goofi run exited {returncode}")
        return 1
    if snapshot is None or exposition is None:
        print("live_smoke: no successful scrape during the run")
        return 1
    if not exposition.endswith("# EOF\n"):
        print("live_smoke: /metrics exposition missing the # EOF marker")
        return 1
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
    print(
        f"live_smoke: captured {out_path} with "
        f"{len(snapshot.get('counters', {}))} counters; "
        f"exposition {len(exposition.splitlines())} lines"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
