"""E14 — static fault-equivalence collapsing of campaign execution.

Regenerates: the headroom of the def-use equivalence engine
(``preinjection_mode="equivalence"``) over plain static pruning (E11's
``static`` mode). Both modes plan *identical* fault lists; equivalence
mode partitions the planned experiments into provably outcome-identical
classes and executes one representative per class, deriving the rest
statically.

Shapes asserted:

* outcome fidelity — the campaign results are byte-identical to static
  mode at every scale (the equivalence theorem, end to end);
* real collapse — a narrow selection of rarely-accessed registers
  collapses by at least 2x executed experiments at full scale;
* the saved executions show up as wall-clock — the equivalence campaign
  runs faster than the static campaign it reproduces;
* spot-check soundness — re-executing a 25% sample of the derived
  members (``verify_equivalence=0.25``) reports zero divergences.
"""

import dataclasses
import time

from benchmarks.conftest import FULL_SCALE, scaled, write_bench_json
from repro.core import CampaignData, create_target

WORKLOAD = "vecsum"
#: r5/r10 hold rarely-accessed vecsum state — few access windows, so the
#: per-(bit, window) classes each absorb many sampled experiments.
PATTERNS = [
    "scan:internal/cpu.regfile.r5",
    "scan:internal/cpu.regfile.r10",
]
VERIFY_FRACTION = 0.25


def _campaign(mode):
    return CampaignData(
        campaign_name="e14",
        technique="scifi",
        workload_name=WORKLOAD,
        location_patterns=PATTERNS,
        n_experiments=scaled(600, minimum=40),
        seed=1414,
        use_preinjection=True,
        preinjection_mode=mode,
    )


def _canonical(sink):
    rows = []
    for result in sink.results:
        data = dataclasses.asdict(result)
        data["wall_seconds"] = 0.0
        data["derived_from"] = None
        rows.append(data)
    return rows


def _run(mode, verify=0.0):
    campaign = _campaign(mode)
    target = create_target("thor-rd")
    target.verify_equivalence = verify
    t0 = time.perf_counter()
    sink = target.run_campaign(campaign)
    seconds = time.perf_counter() - t0
    return sink, seconds


def test_bench_e14_equivalence(benchmark):
    def body():
        static_sink, static_seconds = _run("static")
        equiv_sink, equiv_seconds = _run("equivalence")
        # Soundness spot-check: re-execute a sample of derived members;
        # any divergence raises and fails the bench.
        _run("equivalence", verify=VERIFY_FRACTION)
        return static_sink, static_seconds, equiv_sink, equiv_seconds

    static_sink, static_seconds, equiv_sink, equiv_seconds = (
        benchmark.pedantic(body, rounds=1, iterations=1)
    )

    n = len(equiv_sink.results)
    derived = sum(
        1 for r in equiv_sink.results if r.derived_from is not None
    )
    executed = n - derived
    collapse_ratio = n / executed
    speedup = static_seconds / max(equiv_seconds, 1e-9)

    print()
    print("E14: equivalence collapsing vs static pruning")
    print(f"  campaign: {WORKLOAD}, {n} experiments over {PATTERNS}")
    print(
        f"  executed {executed}, derived {derived} "
        f"({collapse_ratio:.2f}x collapse)"
    )
    print(
        f"  wall-clock: static {static_seconds:.2f}s vs "
        f"equivalence {equiv_seconds:.2f}s ({speedup:.2f}x)"
    )
    print(
        f"  verify_equivalence={VERIFY_FRACTION}: zero divergences "
        "(campaign would have aborted otherwise)"
    )

    # Outcome fidelity at every scale: derived results are byte-identical
    # to the executed ones of static mode.
    assert _canonical(equiv_sink) == _canonical(static_sink)
    # The collapse must be real at every scale...
    assert derived > 0
    assert executed + derived == n
    if FULL_SCALE:
        # ...and substantial at paper scale: the E14 acceptance bar.
        assert collapse_ratio >= 2.0
        # Fewer executions must buy wall-clock time.
        assert equiv_seconds < static_seconds

    write_bench_json(
        "e14_equivalence",
        {
            "workload": WORKLOAD,
            "patterns": PATTERNS,
            "n_experiments": n,
            "n_executed": executed,
            "n_derived": derived,
            "collapse_ratio": collapse_ratio,
            "static_seconds": static_seconds,
            "equivalence_seconds": equiv_seconds,
            "speedup": speedup,
            "verify_fraction": VERIFY_FRACTION,
            "verify_divergences": 0,
        },
    )
