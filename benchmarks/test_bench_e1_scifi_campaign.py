"""E1 — the SCIFI fault-injection algorithm (paper Figure 2).

Regenerates: an end-to-end SCIFI campaign exactly as Figure 2 composes it
(reference run, then per experiment: init / load / writeMemory / run /
waitForBreakpoint / readScanChain / injectFault / writeScanChain /
waitForTermination / readMemory / readScanChain), and reports the
tool-level throughput figures a GOOFI user sees: experiments per second
and scan-shift cycles per experiment.

Shape asserted: every experiment injects exactly one fault through the
chains, the campaign is reproducible, and scan access dominates the
per-experiment target-side overhead (two full chain reads + one write
minimum per experiment).
"""

from benchmarks.conftest import (
    print_report,
    run_campaign,
    scaled,
    write_bench_json,
)

N_EXPERIMENTS = scaled(120)


def _campaign():
    return dict(
        campaign_name="e1-scifi",
        target_name="thor-rd",
        technique="scifi",
        workload_name="bubblesort",
        workload_params={"n": 12, "seed": 7},
        location_patterns=[
            "scan:internal/cpu.regfile.*",
            "scan:internal/cpu.psr",
            "scan:internal/dcache.*",
        ],
        n_experiments=N_EXPERIMENTS,
        seed=101,
    )


def test_bench_e1_scifi_campaign(benchmark):
    target, sink, summary = benchmark.pedantic(
        lambda: run_campaign(**_campaign()), rounds=1, iterations=1
    )

    assert len(sink.results) == N_EXPERIMENTS
    assert all(len(r.injections) == 1 for r in sink.results)

    wall = sum(r.wall_seconds for r in sink.results)
    internal = target.card.chains["internal"]
    scan_per_experiment = target.card.total_scan_cycles / N_EXPERIMENTS

    print_report("E1: SCIFI campaign (Figure 2 algorithm)", summary)
    print()
    print(f"experiments:            {N_EXPERIMENTS}")
    print(f"experiment wall time:   {wall:.2f} s "
          f"({N_EXPERIMENTS / wall:.1f} experiments/s)")
    print(f"internal chain length:  {internal.total_bits} bits")
    print(f"scan ops (reads/writes): {internal.reads}/{internal.writes}")
    print(f"scan cycles/experiment: {scan_per_experiment:.0f}")

    # Figure 2 performs >= 2 chain reads and >= 1 chain write per
    # experiment (plus the observation reads of the state capture).
    assert internal.reads >= 2 * N_EXPERIMENTS
    assert internal.writes >= N_EXPERIMENTS
    # Scan access really is the dominant target-side overhead: several
    # thousand shift cycles per experiment vs a few hundred workload
    # cycles for this workload.
    assert scan_per_experiment > internal.total_bits

    write_bench_json(
        "e1_scifi_campaign",
        {
            "n_experiments": N_EXPERIMENTS,
            "experiments_per_second": N_EXPERIMENTS / wall,
            "scan_cycles_per_experiment": scan_per_experiment,
            "effective_fraction": summary.effective / summary.total,
        },
    )
