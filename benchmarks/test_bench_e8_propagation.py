"""E8 — detail-mode error-propagation analysis (paper Section 3.3).

Regenerates: the execution-trace analysis detail mode exists for — for
each latent/escaped fault, locate the first architectural divergence from
the fault-free run and follow the infected-state set per instruction.

Shapes asserted: live register faults (pre-injection filtered, so none
are trivially overwritten) diverge from the reference in the
per-instruction logs; the first divergence never precedes the injection
instant; infection counts are non-trivial for some faults.
"""

from repro.analysis import analyse_propagation
from benchmarks.conftest import (
    print_report,
    run_campaign,
    scaled,
    write_bench_json,
)

N = scaled(12, minimum=4)


def test_bench_e8_propagation(benchmark):
    def body():
        return run_campaign(
            campaign_name="e8-detail",
            technique="scifi",
            workload_name="vecsum",
            workload_params={"n": 10, "seed": 8},
            location_patterns=["scan:internal/cpu.regfile.*"],
            n_experiments=N,
            seed=808,
            logging_mode="detail",
            use_preinjection=True,
            observe_patterns=[
                "scan:internal/cpu.regfile.*",
                "scan:internal/cpu.pc",
                "scan:internal/cpu.psr",
            ],
        )

    target, sink, summary = benchmark.pedantic(body, rounds=1, iterations=1)
    print_report("E8: detail-mode campaign", summary)

    reference_states = sink.reference.detail_states
    assert reference_states, "reference run logged no per-instruction states"

    print()
    print(f"{'experiment':22s} {'diverge@':>9s} {'peak':>5s} {'final':>6s}  "
          "first infected cells")
    diverged = 0
    for result in sink.results:
        report = analyse_propagation(reference_states, result.detail_states)
        injection_cycle = result.injections[0].time
        if report.diverged:
            diverged += 1
            cells = ", ".join(report.first_infected_cells[:2]) or "-"
            print(
                f"{result.name:22s} {report.first_divergence_step:>9} "
                f"{report.max_infected:>5d} {report.final_infected:>6d}  "
                f"{cells}"
            )
            # Divergence cannot precede the injection: map the divergence
            # step back to a cycle through the reference trace.
            if report.first_divergence_step < len(sink.reference.trace.steps):
                step = sink.reference.trace.steps[report.first_divergence_step]
                assert step.cycle_after >= injection_cycle

    print(f"\n{diverged}/{N} experiments diverged in the detail logs")
    # Pre-injection filtering guarantees live faults: most must diverge.
    assert diverged >= N // 2

    write_bench_json(
        "e8_propagation",
        {
            "n_experiments": N,
            "diverged": diverged,
            "diverged_fraction": diverged / N,
        },
    )
