#!/usr/bin/env python3
"""Campaign-phase cProfile harness: where do the host cycles go?

Profiles one SCIFI campaign split into its three host-side phases —
reference run (golden trajectory + checkpoint capture), experiment loop
(inject / run / classify per experiment) and analysis (outcome
classification over the logged rows) — and writes the top-N functions
by cumulative time per phase as JSON. The CI benchmarks job runs this
and uploads the JSON as an artifact, so a perf regression caught by
``check_regression.py`` comes with the profile that explains it.

Usage::

    python benchmarks/profile_hotspots.py                  # defaults
    python benchmarks/profile_hotspots.py --workload matmul \
        --experiments 40 --top 25 --output profile-hotspots.json

The output schema::

    {
      "_meta": {"workload": ..., "n_experiments": ..., "top": ...},
      "phases": {
        "<phase>": {
          "total_seconds": ...,
          "total_calls": ...,
          "hotspots": [
            {"function": "file.py:123(name)", "ncalls": ...,
             "tottime": ..., "cumtime": ...},
            ...
          ]
        }
      }
    }
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pathlib
import pstats
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import classify_campaign  # noqa: E402
from repro.core import CampaignData, create_target  # noqa: E402


def _campaign(args: argparse.Namespace) -> CampaignData:
    return CampaignData(
        campaign_name="profile-hotspots",
        target_name="thor-rd",
        technique=args.technique,
        workload_name=args.workload,
        location_patterns=[
            "scan:internal/cpu.regfile.*",
            "scan:internal/cpu.psr",
            "scan:internal/dcache.*",
        ],
        n_experiments=args.experiments,
        seed=args.seed,
    )


def _profile(callable_, *call_args):
    profiler = cProfile.Profile()
    profiler.enable()
    result = callable_(*call_args)
    profiler.disable()
    return result, profiler


def _top_functions(profiler: cProfile.Profile, top: int) -> dict:
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows = []
    for func, (cc, nc, tottime, cumtime, _callers) in sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    ):
        filename, line, name = func
        # Skip interpreter plumbing rows; keep repo + stdlib frames that
        # actually name a code location.
        label = f"{pathlib.Path(filename).name}:{line}({name})"
        rows.append(
            {
                "function": label,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            }
        )
        if len(rows) >= top:
            break
    return {
        "total_seconds": round(stats.total_tt, 6),
        "total_calls": stats.total_calls,
        "hotspots": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Profile one campaign per phase; write JSON hotspots."
    )
    parser.add_argument("--workload", default="bubblesort")
    parser.add_argument("--technique", default="scifi")
    parser.add_argument("--experiments", type=int, default=24)
    parser.add_argument("--seed", type=int, default=101)
    parser.add_argument("--top", type=int, default=20)
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "profile-hotspots.json"),
        help="output JSON path (default: profile-hotspots.json)",
    )
    args = parser.parse_args(argv)

    phases: dict = {}

    # Phase 1: reference run (golden trajectory, checkpoint capture).
    reference_target = create_target("thor-rd")
    _, profiler = _profile(
        reference_target.prepare_run, _campaign(args)
    )
    phases["reference_run"] = _top_functions(profiler, args.top)

    # Phase 2: the experiment loop, end to end on a fresh target.
    campaign_target = create_target("thor-rd")
    sink, profiler = _profile(
        campaign_target.run_campaign, _campaign(args)
    )
    phases["experiments"] = _top_functions(profiler, args.top)

    # Phase 3: outcome classification over the logged rows.
    summary, profiler = _profile(
        classify_campaign, sink.results, sink.reference
    )
    phases["analysis"] = _top_functions(profiler, args.top)

    payload = {
        "_meta": {
            "workload": args.workload,
            "technique": args.technique,
            "n_experiments": args.experiments,
            "seed": args.seed,
            "top": args.top,
        },
        "phases": phases,
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"profiled {args.experiments} {args.technique} experiments on "
          f"{args.workload!r} -> {output}")
    for phase, data in phases.items():
        head = data["hotspots"][0] if data["hotspots"] else None
        top_line = head["function"] if head else "-"
        print(
            f"  {phase:14s} {data['total_seconds']:7.3f} s, "
            f"{data['total_calls']:>9} calls, top: {top_line}"
        )
    print(
        f"classified outcomes: "
        f"{summary.total if hasattr(summary, 'total') else 'n/a'}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
