"""E15 — divergence-window early exit + outcome memoization wall time.

Regenerates: the acceleration study for the divergence-window subsystem
(``repro.core.divergence``). One SCIFI campaign in the regime the
window targets — an *early* fixed-time trigger into frequently
overwritten scratch registers, so the fault's architectural effect is
usually erased within a checkpoint interval and the run re-converges
with the golden execution for the long remaining tail — is executed
twice on fresh targets, both with ``warm_start=True``: once with the
divergence window and the outcome memo enabled (the default) and once
with both disabled (``goofi run --no-early-exit``; the plain warm-start
tail of E13). Results are compared field-for-field (modulo wall clock)
and the ``divergence.*`` counter family is captured from the
observability layer.

Shapes asserted:

* both legs classify every experiment identically (termination kind,
  injections, outputs, observed state) — the correctness gate: early
  exits synthesize the golden outcome and memo hits replay a recorded
  one, and neither may be distinguishable from full-tail execution;
* the accelerated leg takes a nonzero number of early exits, skips a
  nonzero number of simulated tail cycles, and (the fault space being
  64 bits against a larger campaign) replays outcomes from the memo;
* at full scale, the accelerated leg delivers >= 2x wall-clock speedup
  over the plain tail (the acceptance number; reduced-scale CI runs
  report the ratio without gating it on noisy shared runners —
  check_regression gates the recorded ``early_exit_speedup`` against
  the committed baseline instead).

Environment knobs:

* ``E15_TRIGGER_FRAC``  injection point as a fraction of the reference
                        duration (default 0.25 — early, so the skipped
                        tail dominates an experiment).

Emits ``BENCH_e15_divergence.json`` next to the repo root.
"""

import os
import time

from benchmarks.conftest import FULL_SCALE, scaled, write_bench_json
from repro.core import CampaignData, create_target
from repro.core.triggers import TriggerSpec
from repro.observability import configure, disable, get_observability

N_EXPERIMENTS = scaled(64)
TRIGGER_FRAC = float(os.environ.get("E15_TRIGGER_FRAC", "0.25"))

#: Large enough that the post-injection tail dominates an experiment.
WORKLOAD = "bubblesort"
WORKLOAD_PARAMS = {"n": 32}

#: Hot scratch registers of the bubblesort inner loop: every flip is
#: overwritten within about one checkpoint interval, which is exactly
#: the fault population the divergence window accelerates (flips into
#: rarely written registers never re-converge and keep the plain tail).
LOCATION_PATTERNS = [
    "scan:internal/cpu.regfile.r5",
    "scan:internal/cpu.regfile.r7",
]


def _campaign(name, trigger_time):
    return CampaignData(
        campaign_name=name,
        target_name="thor-rd",
        technique="scifi",
        workload_name=WORKLOAD,
        workload_params=dict(WORKLOAD_PARAMS),
        location_patterns=list(LOCATION_PATTERNS),
        n_experiments=N_EXPERIMENTS,
        seed=1515,
        trigger=TriggerSpec(kind="time-fixed", time=trigger_time),
        warm_start=True,
    )


def _reference_duration():
    target = create_target("thor-rd")
    probe = _campaign("e15-probe", trigger_time=1)
    probe.n_experiments = 1
    reference = target.prepare_run(probe)
    return reference.duration_cycles


def _canonical(sink):
    return [
        (
            result.termination.kind,
            tuple(
                (inj.location.key(), inj.time, inj.bit_after)
                for inj in result.injections
            ),
            tuple(sorted(result.outputs.items())),
            tuple(sorted(result.state_vector.items())),
        )
        for result in sink.results
    ]


def _run_leg(name, accelerated, trigger_time):
    campaign = _campaign(name, trigger_time)
    target = create_target("thor-rd")
    if not accelerated:
        # The plain warm-start tail (goofi run --no-early-exit): every
        # experiment simulates to termination, nothing is memoized.
        target.early_exit = False
        target.memoize = False
    t0 = time.perf_counter()
    sink = target.run_campaign(campaign)
    seconds = time.perf_counter() - t0
    return _canonical(sink), seconds


def test_bench_e15_divergence(benchmark):
    duration = _reference_duration()
    trigger_time = max(1, int(duration * TRIGGER_FRAC))

    def body():
        plain_rows, plain_seconds = _run_leg(
            "e15-plain", accelerated=False, trigger_time=trigger_time
        )
        configure(metrics=True)
        try:
            fast_rows, fast_seconds = _run_leg(
                "e15-fast", accelerated=True, trigger_time=trigger_time
            )
            snapshot = get_observability().metrics.snapshot()
            counters = snapshot.get("counters", snapshot)
        finally:
            disable()
        return plain_rows, plain_seconds, fast_rows, fast_seconds, counters

    plain_rows, plain_seconds, fast_rows, fast_seconds, counters = (
        benchmark.pedantic(body, rounds=1, iterations=1)
    )

    exits = counters.get("divergence.early_exits", 0)
    memo_hits = counters.get("divergence.memo_hits", 0)
    probes = counters.get("divergence.probes", 0)
    skipped = counters.get("divergence.cycles_skipped", 0)
    speedup = plain_seconds / max(fast_seconds, 1e-9)

    print()
    print(
        f"E15: divergence window on vs off ({N_EXPERIMENTS} experiments, "
        f"{WORKLOAD} n={WORKLOAD_PARAMS['n']}, trigger at cycle "
        f"{trigger_time}/{duration})"
    )
    print(f"  plain: {plain_seconds:8.3f} s")
    print(f"  fast:  {fast_seconds:8.3f} s   speedup {speedup:.2f}x")
    print(
        f"  early exits {exits}, memo hits {memo_hits}, probes {probes}, "
        f"cycles skipped {skipped}"
    )

    write_bench_json(
        "e15_divergence",
        {
            "n_experiments": N_EXPERIMENTS,
            "workload": WORKLOAD,
            "trigger_cycle": trigger_time,
            "reference_cycles": duration,
            "plain_seconds": plain_seconds,
            "fast_seconds": fast_seconds,
            "early_exit_speedup": speedup,
            "early_exits": exits,
            "memo_hits": memo_hits,
            "cycles_skipped_total": skipped,
            "outcomes_identical": plain_rows == fast_rows,
        },
    )

    # Correctness gate: early exits and memo replays must be invisible
    # in the logged rows, and the accelerated leg must really have
    # exited early on this fault population.
    assert len(plain_rows) == N_EXPERIMENTS
    assert plain_rows == fast_rows
    assert exits > 0
    assert skipped > 0
    assert exits + memo_hits <= N_EXPERIMENTS

    # Wall-clock acceptance number — only meaningful at paper scale,
    # where the reference run and per-experiment fixed costs amortise.
    if FULL_SCALE:
        assert speedup >= 2.0, (
            f"divergence window delivered only {speedup:.2f}x over the "
            f"plain tail (expected >= 2x with the trigger at "
            f"{TRIGGER_FRAC:.0%} of the reference run)"
        )
