"""E4 — fault-injection technique comparison (paper Section 1 + [10]).

Regenerates: the SCIFI vs pre-runtime SWIFI vs runtime SWIFI vs
simulation-based comparison of the companion study: reachable fault
space, access cost, and outcome mix, all on the same workload and chip.

Shapes asserted:
* reachability ordering: simfi >= scifi > swifi-pre (in injectable bits),
* scifi pays scan-shift cycles, simfi pays none (design decision D3),
* pre-runtime SWIFI — whose whole fault space is the *used* program
  image — yields a higher effective-error fraction than random SCIFI
  flips over all internal state.
"""

from benchmarks.conftest import (
    FULL_SCALE,
    print_comparison,
    run_campaign,
    scaled,
    write_bench_json,
)

N = scaled(100)

SETUPS = [
    ("scifi", "scifi", "thor-rd", ["scan:internal/*"]),
    ("swifi-pre", "swifi-pre", "thor-rd", ["memory:code/*", "memory:data/*"]),
    ("swifi-rt", "swifi-runtime", "thor-rd", ["swreg/cpu.regfile.*"]),
    ("simfi", "simfi", "thor-rd-sim",
     ["scan:internal/*", "memory:code/*", "memory:data/*"]),
]


def test_bench_e4_technique_comparison(benchmark):
    def body():
        outcomes = {}
        for label, technique, target_name, patterns in SETUPS:
            target, sink, summary = run_campaign(
                campaign_name=f"e4-{label}",
                target_name=target_name,
                technique=technique,
                workload_name="quicksort",
                workload_params={"n": 12, "seed": 3},
                location_patterns=patterns,
                n_experiments=N,
                seed=404,
            )
            space_bits = len(target.location_space().expand(patterns))
            outcomes[label] = (target, sink, summary, space_bits)
        return outcomes

    outcomes = benchmark.pedantic(body, rounds=1, iterations=1)

    labels = [label for label, *_ in SETUPS]
    print_comparison(
        labels,
        [outcomes[label][2] for label in labels],
        title="E4: outcome mix by technique (same chip, same workload)",
    )
    print()
    print(f"{'technique':12s} {'fault space (bits)':>20s} {'scan cycles':>14s}")
    for label in labels:
        target, _, _, space_bits = outcomes[label]
        print(f"{label:12s} {space_bits:>20d} "
              f"{target.card.total_scan_cycles:>14d}")

    scifi_bits = outcomes["scifi"][3]
    swifi_bits = outcomes["swifi-pre"][3]
    simfi_bits = outcomes["simfi"][3]
    assert simfi_bits >= scifi_bits > swifi_bits

    # D3: access cost — the simulation baseline shifts no chains.
    assert outcomes["scifi"][0].card.total_scan_cycles > 0
    assert outcomes["simfi"][0].card.total_scan_cycles == 0

    # Pre-runtime SWIFI concentrates faults in state the workload uses
    # (a statistical margin — gated to full-sized campaigns).
    scifi_eff = outcomes["scifi"][2].effective / N
    swifi_eff = outcomes["swifi-pre"][2].effective / N
    if FULL_SCALE:
        assert swifi_eff > scifi_eff

    write_bench_json(
        "e4_technique_comparison",
        {
            "n_experiments": N,
            "fault_space_bits": {
                label: outcomes[label][3] for label in labels
            },
            "scifi_effective_fraction": scifi_eff,
            "swifi_pre_effective_fraction": swifi_eff,
        },
    )
