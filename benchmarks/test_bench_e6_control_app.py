"""E6 — control application with executable assertions + recovery
(paper Section 3.2 environment simulator; companion study [12]).

Regenerates: the dependability-improvement experiment GOOFI's
environment-simulator support exists for — a Q8 PID controller balancing
an open-loop-unstable inverted pendulum, fed by the plant model at every
SYNC iteration boundary, hit with transient register faults:

* unprotected controller vs
* controller with executable assertions on sensor/actuation values and
  best-effort recovery (hold last good output, reset state).

A *critical failure* is an experiment whose plant deviation exceeds a
bound the fault-free run never approaches (control loss).

Shapes asserted: both variants see the same fault set (same seed); the
protected variant suffers no more critical failures than the unprotected
one and actually performs recoveries; the unprotected variant loses
control at least once.
"""

from benchmarks.conftest import (
    FULL_SCALE,
    print_comparison,
    run_campaign,
    scaled,
    write_bench_json,
)
from repro.core.campaign import EnvironmentSpec

N = scaled(80)
CRITICAL_DEVIATION = 50.0  # engineering units; fault-free max is ~12


def _run(assertions):
    return run_campaign(
        campaign_name=f"e6-{'protected' if assertions else 'unprotected'}",
        technique="scifi",
        workload_name="pid-control",
        workload_params={"assertions": assertions},
        location_patterns=["scan:internal/cpu.regfile.*"],
        environment=EnvironmentSpec(
            name="inverted-pendulum", params={"initial": 0.2}
        ),
        max_iterations=150,
        n_experiments=N,
        seed=606,
    )


def _critical_failures(sink):
    return sum(
        1
        for result in sink.results
        if result.outputs.get("env.max_abs_error", 0) / 256.0
        > CRITICAL_DEVIATION
    )


def test_bench_e6_control_application(benchmark):
    def body():
        return _run(False), _run(True)

    (unprot, prot) = benchmark.pedantic(body, rounds=1, iterations=1)
    _, unprot_sink, unprot_summary = unprot
    _, prot_sink, prot_summary = prot

    unprot_critical = _critical_failures(unprot_sink)
    prot_critical = _critical_failures(prot_sink)
    recoveries = sum(
        result.outputs.get("rec_count", 0) for result in prot_sink.results
    )

    print_comparison(
        ["unprotected", "protected"],
        [unprot_summary, prot_summary],
        title="E6: PID control under register faults — outcome mix",
    )
    ref_dev = prot_sink.reference.outputs["env.max_abs_error"] / 256.0
    print()
    print(f"fault-free max deviation:  {ref_dev:.2f} "
          f"(critical bound {CRITICAL_DEVIATION})")
    print(f"{'variant':12s} {'critical failures':>18s} {'recoveries':>12s}")
    print(f"{'unprotected':12s} {unprot_critical:>13d}/{N:<4d} {'-':>12s}")
    print(f"{'protected':12s} {prot_critical:>13d}/{N:<4d} {recoveries:>12d}")

    # Fault-free closed loop is far inside the critical bound.
    assert ref_dev < CRITICAL_DEVIATION / 2
    # Protection never hurts (holds per experiment at any scale).
    assert prot_critical <= unprot_critical
    if FULL_SCALE:
        # The unprotected controller loses the plant for some faults and
        # the recovery path actually fires — needs enough samples to hit
        # a control-loss fault at all.
        assert unprot_critical > 0
        assert recoveries > 0

    write_bench_json(
        "e6_control_app",
        {
            "n_experiments": N,
            "unprotected_critical_failures": unprot_critical,
            "protected_critical_failures": prot_critical,
            "recoveries": recoveries,
        },
    )
