"""Shared helpers for the experiment benchmarks (E1-E8 + ablations).

Every benchmark regenerates one figure-equivalent or companion-study
result of the paper (see DESIGN.md's experiment index) and asserts the
*shape* of the outcome — who wins, in which direction — rather than
absolute numbers.
"""

import pytest

from repro.analysis import classify_campaign
from repro.analysis.report import render_campaign_report, render_comparison
from repro.core import CampaignData, create_target


def run_campaign(**kwargs):
    """Run a campaign on a fresh target; returns (target, sink, summary)."""
    campaign = CampaignData(**kwargs)
    target = create_target(campaign.target_name)
    sink = target.run_campaign(campaign)
    summary = classify_campaign(sink.results, sink.reference)
    return target, sink, summary


def print_report(campaign_name, summary):
    print()
    print(render_campaign_report(campaign_name, summary))


def print_comparison(labels, summaries, title=""):
    print()
    if title:
        print(title)
    print(render_comparison(labels, summaries))
