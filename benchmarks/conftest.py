"""Shared helpers for the experiment benchmarks (E1-E8 + ablations).

Every benchmark regenerates one figure-equivalent or companion-study
result of the paper (see DESIGN.md's experiment index) and asserts the
*shape* of the outcome — who wins, in which direction — rather than
absolute numbers.
"""

import json
import pathlib

import pytest

from repro.analysis import classify_campaign
from repro.analysis.report import render_campaign_report, render_comparison
from repro.core import CampaignData, create_target

#: Machine-readable benchmark results land next to the repo root as
#: ``BENCH_<name>.json`` so campaign drivers can diff runs over time.
BENCH_OUTPUT_DIR = pathlib.Path(__file__).resolve().parent.parent


def write_bench_json(name, payload):
    """Write one benchmark's result dictionary to ``BENCH_<name>.json``.

    Returns the path written. Payloads must be JSON-serialisable; keep
    them small (headline numbers, not raw samples).
    """
    path = BENCH_OUTPUT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_campaign(**kwargs):
    """Run a campaign on a fresh target; returns (target, sink, summary)."""
    campaign = CampaignData(**kwargs)
    target = create_target(campaign.target_name)
    sink = target.run_campaign(campaign)
    summary = classify_campaign(sink.results, sink.reference)
    return target, sink, summary


def print_report(campaign_name, summary):
    print()
    print(render_campaign_report(campaign_name, summary))


def print_comparison(labels, summaries, title=""):
    print()
    if title:
        print(title)
    print(render_comparison(labels, summaries))
