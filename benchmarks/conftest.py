"""Shared helpers for the experiment benchmarks (E1-E13 + ablations).

Every benchmark regenerates one figure-equivalent or companion-study
result of the paper (see DESIGN.md's experiment index) and asserts the
*shape* of the outcome — who wins, in which direction — rather than
absolute numbers.

Campaign sizes honour ``GOOFI_BENCH_SCALE`` (a float, default 1.0): the
CI benchmark job runs at 0.2 so the suite finishes in seconds while the
nightly/full runs keep the paper-sized campaigns. Statistical shape
assertions that need full-sized samples are gated on :data:`FULL_SCALE`;
structural assertions (row counts, provenance, orderings that hold per
experiment) run at every scale. Every bench emits a machine-readable
``BENCH_<name>.json`` stamped with the scale it ran at, which
``benchmarks/check_regression.py`` diffs against the committed baselines.
"""

import json
import os
import pathlib

import pytest

from repro.analysis import classify_campaign
from repro.analysis.report import render_campaign_report, render_comparison
from repro.core import CampaignData, create_target

#: Machine-readable benchmark results land next to the repo root as
#: ``BENCH_<name>.json`` so campaign drivers can diff runs over time.
BENCH_OUTPUT_DIR = pathlib.Path(__file__).resolve().parent.parent

#: Global campaign-size multiplier (``GOOFI_BENCH_SCALE=0.2`` in CI).
BENCH_SCALE = float(os.environ.get("GOOFI_BENCH_SCALE", "1"))

#: True when running at (or above) paper-sized campaigns — the gate for
#: statistical shape assertions that are noisy on reduced samples.
FULL_SCALE = BENCH_SCALE >= 1.0


def scaled(n, minimum=1):
    """Scale a campaign size by ``GOOFI_BENCH_SCALE`` (floored)."""
    return max(minimum, int(round(n * BENCH_SCALE)))


def write_bench_json(name, payload):
    """Write one benchmark's result dictionary to ``BENCH_<name>.json``.

    Returns the path written. Payloads must be JSON-serialisable; keep
    them small (headline numbers, not raw samples). A ``_meta`` block
    recording the bench scale is added so the regression checker can
    refuse to compare runs taken at different scales.
    """
    payload = dict(payload)
    payload.setdefault("_meta", {"scale": BENCH_SCALE})
    path = BENCH_OUTPUT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_campaign(**kwargs):
    """Run a campaign on a fresh target; returns (target, sink, summary)."""
    campaign = CampaignData(**kwargs)
    target = create_target(campaign.target_name)
    sink = target.run_campaign(campaign)
    summary = classify_campaign(sink.results, sink.reference)
    return target, sink, summary


def print_report(campaign_name, summary):
    print()
    print(render_campaign_report(campaign_name, summary))


def print_comparison(labels, summaries, title=""):
    print()
    if title:
        print(title)
    print(render_comparison(labels, summaries))
