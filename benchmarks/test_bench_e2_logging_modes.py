"""E2 — database logging and the normal/detail mode trade-off
(paper Figure 4 schema + Section 3.3).

Regenerates: the cost asymmetry the paper documents — "In detail mode the
system state is logged as frequently as the target system allows,
typically after the execution of each machine instruction, which
increases the time-overhead" — plus the parentExperiment provenance flow
(run a campaign in normal mode, re-run one experiment in detail mode).

Shape asserted: detail mode is much slower per experiment and its logged
payload is much larger; the provenance chain is recorded in
LoggedSystemState.
"""

import time

from benchmarks.conftest import FULL_SCALE, scaled, write_bench_json
from repro.core import CampaignData, create_target
from repro.db import GoofiDatabase

N_EXPERIMENTS = scaled(15, minimum=6)
#: The normal-mode experiment re-run in detail mode for the provenance
#: check (index 4 at full scale; clamped for reduced campaigns).
RERUN_INDEX = min(4, N_EXPERIMENTS - 1)


def _campaign(mode):
    return CampaignData(
        campaign_name=f"e2-{mode}",
        technique="scifi",
        workload_name="vecsum",
        workload_params={"n": 10, "seed": 2},
        location_patterns=["scan:internal/cpu.regfile.*"],
        n_experiments=N_EXPERIMENTS,
        logging_mode=mode,
        seed=202,
    )


def _run_mode(mode):
    db = GoofiDatabase(":memory:")
    target = create_target("thor-rd")
    started = time.perf_counter()
    target.run_campaign(_campaign(mode), sink=db)
    wall = time.perf_counter() - started
    blob_bytes = db.query(
        "SELECT SUM(LENGTH(stateVector)) AS total FROM LoggedSystemState "
        "WHERE isReference = 0"
    )[0]["total"]
    return db, wall, blob_bytes


def test_bench_e2_logging_modes(benchmark):
    results = benchmark.pedantic(
        lambda: (_run_mode("normal"), _run_mode("detail")),
        rounds=1,
        iterations=1,
    )
    (normal_db, normal_wall, normal_bytes) = results[0]
    (detail_db, detail_wall, detail_bytes) = results[1]

    overhead = detail_wall / normal_wall
    blowup = detail_bytes / normal_bytes

    print()
    print("E2: normal vs detail logging mode")
    print(f"{'mode':8s} {'wall (s)':>10s} {'stateVector bytes':>20s}")
    print(f"{'normal':8s} {normal_wall:>10.3f} {normal_bytes:>20d}")
    print(f"{'detail':8s} {detail_wall:>10.3f} {detail_bytes:>20d}")
    print(f"time overhead:  {overhead:.1f}x")
    print(f"payload blowup: {blowup:.1f}x")

    # The paper's qualitative claim: detail mode costs notably more time
    # and logs far more state (the payload blowup is damped by zlib —
    # per-instruction states compress well). Wall-clock ratios are noisy
    # on tiny campaigns, so the hard thresholds only apply at full scale.
    assert overhead > 1.0
    assert blowup > 1.0
    if FULL_SCALE:
        assert overhead > 3.0
        assert blowup > 4.0

    # parentExperiment provenance (Figure 4): re-run one experiment of
    # the normal campaign in detail mode.
    parent_name = f"e2-normal-exp{RERUN_INDEX:05d}"
    target = create_target("thor-rd")
    rerun = target.rerun_experiment(
        _campaign("normal"), RERUN_INDEX, sink=normal_db
    )
    assert rerun.parent_experiment == parent_name
    assert normal_db.children_of(parent_name) == [rerun.name]
    assert len(rerun.detail_states) > 0
    print(f"provenance: {rerun.parent_experiment} -> {rerun.name} "
          f"({len(rerun.detail_states)} per-instruction states)")

    write_bench_json(
        "e2_logging_modes",
        {
            "n_experiments": N_EXPERIMENTS,
            "detail_time_overhead": overhead,
            "detail_payload_blowup": blowup,
        },
    )
