"""E18 — simulator-core throughput (vectorized vs reference dispatch).

Regenerates: the acceleration study for the vectorized Thor execution
core (array-backed memory, shared decode memo, fused per-opcode handler
dispatch, batched scan shifts, zero-copy checkpoint digests). The same
chip is driven twice — once with :attr:`repro.thor.cpu.Cpu.
fast_dispatch` enabled (the default shipping configuration) and once
bound to the retained reference core (the seed's straight-line
decode/if-chain) — at two granularities:

* **micro** — raw simulated cycles per host second on a set of
  compute-shaped workloads, stepping the card directly with no campaign
  machinery. This isolates the fetch/decode/execute loop the tentpole
  rewrote;
* **campaign** — an E1-shaped SCIFI campaign (reference run, scan reads,
  injection, termination classification, logging) run end-to-end under
  both dispatchers, reporting experiments per second and the wall-clock
  ratio. The campaign legs also serve as a correctness gate: the logged
  rows must be byte-identical across dispatchers (the property suite in
  ``tests/properties/test_prop_core_equivalence.py`` pins the same
  invariant across random shapes).

Shapes asserted:

* fast and reference campaigns produce identical canonical rows;
* the fast micro path delivers >= 3x cycles/second (geometric mean over
  the micro workloads) — asserted at full scale, reported and
  baseline-gated (``check_regression.py``) at CI scale;
* the campaign leg delivers >= 1.5x throughput — same gating split.

Emits ``BENCH_e18_simcore.json`` next to the repo root.
"""

import math
import time

from benchmarks.conftest import FULL_SCALE, scaled, write_bench_json
from repro.core import CampaignData, create_target
from repro.thor.cpu import Cpu
from repro.thor.testcard import TestCard
from repro.workloads.library import get_workload

#: Compute-shaped workloads whose inner loops exercise the arithmetic,
#: shift/logic, branch and memory handler families.
MICRO_WORKLOADS = ("countprimes", "quicksort", "crc32", "matmul")

#: Host-seconds of stepping per micro leg (kept small: 2 dispatchers x
#: len(MICRO_WORKLOADS) legs run inside the benchmarks CI job).
MICRO_WINDOW_SECONDS = 0.4

#: Per-run simulated-cycle budget for the micro legs.
MICRO_CYCLE_BUDGET = 200_000

N_EXPERIMENTS = scaled(40)


def _micro_leg(workload_name, fast):
    """Simulated cycles per host second for one (workload, dispatcher)."""
    definition = get_workload(workload_name)
    previous = Cpu.fast_dispatch
    Cpu.fast_dispatch = fast
    try:
        card = TestCard()
        total_cycles = 0
        t0 = time.perf_counter()
        while True:
            card.init()
            card.load_program(definition.program)
            card.run(timeout_cycles=MICRO_CYCLE_BUDGET, max_iterations=8)
            total_cycles += card.cpu.cycles
            elapsed = time.perf_counter() - t0
            if elapsed >= MICRO_WINDOW_SECONDS:
                return total_cycles / elapsed
    finally:
        Cpu.fast_dispatch = previous


def _campaign():
    return CampaignData(
        campaign_name="e18-simcore",
        target_name="thor-rd",
        technique="scifi",
        workload_name="bubblesort",
        workload_params={"n": 12, "seed": 7},
        location_patterns=[
            "scan:internal/cpu.regfile.*",
            "scan:internal/cpu.psr",
            "scan:internal/dcache.*",
        ],
        n_experiments=N_EXPERIMENTS,
        seed=101,
    )


def _canonical(sink):
    return [
        (
            result.termination.kind,
            tuple(
                (inj.location.key(), inj.time, inj.bit_after)
                for inj in result.injections
            ),
            tuple(sorted(result.outputs.items())),
            tuple(sorted(result.state_vector.items())),
        )
        for result in sink.results
    ]


def _campaign_leg(fast):
    previous = Cpu.fast_dispatch
    Cpu.fast_dispatch = fast
    try:
        target = create_target("thor-rd")
        t0 = time.perf_counter()
        sink = target.run_campaign(_campaign())
        seconds = time.perf_counter() - t0
    finally:
        Cpu.fast_dispatch = previous
    return _canonical(sink), seconds


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_bench_e18_simcore(benchmark):
    def body():
        micro = {}
        for name in MICRO_WORKLOADS:
            fast_cps = _micro_leg(name, fast=True)
            ref_cps = _micro_leg(name, fast=False)
            micro[name] = (fast_cps, ref_cps)
        fast_rows, fast_seconds = _campaign_leg(fast=True)
        ref_rows, ref_seconds = _campaign_leg(fast=False)
        return micro, fast_rows, fast_seconds, ref_rows, ref_seconds

    micro, fast_rows, fast_seconds, ref_rows, ref_seconds = (
        benchmark.pedantic(body, rounds=1, iterations=1)
    )

    micro_metrics = {
        name: {
            "fast_cycles_per_second": fast_cps,
            "reference_cycles_per_second": ref_cps,
            "speedup": fast_cps / ref_cps,
        }
        for name, (fast_cps, ref_cps) in micro.items()
    }
    micro_speedup = _geomean(
        [m["speedup"] for m in micro_metrics.values()]
    )
    campaign_speedup = ref_seconds / max(fast_seconds, 1e-9)
    rows_identical = fast_rows == ref_rows

    print()
    print("E18: simulator-core throughput (fast vs reference dispatch)")
    for name, metrics in micro_metrics.items():
        print(
            f"  micro {name:12s} fast "
            f"{metrics['fast_cycles_per_second']:>12,.0f} cyc/s, "
            f"reference {metrics['reference_cycles_per_second']:>12,.0f} "
            f"cyc/s ({metrics['speedup']:.2f}x)"
        )
    print(f"  micro geomean speedup:  {micro_speedup:.2f}x")
    print(
        f"  campaign ({N_EXPERIMENTS} experiments): fast "
        f"{fast_seconds:.2f} s, reference {ref_seconds:.2f} s "
        f"({campaign_speedup:.2f}x, "
        f"{N_EXPERIMENTS / fast_seconds:.1f} exp/s)"
    )

    write_bench_json(
        "e18_simcore",
        {
            "n_experiments": N_EXPERIMENTS,
            "micro": micro_metrics,
            "micro_speedup": micro_speedup,
            "campaign_seconds_fast": fast_seconds,
            "campaign_seconds_reference": ref_seconds,
            "campaign_experiments_per_second": N_EXPERIMENTS / fast_seconds,
            "campaign_speedup": campaign_speedup,
            "rows_identical": rows_identical,
        },
    )

    # Correctness gate at every scale: the dispatchers are
    # indistinguishable in the logged rows.
    assert len(fast_rows) == N_EXPERIMENTS
    assert rows_identical

    # Acceptance numbers — asserted where the sample is big enough to be
    # stable; at reduced CI scale check_regression.py gates the recorded
    # ratios against the committed baseline instead.
    if FULL_SCALE:
        assert micro_speedup >= 3.0, (
            f"vectorized core delivered only {micro_speedup:.2f}x "
            f"cycles/second over the reference core (expected >= 3x)"
        )
        assert campaign_speedup >= 1.5, (
            f"campaign throughput gained only {campaign_speedup:.2f}x "
            f"(expected >= 1.5x)"
        )
