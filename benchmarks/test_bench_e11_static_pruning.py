"""E11 — static pre-injection pruning (trace-free liveness analysis).

Regenerates: the headroom of the static CFG/liveness oracle against the
paper's trace-based pre-injection analysis (Section 4). The static
analysis needs *no golden reference run* — only the assembled workload
image — so its cost is pure analysis wall-time, while the dynamic oracle
pays for a full reference execution first.

Shapes asserted:

* both oracles prune a non-trivial part of the register-file fault
  space (pruning ratio > 0);
* soundness shows up as precision ordering — the static oracle, being a
  sound over-approximation, keeps at least the live fraction the
  dynamic oracle keeps (prunes no more);
* the hybrid (intersection) oracle equals the dynamic result;
* building the static oracle is cheap relative to reference-run +
  dynamic-oracle construction.
"""

import time

from benchmarks.conftest import write_bench_json
from repro.analysis.faultspace import effective_fault_space
from repro.core import CampaignData, create_target
from repro.core.preinjection import PreInjectionAnalysis
from repro.staticanalysis import StaticPreInjectionAnalysis

WORKLOAD = "bubblesort"
PATTERNS = ["scan:internal/cpu.regfile.*", "scan:internal/cpu.psr"]
MAX_SAMPLES = 4096


def _setup():
    campaign = CampaignData(
        campaign_name="e11-static-pruning",
        technique="scifi",
        workload_name=WORKLOAD,
        workload_params={"n": 12, "seed": 11},
        location_patterns=PATTERNS,
        n_experiments=1,
        seed=1111,
    )
    target = create_target("thor-rd")
    target.read_campaign_data(campaign)
    return campaign, target


def test_bench_e11_static_pruning(benchmark):
    def body():
        campaign, target = _setup()

        # Dynamic oracle: reference run + trace analysis.
        t0 = time.perf_counter()
        reference = target.make_reference_run()
        dynamic = PreInjectionAnalysis.from_trace(
            reference.trace, target.location_space()
        )
        dynamic_seconds = time.perf_counter() - t0

        # Static oracle: program image only, no run.
        program = target.workload_program()
        t0 = time.perf_counter()
        static = StaticPreInjectionAnalysis(
            program, duration=reference.duration_cycles
        )
        static_seconds = time.perf_counter() - t0

        hybrid = target.campaign.modified(
            use_preinjection=True, preinjection_mode="hybrid"
        )
        target.read_campaign_data(hybrid)
        hybrid_oracle = target.build_preinjection_analysis(reference.trace)

        space = target.location_space()
        duration = reference.duration_cycles
        spaces = {
            name: effective_fault_space(
                campaign, space, duration, oracle, max_samples=MAX_SAMPLES
            )
            for name, oracle in (
                ("dynamic", dynamic),
                ("static", static),
                ("hybrid", hybrid_oracle),
            )
        }
        return static, spaces, static_seconds, dynamic_seconds

    static, spaces, static_seconds, dynamic_seconds = benchmark.pedantic(
        body, rounds=1, iterations=1
    )

    print()
    print("E11: static (trace-free) vs dynamic (trace-based) pruning")
    for name, pruned in spaces.items():
        print(f"  {name:8s} {pruned.describe()}")
    print(
        f"  dead registers (static): "
        f"{sorted(static.dead_registers) or 'none'}"
    )
    print(
        f"  oracle build time: static {static_seconds * 1e3:.2f} ms vs "
        f"reference run + dynamic {dynamic_seconds * 1e3:.2f} ms "
        f"({dynamic_seconds / max(static_seconds, 1e-9):.1f}x)"
    )

    # Both oracles must find real pruning headroom.
    assert spaces["static"].pruning_ratio > 0
    assert spaces["dynamic"].pruning_ratio > 0
    # Soundness ordering: the static over-approximation never prunes
    # more than the dynamic ground truth (same deterministic sample).
    assert (
        spaces["static"].live_fraction
        >= spaces["dynamic"].live_fraction
    )
    # The intersection equals the dynamic result on the same sample.
    assert (
        abs(spaces["hybrid"].live_fraction - spaces["dynamic"].live_fraction)
        < 1e-12
    )
    # Trace-free analysis costs a fraction of a reference run.
    assert static_seconds < dynamic_seconds

    write_bench_json(
        "e11_static_pruning",
        {
            "workload": WORKLOAD,
            "pruning_ratio": {
                name: pruned.pruning_ratio for name, pruned in spaces.items()
            },
            "live_fraction": {
                name: pruned.live_fraction for name, pruned in spaces.items()
            },
            "static_build_seconds": static_seconds,
            "dynamic_build_seconds": dynamic_seconds,
            "dead_registers": sorted(static.dead_registers),
        },
    )
