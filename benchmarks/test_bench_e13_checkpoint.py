"""E13 — golden-run checkpointing (cold vs warm-start wall time).

Regenerates: the companion acceleration study for the warm-start
subsystem (``repro.core.checkpoint``). One SCIFI campaign with a *late*
fixed-time trigger — the regime checkpointing targets, where every
experiment would otherwise re-simulate a long fault-free prefix — is
executed twice on fresh targets: once with ``warm_start=False`` (the
paper's cold start-from-reset path of Figure 2) and once with
``warm_start=True`` (restore the nearest reference-run checkpoint at or
before the injection time, then run forward). Results are compared
field-for-field (modulo wall clock) and the warm leg's
``checkpoint.cycles_saved`` counter is captured from the observability
layer.

Shapes asserted:

* warm and cold campaigns classify every experiment identically
  (termination kind, outputs, observed state) — the correctness gate;
* the warm leg restores at least one checkpoint and skips a nonzero
  number of simulated prefix cycles;
* at full scale, warm start delivers >= 2x wall-clock speedup (the
  acceptance number; reduced-scale CI runs report the ratio without
  gating it on noisy shared runners — check_regression gates the
  recorded ``warm_speedup`` against the committed baseline instead).

Environment knobs:

* ``E13_FULL=1``          run the 64-experiment acceptance campaign
                          (default 16, scaled by ``GOOFI_BENCH_SCALE``);
* ``E13_TRIGGER_FRAC``    injection point as a fraction of the
                          reference duration (default 0.85).

Emits ``BENCH_e13_checkpoint.json`` next to the repo root.
"""

import os
import time

from benchmarks.conftest import FULL_SCALE, scaled, write_bench_json
from repro.core import CampaignData, create_target
from repro.core.triggers import TriggerSpec
from repro.observability import configure, disable, get_observability

N_EXPERIMENTS = 64 if os.environ.get("E13_FULL") == "1" else scaled(16)
TRIGGER_FRAC = float(os.environ.get("E13_TRIGGER_FRAC", "0.85"))

#: Large enough that the fault-free prefix dominates an experiment.
WORKLOAD = "bubblesort"
WORKLOAD_PARAMS = {"n": 32}


def _campaign(name, warm, trigger_time):
    return CampaignData(
        campaign_name=name,
        target_name="thor-rd",
        technique="scifi",
        workload_name=WORKLOAD,
        workload_params=dict(WORKLOAD_PARAMS),
        location_patterns=["scan:internal/cpu.regfile.*"],
        n_experiments=N_EXPERIMENTS,
        seed=1313,
        trigger=TriggerSpec(kind="time-fixed", time=trigger_time),
        warm_start=warm,
    )


def _reference_duration():
    """Fault-free duration of the workload (cycles) — the trigger time
    is placed late in this window."""
    target = create_target("thor-rd")
    probe = _campaign("e13-probe", warm=False, trigger_time=1)
    probe.n_experiments = 1
    reference = target.prepare_run(probe)
    return reference.duration_cycles


def _canonical(sink):
    return [
        (
            result.termination.kind,
            tuple(
                (inj.location.key(), inj.time, inj.bit_after)
                for inj in result.injections
            ),
            tuple(sorted(result.outputs.items())),
            tuple(sorted(result.state_vector.items())),
        )
        for result in sink.results
    ]


def _run_leg(name, warm, trigger_time):
    campaign = _campaign(name, warm, trigger_time)
    target = create_target("thor-rd")
    if not warm:
        # The cold leg is the paper's plain Figure-2 baseline: no warm
        # starts, no divergence-window early exits, no outcome memo.
        target.early_exit = False
        target.memoize = False
    t0 = time.perf_counter()
    sink = target.run_campaign(campaign)
    seconds = time.perf_counter() - t0
    return _canonical(sink), seconds


def test_bench_e13_checkpoint(benchmark):
    duration = _reference_duration()
    trigger_time = max(1, int(duration * TRIGGER_FRAC))

    def body():
        cold_rows, cold_seconds = _run_leg(
            "e13-cold", warm=False, trigger_time=trigger_time
        )
        configure(metrics=True)
        try:
            warm_rows, warm_seconds = _run_leg(
                "e13-warm", warm=True, trigger_time=trigger_time
            )
            snapshot = get_observability().metrics.snapshot()
            counters = snapshot.get("counters", snapshot)
        finally:
            disable()
        return cold_rows, cold_seconds, warm_rows, warm_seconds, counters

    cold_rows, cold_seconds, warm_rows, warm_seconds, counters = (
        benchmark.pedantic(body, rounds=1, iterations=1)
    )

    hits = counters.get("checkpoint.hits", 0)
    memo_hits = counters.get("divergence.memo_hits", 0)
    cycles_saved = counters.get("checkpoint.cycles_saved", 0)
    speedup = cold_seconds / max(warm_seconds, 1e-9)

    print()
    print(
        f"E13: cold vs warm-start SCIFI campaign ({N_EXPERIMENTS} "
        f"experiments, {WORKLOAD} n={WORKLOAD_PARAMS['n']}, trigger at "
        f"cycle {trigger_time}/{duration})"
    )
    print(f"  cold: {cold_seconds:8.3f} s")
    print(f"  warm: {warm_seconds:8.3f} s   speedup {speedup:.2f}x")
    print(
        f"  checkpoint hits {hits}, memo hits {memo_hits}, "
        f"cycles saved {cycles_saved}"
    )

    write_bench_json(
        "e13_checkpoint",
        {
            "n_experiments": N_EXPERIMENTS,
            "workload": WORKLOAD,
            "trigger_cycle": trigger_time,
            "reference_cycles": duration,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_speedup": speedup,
            "checkpoint_hits": hits,
            "cycles_saved_total": cycles_saved,
            "outcomes_identical": cold_rows == warm_rows,
        },
    )

    # Correctness gate: classifications must be identical, every
    # experiment either restored from a checkpoint or replayed from the
    # outcome memo (a memo hit skips execution — and the restore —
    # entirely), real cycles skipped.
    assert len(cold_rows) == N_EXPERIMENTS
    assert cold_rows == warm_rows
    assert hits + memo_hits == N_EXPERIMENTS
    assert cycles_saved > 0

    # Wall-clock acceptance number — only meaningful at paper scale,
    # where per-campaign fixed costs amortise away.
    if FULL_SCALE:
        assert speedup >= 2.0, (
            f"warm start delivered only {speedup:.2f}x over cold "
            f"(expected >= 2x with the trigger at "
            f"{TRIGGER_FRAC:.0%} of the reference run)"
        )
