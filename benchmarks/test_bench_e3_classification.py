"""E3 — outcome classification (paper Section 3.4).

Regenerates: the Effective {Detected-per-mechanism, Escaped} /
Non-effective {Latent, Overwritten} distribution for SCIFI campaigns on
three location classes — register file, D-cache arrays, and PC/PSR/IR —
across two workloads.

Shapes asserted (the qualitative results of the Thor studies):
* random register-file injections are mostly non-effective (overwritten),
* D-cache array injections that are effective are detected overwhelmingly
  by the cache parity mechanism,
* control-state (PC/PSR/IR) injections produce a markedly higher
  effective-error fraction than register-file injections.
"""

from repro.analysis import Outcome
from benchmarks.conftest import (
    FULL_SCALE,
    print_comparison,
    run_campaign,
    scaled,
    write_bench_json,
)

N = scaled(120)


def _run(tag, workload, patterns, seed):
    return run_campaign(
        campaign_name=f"e3-{tag}",
        technique="scifi",
        workload_name=workload,
        location_patterns=patterns,
        n_experiments=N,
        seed=seed,
    )


def test_bench_e3_classification(benchmark):
    def body():
        return {
            "regs/sort": _run("regs", "bubblesort",
                              ["scan:internal/cpu.regfile.*"], 31),
            "dcache/sort": _run("dcache", "bubblesort",
                                ["scan:internal/dcache.*"], 32),
            "ctrl/sort": _run(
                "ctrl", "bubblesort",
                ["scan:internal/cpu.pc", "scan:internal/cpu.psr",
                 "scan:internal/cpu.pipeline.ir"], 33),
            "regs/matmul": _run("regs-mm", "matmul",
                                ["scan:internal/cpu.regfile.*"], 34),
        }

    outcomes = benchmark.pedantic(body, rounds=1, iterations=1)
    labels = list(outcomes)
    summaries = [outcomes[label][2] for label in labels]
    print_comparison(labels, summaries,
                     title="E3: outcome distribution by location class")

    regs = outcomes["regs/sort"][2]
    dcache = outcomes["dcache/sort"][2]
    ctrl = outcomes["ctrl/sort"][2]

    # Registers: non-effective errors dominate (most register bits are
    # dead most of the time — the flip is either overwritten or stays
    # latent in a register the workload never reads again).
    assert regs.non_effective > regs.total / 2

    # Cache arrays: among detected errors, parity is the top mechanism.
    detections = dcache.detections_by_mechanism
    assert detections, "no detections in the dcache campaign"
    top_mechanism = max(detections, key=detections.get)
    assert top_mechanism == "dcache_parity"

    # Control state is far more sensitive than the register file; the
    # 2x margin needs full-sized samples to be stable.
    regs_effective = regs.effective / regs.total
    ctrl_effective = ctrl.effective / ctrl.total
    assert ctrl_effective >= regs_effective
    if FULL_SCALE:
        assert ctrl_effective > 2 * regs_effective

    write_bench_json(
        "e3_classification",
        {
            "n_experiments": N,
            "regs_effective_fraction": regs_effective,
            "ctrl_effective_fraction": ctrl_effective,
            "dcache_top_mechanism": top_mechanism,
        },
    )
