"""E10 — error-detection latency.

A coverage number alone does not characterise a detection mechanism: how
*fast* it fires determines how far the error propagates before the
system can react (the recovery designs of the paper's companion study
depend on this). This bench measures, per mechanism, the distribution of
cycles between fault injection and the detecting trap.

Shapes asserted: cache-parity detections fire strictly after injection
(the corrupted word must be accessed) but within the experiment budget;
the D-cache parity latency is bounded by the workload's data-reuse
distance, so its median is far below the experiment length.
"""

from repro.analysis.latency import detection_latency
from benchmarks.conftest import (
    FULL_SCALE,
    print_report,
    run_campaign,
    scaled,
    write_bench_json,
)

N = scaled(200)


def test_bench_e10_detection_latency(benchmark):
    def body():
        return run_campaign(
            campaign_name="e10-latency",
            technique="scifi",
            workload_name="bubblesort",
            workload_params={"n": 12, "seed": 3},
            location_patterns=[
                "scan:internal/dcache.*",
                "scan:internal/icache.*",
                "scan:internal/cpu.pc",
            ],
            n_experiments=N,
            seed=1010,
        )

    target, sink, summary = benchmark.pedantic(body, rounds=1, iterations=1)
    print_report("E10: detection-latency campaign", summary)

    report = detection_latency(sink.results)
    print()
    print(report.render())

    min_detections = 20 if FULL_SCALE else 3
    assert len(report) >= min_detections, "campaign produced too few detections"
    duration = sink.reference.duration_cycles
    budget = duration * 3  # campaign timeout factor

    for sample in report.samples:
        assert 0 <= sample.latency <= budget

    stats = report.summary()
    assert stats["median"] > 0
    # Parity latency is bounded by data reuse, well below the run length.
    parity = report.summary("dcache_parity")
    if parity["count"] >= 5:
        assert parity["median"] < duration

    write_bench_json(
        "e10_latency",
        {
            "n_experiments": N,
            "detections": len(report),
            "median_latency_cycles": stats["median"],
        },
    )
