"""E17 — streaming campaign analytics over a live database.

Regenerates: the analytics-throughput study for ``goofi analyze``
(``repro.analysis.engine``). A synthetic campaign of 50k experiment
rows (deterministic outcome mix, no simulator in the loop) is landed in
a file database, then :func:`~repro.analysis.engine.analyze_campaign`
streams the full report — outcome mix with both interval families,
coverage breakdowns, heatmaps, equivalence accounting and the
sequential-stopping advisor — over a *read-only* WAL connection while a
concurrent writer keeps committing batches to a second campaign in the
same file. That is the tool's operational contract: analytics over a
live ``goofi serve`` database must neither stall the campaign writer
nor be stalled by it.

Shapes asserted:

* the streamed report classifies every synthetic row and its outcome
  counts equal the closed-form mix (the classifier is exercised at
  bulk, not sampled);
* the analysis pass finishes inside the wall-clock budget;
* the concurrent writer commits batches *during* the analysis pass and
  every row it wrote is present afterwards (nothing lost or blocked);
* equivalence accounting sees exactly the derived rows the synthesiser
  planted.

Environment knobs:

* ``E17_BUDGET_SECONDS``  analysis wall-clock budget (default 120);
* ``E17_WRITER_BATCH``    rows per concurrent-writer commit (default 100).

Emits ``BENCH_e17_analyze.json`` next to the repo root.
"""

import os
import threading
import time

from benchmarks.conftest import scaled, write_bench_json
from repro.analysis import Outcome
from repro.analysis.engine import analyze_campaign
from repro.core import CampaignData
from repro.core.experiment import (
    ExperimentResult,
    Injection,
    ReferenceRun,
    Termination,
)
from repro.core.locations import FaultLocation
from repro.db import GoofiDatabase

N_ROWS = scaled(50_000)
BUDGET_SECONDS = float(os.environ.get("E17_BUDGET_SECONDS", "120"))
WRITER_BATCH = int(os.environ.get("E17_WRITER_BATCH", "100"))
SYNTH_CHUNK = 5_000

ANALYZED = "e17-analyze"
LIVE = "e17-live"


def _campaign(name, n):
    return CampaignData(
        campaign_name=name,
        target_name="thor-rd",
        technique="scifi",
        workload_name="vecsum",
        location_patterns=["scan:internal/cpu.regfile.*"],
        n_experiments=n,
        seed=1700,
    )


def _reference():
    return ReferenceRun(
        duration_cycles=100,
        duration_instructions=50,
        termination=Termination(kind="halt", pc=0x110, cycle=100),
        state_vector={"scan:internal/cpu.pc": 0x110},
        outputs={"total": 55},
    )


def _synthetic_result(campaign_name, i):
    """Row ``i`` of the deterministic five-way outcome mix."""
    kw = {}
    if i % 5 == 0:
        kw["termination"] = Termination(
            kind="trap", pc=1, cycle=50, trap_name="wdog"
        )
    elif i % 5 == 1:
        kw["termination"] = Termination(kind="timeout", pc=2, cycle=999)
    elif i % 5 == 2:
        kw["outputs"] = {"total": 99}
    elif i % 5 == 3:
        kw["state_vector"] = {"scan:internal/cpu.pc": 0x114}
    if i % 11 == 0 and i > 0:
        kw["derived_from"] = f"{campaign_name}-exp00000"
    defaults = dict(
        name=f"{campaign_name}-exp{i:05d}",
        index=i,
        campaign_name=campaign_name,
        injections=[
            Injection(
                time=(i * 13) % 100,
                location=FaultLocation(
                    "scan:internal", f"cpu.regfile.r{i % 8}", i % 8
                ),
                op="flip" if i % 2 else "stuck0",
                bit_before=0,
                bit_after=1,
            )
        ],
        termination=Termination(kind="halt", pc=0x110, cycle=101),
        state_vector={"scan:internal/cpu.pc": 0x110},
        outputs={"total": 55},
        wall_seconds=0.02,
    )
    defaults.update(kw)
    return ExperimentResult(**defaults)


def _mix_count(n, residue):
    """How many of ``range(n)`` satisfy ``i % 5 == residue``."""
    return n // 5 + (1 if n % 5 > residue else 0)


class _LiveWriter(threading.Thread):
    """Commits batches to a second campaign until told to stop."""

    def __init__(self, db_path, campaign):
        super().__init__(daemon=True)
        self.db_path = db_path
        self.campaign = campaign
        self.stop_event = threading.Event()
        self.first_commit = threading.Event()
        self.commits = 0
        self.rows = 0
        self.error = None

    def run(self):
        try:
            with GoofiDatabase(self.db_path) as db:
                while not self.stop_event.is_set():
                    batch = [
                        _synthetic_result(LIVE, self.rows + j)
                        for j in range(WRITER_BATCH)
                    ]
                    db.log_experiments(self.campaign, batch)
                    self.rows += len(batch)
                    self.commits += 1
                    self.first_commit.set()
        except Exception as exc:  # surfaced by the main thread
            self.error = exc
            self.first_commit.set()


def test_bench_e17_analyze(benchmark, tmp_path):
    db_path = str(tmp_path / "e17.db")
    analyzed = _campaign(ANALYZED, N_ROWS)
    live = _campaign(LIVE, N_ROWS)

    t0 = time.perf_counter()
    with GoofiDatabase(db_path) as db:
        db.save_campaign(analyzed)
        db.log_reference(analyzed, _reference())
        db.save_campaign(live)
        db.log_reference(live, _reference())
        for start in range(0, N_ROWS, SYNTH_CHUNK):
            db.log_experiments(
                analyzed,
                [
                    _synthetic_result(ANALYZED, i)
                    for i in range(start, min(start + SYNTH_CHUNK, N_ROWS))
                ],
            )
    synth_seconds = time.perf_counter() - t0

    def analysis_leg():
        writer = _LiveWriter(db_path, live)
        writer.start()
        assert writer.first_commit.wait(timeout=60)
        commits_before = writer.commits
        with GoofiDatabase(db_path, readonly=True) as ro:
            t_start = time.perf_counter()
            report = analyze_campaign(ro, ANALYZED, batch_size=1024)
            seconds = time.perf_counter() - t_start
        commits_during = writer.commits - commits_before
        writer.stop_event.set()
        writer.join(timeout=60)
        assert writer.error is None, writer.error
        return report, seconds, commits_during, writer.rows

    report, analyze_seconds, commits_during, writer_rows = benchmark.pedantic(
        analysis_leg, rounds=1, iterations=1
    )

    rows_per_second = N_ROWS / max(analyze_seconds, 1e-9)
    half_width = report.stopping.half_width

    print()
    print(
        f"E17: streamed report over {N_ROWS} rows with a live writer "
        f"({WRITER_BATCH} rows/commit) in the same database"
    )
    print(f"  synthesis: {synth_seconds:8.3f} s")
    print(f"  analysis:  {analyze_seconds:8.3f} s "
          f"({rows_per_second:.0f} rows/s, budget {BUDGET_SECONDS:.0f} s)")
    print(f"  writer commits during analysis: {commits_during} "
          f"({writer_rows} rows total)")
    print(f"  detection-coverage CI half-width: {half_width:.4f}")

    write_bench_json(
        "e17_analyze",
        {
            "n_experiments": N_ROWS,
            "synth_seconds": synth_seconds,
            "analyze_seconds": analyze_seconds,
            "analyze_rows_per_second": rows_per_second,
            "writer_commits_during_analysis": commits_during,
            "writer_made_progress": commits_during > 0,
            "detected_fraction": report.summary.fraction(Outcome.DETECTED),
            "ci_half_width": half_width,
            "budget_seconds": BUDGET_SECONDS,
        },
    )

    # Correctness gates: the streamed report saw every row and agrees
    # with the closed-form outcome mix of the synthesiser.
    assert report.summary.total == N_ROWS
    counts = report.summary.counts
    assert counts[Outcome.DETECTED] == _mix_count(N_ROWS, 0)
    assert counts[Outcome.ESCAPED_TIMING] == _mix_count(N_ROWS, 1)
    assert counts[Outcome.ESCAPED_VALUE] == _mix_count(N_ROWS, 2)
    assert counts[Outcome.LATENT] == _mix_count(N_ROWS, 3)
    assert counts[Outcome.OVERWRITTEN] == _mix_count(N_ROWS, 4)
    expected_derived = len(
        [i for i in range(N_ROWS) if i % 11 == 0 and i > 0]
    )
    assert report.n_derived == expected_derived

    # The wall-clock budget (generous; the regression gate tracks the
    # throughput trend, this guards against collapse).
    assert analyze_seconds <= BUDGET_SECONDS

    # The live writer was never stalled: it kept committing while the
    # analysis pass streamed (skip the overlap assert only when the
    # pass was too quick for the check to be meaningful).
    if analyze_seconds > 0.2:
        assert commits_during > 0
    # ... and every row it committed is durable in the same file.
    with GoofiDatabase(db_path, readonly=True) as ro:
        assert ro.count_experiments(LIVE) == writer_rows
