#!/usr/bin/env python3
"""Parallel campaign execution: shard one campaign over worker processes.

The serial fault-injection loop (Figure 7) becomes embarrassingly
parallel on a simulated target: every experiment reinitialises the test
card and draws its fault from an index-keyed RNG substream, so results
are bit-identical no matter which process runs them. This walkthrough:

  1. runs the same SWIFI campaign serially and over a 4-worker pool,
  2. proves the logged experiment rows are byte-identical (modulo the
     wall-clock field),
  3. drives the pool through the Figure-7 controller — same progress
     window, same pause/resume/end buttons — and stops it early,
  4. resumes the stopped campaign from the database sink.

Run:  python examples/parallel_campaign.py
"""

import time

from repro.core import (
    CampaignData,
    ParallelCampaignController,
    ParallelConfig,
    create_target,
    run_parallel_campaign,
    worker_factory,
)
from repro.core.parallel import canonical_experiment_rows
from repro.db import GoofiDatabase
from repro.ui import ProgressWindow


def make_campaign(name: str, n_experiments: int = 120) -> CampaignData:
    return CampaignData(
        campaign_name=name,
        target_name="thor-rd",
        technique="swifi-pre",
        workload_name="vecsum",
        location_patterns=["memory:data/*"],
        n_experiments=n_experiments,
        seed=424242,
    )


def main() -> None:
    config = ParallelConfig(n_workers=4, shard_size=8, batch_size=32)

    # --- 1+2: serial vs parallel, byte-identical rows --------------------
    campaign = make_campaign("par-demo")
    serial_db = GoofiDatabase(":memory:")
    t0 = time.perf_counter()
    create_target("thor-rd").run_campaign(campaign, sink=serial_db)
    serial_s = time.perf_counter() - t0

    parallel_db = GoofiDatabase(":memory:")
    t0 = time.perf_counter()
    run_parallel_campaign(
        campaign, worker_factory("thor-rd"), sink=parallel_db, config=config
    )
    parallel_s = time.perf_counter() - t0

    same = canonical_experiment_rows(
        serial_db, "par-demo"
    ) == canonical_experiment_rows(parallel_db, "par-demo")
    print(f"serial   {serial_s:6.2f}s")
    print(f"parallel {parallel_s:6.2f}s  ({config.n_workers} workers)")
    print(f"logged rows byte-identical: {same}")
    assert same
    print()

    # --- 3: Figure-7 controller over the pool, stopped early -------------
    db = GoofiDatabase(":memory:")
    campaign = make_campaign("par-controlled")
    controller = ParallelCampaignController(
        worker_factory("thor-rd"), sink=db, config=config
    )
    window = ProgressWindow(controller)
    controller.add_listener(
        lambda p: controller.stop() if p.n_done >= 40 else None
    )
    controller.run(campaign)
    print(window.render())
    done = db.count_experiments("par-controlled")
    print(f"stopped early with {done} experiments logged")
    print()

    # --- 4: resume from the sink ------------------------------------------
    resumed = ParallelCampaignController(
        worker_factory("thor-rd"), sink=db, config=config
    )
    resumed.run(campaign, resume=True)
    print(ProgressWindow(resumed).render())
    assert resumed.progress.n_done == campaign.n_experiments
    print(
        f"resumed to completion: "
        f"{db.count_experiments('par-controlled')} rows logged"
    )


if __name__ == "__main__":
    main()
