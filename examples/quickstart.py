#!/usr/bin/env python3
"""Quickstart: one SCIFI fault-injection campaign, end to end.

Covers the paper's four phases in ~50 lines:
  configuration  - save the target's scan-chain layout (TargetSystemData)
  set-up         - define a campaign (CampaignData)
  fault injection- run it with live progress (LoggedSystemState)
  analysis       - classify outcomes and estimate coverage

Run:  python examples/quickstart.py
"""

from repro.core import CampaignData, CampaignController, create_target
from repro.db import GoofiDatabase
from repro.db.autoanalysis import run_auto_analysis
from repro.ui import ProgressWindow, TargetConfigurationWindow


def main() -> None:
    db = GoofiDatabase(":memory:")  # use a file path to keep results

    # --- configuration phase (Figure 5) --------------------------------
    target = create_target("thor-rd")
    config_window = TargetConfigurationWindow(target, db)
    config_window.save()
    print(config_window.render(max_rows=10))
    print()

    # --- set-up phase (Figure 6) ----------------------------------------
    campaign = CampaignData(
        campaign_name="quickstart",
        target_name="thor-rd",
        technique="scifi",
        workload_name="bubblesort",
        location_patterns=[
            "scan:internal/cpu.regfile.*",
            "scan:internal/dcache.*",
        ],
        n_experiments=150,
        seed=2026,
    )
    db.save_campaign(campaign)

    # --- fault-injection phase (Figure 7) --------------------------------
    controller = CampaignController(target, sink=db)
    window = ProgressWindow(controller)
    controller.run(campaign)
    print(window.render())
    print()

    # --- analysis phase ----------------------------------------------------
    print(run_auto_analysis(db, "quickstart"))


if __name__ == "__main__":
    main()
