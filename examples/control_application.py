#!/usr/bin/env python3
"""Control application with executable assertions and best-effort recovery.

Reproduces the study the paper's Section 3.2 environment-simulator support
exists for (its companion paper [12]): a PID controller regulating an
open-loop-unstable plant (inverted pendulum), hit with transient register
faults, with and without software protection:

  * unprotected  — the raw Q8 PID loop,
  * protected    — the same loop guarded by executable assertions on the
                   sensor value and the computed actuation, with
                   best-effort recovery (hold last good output, reset
                   controller state).

A *critical failure* is an experiment where the plant deviates beyond a
bound the fault-free run never approaches — i.e. control was lost.

Run:  python examples/control_application.py  [n_experiments]
"""

import sys

from repro.analysis import classify_campaign
from repro.analysis.report import render_comparison
from repro.core import CampaignData, create_target
from repro.core.campaign import EnvironmentSpec

# Plant deviation (engineering units) beyond which control is lost; the
# fault-free closed loop stays well inside this.
CRITICAL_DEVIATION = 50.0


def run_variant(assertions: bool, n_experiments: int):
    campaign = CampaignData(
        campaign_name=f"control-{'protected' if assertions else 'unprotected'}",
        target_name="thor-rd",
        technique="scifi",
        workload_name="pid-control",
        workload_params={"assertions": assertions},
        location_patterns=["scan:internal/cpu.regfile.*"],
        environment=EnvironmentSpec(
            name="inverted-pendulum", params={"initial": 0.2}
        ),
        max_iterations=200,
        n_experiments=n_experiments,
        seed=99,  # same seed: both variants see the same fault set
    )
    target = create_target("thor-rd")
    sink = target.run_campaign(campaign)
    return campaign, sink


def critical_failures(sink) -> int:
    count = 0
    for result in sink.results:
        max_error = result.outputs.get("env.max_abs_error", 0) / 256.0
        if max_error > CRITICAL_DEVIATION:
            count += 1
    return count


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 120

    labels, summaries, criticals, recoveries = [], [], [], []
    for assertions in (False, True):
        campaign, sink = run_variant(assertions, n)
        summary = classify_campaign(sink.results, sink.reference)
        labels.append("protected" if assertions else "unprotected")
        summaries.append(summary)
        criticals.append(critical_failures(sink))
        recoveries.append(
            sum(result.outputs.get("rec_count", 0) for result in sink.results)
        )
        ref_error = sink.reference.outputs["env.max_abs_error"] / 256.0
        print(
            f"{labels[-1]:12s} reference max deviation: {ref_error:6.2f} "
            f"(critical bound {CRITICAL_DEVIATION})"
        )

    print()
    print(render_comparison(labels, summaries))
    print()
    print(f"{'variant':12s} {'critical failures':>18s} {'recoveries':>12s}")
    for label, critical, recovery in zip(labels, criticals, recoveries):
        # The unprotected build has no recovery counter; faults can leave
        # garbage in that memory word, so only report it when meaningful.
        recovery_text = str(recovery) if label == "protected" else "-"
        print(f"{label:12s} {critical:>12d}/{n:<5d} {recovery_text:>12s}")
    print()
    if criticals[1] < criticals[0]:
        print(
            "=> executable assertions + best-effort recovery reduced "
            f"critical failures by {criticals[0] - criticals[1]} "
            f"({criticals[0]} -> {criticals[1]})"
        )
    else:
        print("=> no reduction observed at this sample size; increase n")


if __name__ == "__main__":
    main()
