#!/usr/bin/env python3
"""Live campaign telemetry: exporter, health monitor, flight recorder.

A long fault-injection campaign should be *watchable* while it runs, not
just auditable afterwards. This walkthrough:

  1. starts the OpenMetrics exporter on an ephemeral port and runs a
     parallel campaign while a monitor thread polls ``/snapshot`` and
     ``/healthz`` — the same endpoints a Prometheus scraper or a
     load-balancer health check would hit;
  2. prints the raw ``/metrics`` exposition once the campaign drains,
     with per-worker experiment counters folded into ``worker="N"``
     labels;
  3. deliberately wedges a worker (an experiment that never returns) so
     the health monitor raises a **stall** alert, the watchdog kills the
     worker, and the crash **flight recorder** dumps the last trace
     events to ``flight-<pid>.jsonl`` — the post-mortem you get even
     though no trace file was configured;
  4. shows the RunMeta provenance rows both runs left in the database
     (tool version, seed, config hash, worker count, final metrics).

Run:  python examples/live_monitoring.py
"""

import json
import os
import tempfile
import threading
import time
import urllib.request

from repro import observability
from repro.core import (
    CampaignData,
    ParallelCampaignController,
    ParallelConfig,
    worker_factory,
)
from repro.core.framework import register_target, unregister_target
from repro.db import GoofiDatabase
from repro.observability.flightrec import read_flight_dump
from repro.observability.runmeta import render_runs
from repro.scifi.interface import ThorRDInterface

WORK_DIR = tempfile.mkdtemp(prefix="goofi-live-")


def make_campaign(name, n_experiments, target="thor-rd"):
    return CampaignData(
        campaign_name=name,
        target_name=target,
        technique="scifi",
        workload_name="vecsum",
        location_patterns=["scan:internal/cpu.regfile.*"],
        n_experiments=n_experiments,
        seed=7,
    )


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read().decode("utf-8")


# -- 1. a healthy parallel campaign, polled while it runs -------------------

def poll_endpoints(exporter, stop_event, lines):
    while not stop_event.is_set():
        snapshot = json.loads(fetch(exporter.url("/snapshot")))
        health = json.loads(fetch(exporter.url("/healthz")))
        n_done = snapshot.get("gauges", {}).get("campaign.n_done", 0)
        eta = health.get("eta_seconds")
        lines.append(
            f"  poll: n_done={int(n_done):3d}  status={health['status']}"
            + (f"  eta={eta:.1f}s" if eta is not None else "")
        )
        time.sleep(0.05)


def healthy_run(db):
    print("=== live scrape of a healthy parallel campaign ===")
    exporter = observability.start_exporter(port=0)
    print(f"exporter listening on {exporter.url('/metrics')}")
    campaign = make_campaign("live-demo", n_experiments=40)
    controller = ParallelCampaignController(
        worker_factory("thor-rd"),
        sink=db,
        config=ParallelConfig(n_workers=4, shard_size=4,
                              start_method="fork"),
    )
    stop_event = threading.Event()
    lines = []
    poller = threading.Thread(
        target=poll_endpoints, args=(exporter, stop_event, lines)
    )
    poller.start()
    controller.run(campaign)
    stop_event.set()
    poller.join()
    for line in lines[:6]:
        print(line)
    print(f"  ... ({len(lines)} polls total)")

    print("\nfinal /metrics exposition (experiment counters):")
    for line in fetch(exporter.url("/metrics")).splitlines():
        if "experiments_total" in line:
            print(f"  {line}")
    exporter.stop()


# -- 2. a wedged worker: stall alert + flight-recorder post-mortem ----------

class WedgedPort(ThorRDInterface):
    """Experiment #3 never returns (a hung simulator)."""

    def run_single_experiment(self, index, plan=None, reference=None):
        if index == 3:
            time.sleep(3600)
        return super().run_single_experiment(index, plan, reference)


def wedged_run(db):
    print("\n=== a wedged worker: stall alert + flight recorder ===")
    register_target("thor-rd-wedged")(WedgedPort)
    try:
        campaign = make_campaign(
            "wedged-demo", n_experiments=10, target="thor-rd-wedged"
        )
        controller = ParallelCampaignController(
            worker_factory("thor-rd-wedged"),
            sink=db,
            config=ParallelConfig(
                n_workers=2,
                shard_size=2,
                timeout_seconds=5.0,  # the watchdog kill
                max_retries=0,
                start_method="fork",
            ),
        )
        controller.run(campaign)
        print(f"campaign state: {controller.progress.state}")
        print(f"terminations:   {controller.progress.terminations}")
        for alert in controller.health.alerts:
            print(f"health alert:   [{alert.kind}] {alert.message}")

        obs = observability.get_observability()
        print(f"flight dumps:   {obs.flightrec.dump_reasons}")
        dump_file = os.path.join(WORK_DIR, f"flight-{os.getpid()}.jsonl")
        records = read_flight_dump(dump_file)
        print(f"post-mortem {os.path.basename(dump_file)} "
              f"({len(records)} records); last events before the dump:")
        for record in records[-5:]:
            print(f"  {record['kind']:5s} {record['name']}")
    finally:
        unregister_target("thor-rd-wedged")


def main():
    # Metrics + flight recorder on, no trace file: the ring keeps the
    # last 128 records in memory and only touches disk on a dump.
    observability.configure(
        metrics=True, flight_records=128, flight_dir=WORK_DIR
    )
    db = GoofiDatabase(os.path.join(WORK_DIR, "live.db"))
    try:
        healthy_run(db)
        wedged_run(db)

        print("\n=== RunMeta provenance rows ===")
        print(render_runs(db.list_runs()))
    finally:
        db.close()
        observability.disable()
    print(f"\nartifacts in {WORK_DIR}")


if __name__ == "__main__":
    main()
