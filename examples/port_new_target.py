#!/usr/bin/env python3
"""Porting GOOFI to a new target system (the paper's Figure 3 workflow).

Two ports are demonstrated:

1. ``generate_port_skeleton`` emits the Framework template a programmer
   starts from — abstract building blocks stubbed with
   "Write your code here!".

2. A real (if small) port: a Thor RD board variant with a larger D-cache
   and no parity checking, registered as a new target. Only the
   constructor differs — every building block is inherited — which is
   exactly the porting effort the paper's architecture promises when the
   new target resembles an existing one. The same campaign is then run on
   both boards; without parity, cache faults stop being detected and
   become escapes/latent errors.

Run:  python examples/port_new_target.py
"""

from repro.analysis import classify_campaign
from repro.analysis.report import render_comparison
from repro.core import CampaignData, create_target, register_target
from repro.core.framework import generate_port_skeleton, supported_techniques
from repro.scifi.interface import ThorRDInterface
from repro.thor.cpu import CpuConfig


# --- 1. the skeleton a brand-new port starts from -------------------------

print("=" * 70)
print("Framework skeleton for a new target (first 24 lines):")
print("=" * 70)
skeleton = generate_port_skeleton("MyBoard", techniques=["scifi"])
print("\n".join(skeleton.splitlines()[:24]))
print("...")
print()


# --- 2. an actual port: a board variant -----------------------------------

@register_target("thor-rd-noparity")
class ThorNoParityInterface(ThorRDInterface):
    """Thor RD test card populated with a chip whose cache parity logic
    is fused off (e.g. an early engineering sample)."""

    def __init__(self):
        super().__init__(
            config=CpuConfig(dcache_lines=32, parity_checking=False)
        )


print("techniques supported by the new port:",
      supported_techniques(ThorNoParityInterface))
print()

labels, summaries = [], []
for target_name in ("thor-rd", "thor-rd-noparity"):
    campaign = CampaignData(
        campaign_name=f"port-{target_name}",
        target_name=target_name,
        technique="scifi",
        workload_name="matmul",
        location_patterns=["scan:internal/dcache.line0*",
                           "scan:internal/dcache.line1*"],
        n_experiments=80,
        seed=5,
    )
    target = create_target(target_name)
    sink = target.run_campaign(campaign)
    labels.append(target_name)
    summaries.append(classify_campaign(sink.results, sink.reference))

print(render_comparison(labels, summaries))
print()
print("=> with parity fused off, D-cache faults are no longer detected;")
print("   they surface as escaped or latent errors instead.")
