#!/usr/bin/env python3
"""Pre-injection analysis: making every experiment count.

The paper's Section 4: "The purpose of this analysis is to determine when
registers and other fault injection locations hold live data. Injecting a
fault into a location that does not hold live data serves no purpose,
since the fault will be overwritten."

This example runs the same register-file campaign twice — uniform
sampling vs liveness-filtered sampling — and shows the efficiency gain,
plus a peek at the liveness oracle itself.

Run:  python examples/preinjection_analysis.py  [n_experiments]
"""

import sys

from repro.analysis import classify_campaign
from repro.analysis.coverage import effectiveness_ratio
from repro.analysis.report import render_comparison
from repro.core import CampaignData, create_target
from repro.core.locations import FaultLocation
from repro.core.preinjection import PreInjectionAnalysis


def run(use_preinjection: bool, n: int):
    campaign = CampaignData(
        campaign_name=f"pre-{use_preinjection}",
        technique="scifi",
        workload_name="quicksort",
        location_patterns=["scan:internal/cpu.regfile.*"],
        n_experiments=n,
        seed=2025,
        use_preinjection=use_preinjection,
    )
    target = create_target("thor-rd")
    sink = target.run_campaign(campaign)
    return target, sink


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 150

    target, random_sink = run(False, n)
    _, live_sink = run(True, n)

    random_summary = classify_campaign(random_sink.results,
                                       random_sink.reference)
    live_summary = classify_campaign(live_sink.results, live_sink.reference)

    print(render_comparison(
        ["uniform sampling", "pre-injection analysis"],
        [random_summary, live_summary],
    ))
    random_eff = effectiveness_ratio(random_summary)
    live_eff = effectiveness_ratio(live_summary)
    print()
    print(f"effectiveness, uniform:       {random_eff}")
    print(f"effectiveness, pre-injection: {live_eff}")
    print(f"efficiency gain:              "
          f"{live_eff.estimate / max(random_eff.estimate, 1e-9):.2f}x")

    # A peek into the liveness oracle: when does each register hold live
    # data during the reference run?
    print()
    print("register liveness over the reference run (sampled each 10%):")
    reference = random_sink.reference
    oracle = PreInjectionAnalysis.from_trace(
        reference.trace, target.location_space()
    )
    instants = [
        max(1, reference.duration_cycles * i // 10) for i in range(1, 11)
    ]
    print("        " + " ".join(f"{t:>6d}" for t in instants))
    for reg in range(16):
        location = FaultLocation("scan:internal", f"cpu.regfile.r{reg}", 0)
        row = "".join(
            "   []  " if oracle.is_live(location, t) else "   .   "
            for t in instants
        )
        print(f"  r{reg:<3d}" + row)
    print("  ([] = live: the next access reads the register)")


if __name__ == "__main__":
    main()
