#!/usr/bin/env python3
"""Static pre-injection analysis: pruning without a golden run.

The paper's trace-based pre-injection analysis (Section 4) needs a
reference execution before it can tell live locations from dead ones.
The static-analysis subsystem answers the same question from the
assembled workload image alone: build the control-flow graph, solve
backward register/flag liveness over it, and expose the result through
the same ``is_live(location, time)`` oracle interface.

This example walks the whole pipeline for one workload:

1. the instruction-level CFG (basic blocks + edges),
2. the liveness verdict (which registers the workload can ever read),
3. the campaign lint pass built on it (dead registers, zero-match
   patterns, dead stores),
4. the live fraction of the register-file fault space under the
   static, dynamic, and hybrid (intersection) oracles.

Run:  python examples/static_preinjection.py  [workload]
"""

import sys

from repro.analysis.faultspace import effective_fault_space
from repro.core import CampaignData, create_target
from repro.core.framework import setup_campaign
from repro.staticanalysis import StaticPreInjectionAnalysis, lint_campaign


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "vecsum"

    campaign = CampaignData(
        campaign_name="static-preinjection-demo",
        technique="scifi",
        workload_name=workload,
        location_patterns=["scan:internal/cpu.regfile.*"],
        n_experiments=10,
        seed=42,
        use_preinjection=True,
        preinjection_mode="static",
    )
    target = create_target("thor-rd")
    setup_campaign(target, campaign, strict=False)
    program = target.workload_program()

    # 1. The control-flow graph.
    oracle = StaticPreInjectionAnalysis(program)
    print(f"=== CFG of workload {workload!r} ===")
    print(oracle.cfg.render())

    # 2. Liveness summary.
    print("=== Static liveness ===")
    print(f"live registers: {sorted(oracle.live_registers)}")
    print(f"dead registers: {sorted(oracle.dead_registers) or 'none'}")

    # 3. Campaign lint (add a deliberately bad pattern to show errors).
    print()
    print("=== Campaign lint ===")
    bad = campaign.modified(
        location_patterns=campaign.location_patterns
        + ["scan:internal/cpu.no_such_unit.*"]
    )
    findings = lint_campaign(bad, target.location_space(), program=program)
    for finding in findings:
        print(f"  {finding}")

    # 4. Static vs dynamic vs hybrid pruning of the fault space.
    print()
    print("=== Fault-space pruning (static vs dynamic vs hybrid) ===")
    reference = target.make_reference_run()
    space = target.location_space()
    for mode in ("static", "dynamic", "hybrid"):
        target.read_campaign_data(campaign.modified(preinjection_mode=mode))
        live = target.build_preinjection_analysis(reference.trace)
        pruned = effective_fault_space(
            campaign, space, reference.duration_cycles, live
        )
        print(f"  {mode:8s} {pruned.describe()}")


if __name__ == "__main__":
    main()
