"""Target interface for simulation-based fault injection.

Identical target system, different access path: faults and observations
go straight to simulator state (``inject_fault_direct``), bypassing the
scan chains. Registered as the ``thor-rd-sim`` target so campaigns can
compare techniques on the same chip (benchmark E4).
"""

from __future__ import annotations

from repro.core.experiment import StateVector
from repro.core.framework import register_target
from repro.scifi.interface import _SWREG_RE, ThorRDInterface


@register_target("thor-rd-sim")
class ThorSimInterface(ThorRDInterface):
    """Thor RD accessed as a white-box simulation model."""

    def capture_state_vector(self) -> StateVector:
        """Observation without scan cost: read cell values directly.

        The simulation baseline sees the same observe-pattern cells but
        does not shift chains to do so — this is design decision D3 in
        DESIGN.md and part of what benchmark E4 measures.
        """
        vector: StateVector = {}
        for cell in self._observe_cells:
            if cell.space.startswith("scan:"):
                chain_name = cell.space.split(":", 1)[1]
                chain = self.card.chain(chain_name)
                vector[cell.full_path] = chain.cell(cell.path).reader()
            elif cell.space.startswith("memory:"):
                address = int(cell.path.split("0x", 1)[1], 16)
                vector[cell.full_path] = self.card.read_memory(address)
            elif cell.space == "swreg":
                match = _SWREG_RE.match(cell.path)
                if match:
                    vector[cell.full_path] = self.card.cpu.regs.read(
                        int(match.group(1))
                    )
        return vector
