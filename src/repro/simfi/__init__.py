"""Simulation-based fault injection baseline.

MEFISTO- and VERIFY-style tools (the paper's Section 1 taxonomy) inject
faults into a *simulation model* of the system: every state element is
directly readable and writable, with no scan-chain serialization cost and
no reachability limits. Because the repro target is itself a simulator,
this baseline is the same test card accessed without going through the
scan chains — which is exactly the comparison of the paper's companion
study [10] (simulation-based vs. scan-chain implemented fault injection).
"""

from repro.simfi.interface import ThorSimInterface

__all__ = ["ThorSimInterface"]
