"""Wire contract of the campaign fabric: job specs, job records, config.

Everything the REST surface exchanges is defined here as plain
dataclasses with explicit ``to_dict`` / ``from_dict`` round trips, so
the server, the client and the tests share one source of truth for the
JSON shapes. A submitted job wraps a full
:class:`~repro.core.campaign.CampaignData` spec — the same JSON document
``goofi lint --spec`` validates — plus the scheduling envelope (tenant,
priority, requested workers).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.campaign import CampaignData
from repro.util.errors import ServiceError

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobSpec",
    "ServiceConfig",
    "canonical_rows_payload",
]

#: Every state a fabric job can be in. ``queued`` and ``paused`` are
#: pre-execution states (paused jobs are withheld from the scheduler);
#: ``running`` jobs delegate pause/resume/cancel to their live campaign
#: controller; the rest are terminal.
JOB_STATES = (
    "queued",
    "paused",
    "running",
    "finished",
    "failed",
    "cancelled",
)

#: States a job can never leave.
TERMINAL_STATES = ("finished", "failed", "cancelled")


@dataclass
class JobSpec:
    """What a client submits: a campaign plus its scheduling envelope."""

    campaign: CampaignData
    #: Quota accounting key; every submission belongs to a tenant.
    tenant: str = "default"
    #: Larger runs earlier; FIFO within equal priority.
    priority: int = 0
    #: Worker processes requested from the fleet (the grant may be
    #: smaller when the fleet is nearly saturated, never zero).
    n_workers: int = 1
    #: Adopt/populate the server's golden-run disk cache so reference
    #: runs dedupe across jobs with identical config hashes.
    use_golden_cache: bool = True

    def validate(self) -> None:
        if not self.tenant or not isinstance(self.tenant, str):
            raise ServiceError("job tenant must be a non-empty string")
        if not isinstance(self.priority, int):
            raise ServiceError("job priority must be an integer")
        if not isinstance(self.n_workers, int) or self.n_workers < 1:
            raise ServiceError("job n_workers must be an integer >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign.to_dict(),
            "tenant": self.tenant,
            "priority": self.priority,
            "n_workers": self.n_workers,
            "use_golden_cache": self.use_golden_cache,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Parse a submission body.

        Accepts both the enveloped form (``{"campaign": {...},
        "tenant": ...}``) and a bare campaign spec — the exact document
        ``goofi lint --spec`` takes — which submits with envelope
        defaults."""
        if not isinstance(payload, dict):
            raise ServiceError("job submission must be a JSON object")
        if "campaign" in payload:
            campaign_doc = payload["campaign"]
            envelope = payload
        else:
            campaign_doc = payload
            envelope = {}
        if not isinstance(campaign_doc, dict):
            raise ServiceError("job campaign must be a JSON object")
        try:
            campaign = CampaignData.from_dict(campaign_doc)
        except Exception as exc:
            raise ServiceError(f"invalid campaign spec: {exc}") from exc
        spec = cls(
            campaign=campaign,
            tenant=str(envelope.get("tenant", "default")),
            priority=int(envelope.get("priority", 0)),
            n_workers=int(envelope.get("n_workers", 1)),
            use_golden_cache=bool(envelope.get("use_golden_cache", True)),
        )
        spec.validate()
        return spec


@dataclass
class JobRecord:
    """One job's full lifecycle state, as tracked by the queue/server."""

    job_id: str
    spec: JobSpec
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Worker processes actually granted by the fleet (0 until running).
    allocated_workers: int = 0
    #: RunMeta provenance row id once the execution opened one.
    run_id: Optional[int] = None
    #: Terminal error detail for ``failed`` jobs.
    error: Optional[str] = None
    #: Final progress summary (n_done, terminations, elapsed …).
    result: Optional[Dict[str, Any]] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def active(self) -> bool:
        """Counted against the tenant quota: not yet terminal."""
        return not self.terminal

    def to_dict(self) -> Dict[str, Any]:
        """The ``GET /jobs/<id>`` body (sans live progress, which the
        server grafts on for running jobs)."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "n_workers": self.spec.n_workers,
            "allocated_workers": self.allocated_workers,
            "campaign_name": self.spec.campaign.campaign_name,
            "n_experiments": self.spec.campaign.n_experiments,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "run_id": self.run_id,
            "error": self.error,
            "result": self.result,
        }


def _default_workers() -> int:
    return max(2, os.cpu_count() or 1)


@dataclass
class ServiceConfig:
    """Tuning knobs of one ``goofi serve`` instance."""

    #: The shared sqlite sink every job logs into. Must be a file path:
    #: concurrent jobs each open their own connection against it.
    db_path: str = "goofi-fabric.db"
    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (announced on stdout by the CLI).
    port: int = 0
    #: Total worker processes the fleet may run at once, across jobs.
    #: Deliberately allowed to exceed the core count: the fabric's
    #: scaling story is oversubscription (see the E16 benchmark).
    total_workers: int = field(default_factory=_default_workers)
    #: Max non-terminal jobs per tenant (0 = unlimited).
    tenant_quota: int = 8
    #: Max queued jobs across tenants (0 = unlimited).
    max_queue: int = 1024
    #: Golden-run disk cache shared by every job (``None`` disables
    #: cross-job reference-run dedup).
    golden_cache_dir: Optional[str] = None
    #: Scheduler poll interval (also the pause/cancel latency).
    poll_seconds: float = 0.05
    #: Shard size forwarded to :class:`repro.core.parallel.ParallelConfig`.
    shard_size: int = 8
    #: multiprocessing start method (``None`` = platform default).
    start_method: Optional[str] = None

    def validate(self) -> None:
        if not self.db_path or self.db_path == ":memory:":
            raise ServiceError(
                "the fabric needs a file database (jobs share it across "
                "connections); ':memory:' cannot be shared"
            )
        if self.total_workers < 1:
            raise ServiceError("ServiceConfig.total_workers must be >= 1")
        if self.tenant_quota < 0:
            raise ServiceError("ServiceConfig.tenant_quota must be >= 0")
        if self.max_queue < 0:
            raise ServiceError("ServiceConfig.max_queue must be >= 0")
        if self.poll_seconds <= 0:
            raise ServiceError("ServiceConfig.poll_seconds must be positive")


def canonical_rows_payload(
    db: Any, campaign_name: str
) -> List[Dict[str, str]]:
    """JSON-safe canonical form of a campaign's logged experiment rows.

    Built on :func:`repro.core.parallel.canonical_experiment_rows` (the
    serial-vs-parallel determinism contract): wall-clock is zeroed and
    the state-vector blob is folded to a sha256, so a fabric run and a
    local serial run of the same spec must produce byte-identical
    payloads. Served by ``GET /jobs/<id>/results`` and recomputed
    client-side for the identity check."""
    from repro.core.parallel import canonical_experiment_rows

    payload: List[Dict[str, str]] = []
    for name, data, state in canonical_experiment_rows(db, campaign_name):
        payload.append(
            {
                "name": name,
                "data": data.decode("utf-8"),
                "state_sha256": hashlib.sha256(state).hexdigest(),
            }
        )
    return payload
