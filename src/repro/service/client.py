"""The fabric's HTTP client and the submit-instead-of-execute controller.

:class:`FabricClient` is a stateless JSON/REST client over the stdlib
``urllib`` (the fabric has no dependency budget): submit, status, list,
results, pause/resume/cancel, and a polling ``wait``. Connection
refusals are retried with linear backoff — a client started in the same
script as the server must tolerate the instant before the listener is
up — while HTTP-level errors surface immediately as
:class:`~repro.util.errors.ServiceError`.

:class:`FabricCampaignController` closes the loop with the rest of the
tool: it speaks the :class:`~repro.core.controller.CampaignController`
interface (``run``/``pause``/``resume``/``stop``/progress listeners)
but *submits* the campaign to a fabric server and mirrors the remote
job's progress into local :class:`~repro.core.controller.
CampaignProgress` snapshots — code written against the Figure-7
controller drives a remote fleet unchanged.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Union

from repro.core.campaign import CampaignData
from repro.core.controller import CampaignController, CampaignProgress
from repro.service.schema import TERMINAL_STATES, JobSpec
from repro.util.errors import CampaignError, ServiceError

__all__ = ["FabricCampaignController", "FabricClient"]


class FabricClient:
    """JSON/REST client of one ``goofi serve`` instance."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 5,
        retry_seconds: float = 0.2,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Connection-refused retries per request (the server may still
        #: be binding its port when the first request goes out).
        self.retries = retries
        self.retry_seconds = retry_seconds

    # -- transport ---------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Any:
        url = self.base_url + path
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else (b"" if method == "POST" else None)
        )
        attempt = 0
        while True:
            request = urllib.request.Request(
                url,
                data=body,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    text = response.read().decode("utf-8")
                    return json.loads(text) if text.strip() else None
            except urllib.error.HTTPError as exc:
                # HTTPError subclasses URLError: handle it first, and
                # never retry — the server answered.
                detail = exc.read().decode("utf-8", "replace")
                try:
                    detail = json.loads(detail).get("error", detail)
                except (json.JSONDecodeError, AttributeError):
                    pass
                raise ServiceError(
                    f"{method} {path} failed ({exc.code}): {detail}"
                ) from exc
            except (urllib.error.URLError, ConnectionRefusedError) as exc:
                reason = getattr(exc, "reason", exc)
                refused = isinstance(
                    reason, (ConnectionRefusedError, ConnectionResetError)
                )
                if not refused or attempt >= self.retries:
                    raise ServiceError(
                        f"{method} {path} unreachable: {reason}"
                    ) from exc
                attempt += 1
                time.sleep(self.retry_seconds * attempt)

    # -- API ---------------------------------------------------------------

    def info(self) -> Dict[str, Any]:
        return self._request("GET", "/")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(
        self, spec: Union[JobSpec, CampaignData, Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Submit a job; returns the created job record (``job_id`` …).

        Accepts a :class:`~repro.service.schema.JobSpec`, a bare
        :class:`~repro.core.campaign.CampaignData`, or the raw JSON
        document (enveloped or bare campaign spec)."""
        if isinstance(spec, JobSpec):
            payload = spec.to_dict()
        elif isinstance(spec, CampaignData):
            payload = spec.to_dict()
        else:
            payload = spec
        return self._request("POST", "/jobs", payload)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(
        self,
        tenant: Optional[str] = None,
        state: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        query = []
        if tenant is not None:
            query.append(f"tenant={tenant}")
        if state is not None:
            query.append(f"state={state}")
        suffix = "?" + "&".join(query) if query else ""
        return self._request("GET", "/jobs" + suffix)["jobs"]

    def results(self, job_id: str) -> Dict[str, Any]:
        """The canonical experiment rows of a finished job (the
        byte-identity payload of ``GET /jobs/<id>/results``)."""
        return self._request("GET", f"/jobs/{job_id}/results")

    def analysis(
        self,
        job_id: str,
        confidence: Optional[float] = None,
        epsilon: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Streaming campaign analytics for a job (``GET
        /jobs/<id>/analysis``) — works on running jobs: the report
        covers the rows committed so far."""
        query = []
        if confidence is not None:
            query.append(f"confidence={confidence}")
        if epsilon is not None:
            query.append(f"epsilon={epsilon}")
        suffix = "?" + "&".join(query) if query else ""
        return self._request("GET", f"/jobs/{job_id}/analysis" + suffix)

    def pause(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/pause")

    def resume(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/resume")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_seconds: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its
        final status. Raises on timeout (the job keeps running)."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout}s"
                )
            time.sleep(poll_seconds)


class FabricCampaignController(CampaignController):
    """A Figure-7 controller that *submits* instead of executing.

    ``run`` posts the campaign to the fabric and polls the job to a
    terminal state, mirroring remote progress into local
    :class:`~repro.core.controller.CampaignProgress` snapshots for the
    registered listeners; ``pause``/``resume``/``stop`` are forwarded
    to the job. Drop-in for call sites written against the local
    controllers — the sink lives on the server side."""

    def __init__(
        self,
        client: FabricClient,
        tenant: str = "default",
        priority: int = 0,
        n_workers: int = 1,
        use_golden_cache: bool = True,
        poll_seconds: float = 0.2,
    ) -> None:
        super().__init__(algorithm=None, sink=None)
        self.client = client
        self.tenant = tenant
        self.priority = priority
        self.n_workers = n_workers
        self.use_golden_cache = use_golden_cache
        self.poll_seconds = poll_seconds
        #: The fabric job this controller submitted (``None`` until run).
        self.job_id: Optional[str] = None

    # -- run control: forwarded to the remote job --------------------------

    def pause(self) -> None:
        if self.job_id is not None:
            self.client.pause(self.job_id)
        self.progress.state = "paused"

    def resume(self) -> None:
        if self.job_id is not None:
            self.client.resume(self.job_id)
        self.progress.state = "running"

    def stop(self) -> None:
        if self.job_id is not None:
            self.client.cancel(self.job_id)
        self._stop_requested = True

    # -- execution ---------------------------------------------------------

    def run(self, campaign: CampaignData, resume: bool = False) -> Dict:
        """Submit the campaign and poll its job until terminal; returns
        the final job status. Raises :class:`~repro.util.errors.
        CampaignError` when the remote run failed."""
        if resume:
            raise CampaignError(
                "the fabric controller cannot resume: submit a fresh job"
            )
        spec = JobSpec(
            campaign=campaign,
            tenant=self.tenant,
            priority=self.priority,
            n_workers=self.n_workers,
            use_golden_cache=self.use_golden_cache,
        )
        record = self.client.submit(spec)
        self.job_id = str(record["job_id"])
        self._stop_requested = False
        self.progress = CampaignProgress(
            campaign_name=campaign.campaign_name,
            n_total=campaign.n_experiments,
            state="queued",
        )
        self._notify()
        while True:
            status = self.client.status(self.job_id)
            self._mirror(status)
            self._notify()
            if status["state"] in TERMINAL_STATES:
                break
            time.sleep(self.poll_seconds)
        self.run_id = status.get("run_id")
        if status["state"] == "failed":
            raise CampaignError(
                f"fabric job {self.job_id} failed: {status.get('error')}"
            )
        return status

    def _mirror(self, status: Dict[str, Any]) -> None:
        """Fold one remote job status into the local progress snapshot."""
        summary = status.get("progress") or status.get("result") or {}
        progress = self.progress
        state_map = {"cancelled": "stopped", "queued": "idle"}
        progress.state = state_map.get(
            str(status["state"]), str(status["state"])
        )
        if summary.get("state") and status["state"] == "running":
            progress.state = str(summary["state"])
        progress.n_done = int(summary.get("n_done", progress.n_done))
        progress.n_injected_faults = int(
            summary.get("n_injected_faults", progress.n_injected_faults)
        )
        progress.n_derived = int(
            summary.get("n_derived", progress.n_derived)
        )
        progress.n_worker_failures = int(
            summary.get("n_worker_failures", progress.n_worker_failures)
        )
        progress.n_workers = int(
            summary.get(
                "n_workers",
                status.get("allocated_workers", progress.n_workers),
            )
        )
        progress.terminations = dict(
            summary.get("terminations", progress.terminations)
        )
        progress.detections = dict(
            summary.get("detections", progress.detections)
        )
        progress.elapsed_seconds = float(
            summary.get("elapsed_seconds", progress.elapsed_seconds)
        )
        eta = summary.get("eta_seconds")
        progress.eta_seconds = float(eta) if eta is not None else None
