"""The worker fleet: a slot budget shared by every concurrently
running job, plus the per-job execution glue.

The fabric does not own a private pool implementation — each job's
shards are scheduled by :mod:`repro.core.parallel`, whose
:class:`~repro.core.parallel.WorkerHandle` interface is where local
worker processes (and, later, socket-attached remote workers) plug in.
What the fleet adds on top is the *cross-job* resource arithmetic: a
fixed budget of worker slots that concurrent jobs draw allocations
from, so an oversubscribed box degrades to queueing instead of fork
bombs.

Allocation policy: a job asking for ``n`` workers is granted
``min(n, free)`` — a nearly-saturated fleet still starts the next job
with fewer workers rather than holding it hostage until ``n`` slots
free up at once (no starvation, no deadlock; the grant is never 0).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.core.controller import CampaignController
from repro.core.parallel import ParallelCampaignController, ParallelConfig
from repro.service.schema import JobRecord, ServiceConfig
from repro.util.errors import ServiceError

__all__ = ["WorkerFleet", "execute_job"]


class WorkerFleet:
    """Thread-safe worker-slot accounting across concurrent jobs."""

    def __init__(self, total_workers: int) -> None:
        if total_workers < 1:
            raise ServiceError("fleet needs at least one worker slot")
        self.total = total_workers
        self._free = total_workers
        self._lock = threading.Lock()

    @property
    def free(self) -> int:
        with self._lock:
            return self._free

    def try_acquire(self, requested: int) -> int:
        """Grant up to ``requested`` worker slots; 0 when none are free
        (the scheduler then leaves the job queued)."""
        if requested < 1:
            raise ServiceError("jobs must request at least one worker")
        with self._lock:
            granted = min(requested, self._free)
            self._free -= granted
            return granted

    def release(self, granted: int) -> None:
        with self._lock:
            self._free = min(self.total, self._free + granted)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "total_workers": self.total,
                "free_workers": self._free,
                "busy_workers": self.total - self._free,
            }


def _progress_summary(controller: CampaignController) -> Dict[str, Any]:
    """JSON-safe snapshot of a controller's live progress (the per-job
    progress/ETA block of ``GET /jobs/<id>``)."""
    from repro.observability.health import analysis_metrics

    progress = controller.progress
    summary = {
        "state": progress.state,
        "n_total": progress.n_total,
        "n_done": progress.n_done,
        "percent_done": progress.percent_done,
        "n_injected_faults": progress.n_injected_faults,
        "n_derived": progress.n_derived,
        "n_worker_failures": progress.n_worker_failures,
        "terminations": dict(progress.terminations),
        "detections": dict(progress.detections),
        "elapsed_seconds": progress.elapsed_seconds,
        "experiments_per_second": progress.experiments_per_second,
        "eta_seconds": progress.eta_seconds,
        "n_workers": progress.n_workers,
    }
    analysis = analysis_metrics()
    if analysis:
        summary["analysis"] = analysis
    return summary


def build_controller(
    record: JobRecord, granted: int, config: ServiceConfig, sink: Any
) -> ParallelCampaignController:
    """The campaign controller one fabric job executes under.

    Always the parallel controller (a grant of 1 is a one-worker pool):
    every job gets the same watchdog/retry/batched-sink machinery, and
    the fabric's byte-identity guarantee rides on the serial-vs-parallel
    determinism contract that machinery is property-tested for."""
    from repro.core.framework import worker_factory

    campaign = record.spec.campaign
    parallel = ParallelConfig(
        n_workers=granted,
        shard_size=config.shard_size,
        start_method=config.start_method,
        golden_cache_dir=(
            config.golden_cache_dir if record.spec.use_golden_cache else None
        ),
    )
    controller = ParallelCampaignController(
        worker_factory(campaign.target_name), sink=sink, config=parallel
    )
    # RunMeta rows of fabric runs carry the job id and tenant, so the
    # provenance chain reaches from an experiment row through RunMeta to
    # the submitting tenant.
    controller.run_tags = {
        "job_id": record.job_id,
        "tenant": record.spec.tenant,
    }
    return controller


def execute_job(
    record: JobRecord,
    granted: int,
    config: ServiceConfig,
    open_sink: Callable[[], Any],
    on_controller: Optional[Callable[[JobRecord, Any], None]] = None,
) -> Dict[str, Any]:
    """Run one job to a terminal state; returns its progress summary.

    Opens its own sink connection via ``open_sink`` (concurrent jobs
    must not share one sqlite connection), publishes the live controller
    through ``on_controller`` so the server can route pause/cancel to
    it, and leaves queue/fleet bookkeeping to the caller. Raises
    whatever the campaign raised after recording the error on the
    record."""
    record.started_at = time.time()
    record.allocated_workers = granted
    sink = open_sink()
    try:
        controller = build_controller(record, granted, config, sink)
        if on_controller is not None:
            on_controller(record, controller)
        controller.run(record.spec.campaign)
        record.run_id = controller.run_id
        summary = _progress_summary(controller)
        record.result = summary
        return summary
    finally:
        if on_controller is not None:
            on_controller(record, None)
        close = getattr(sink, "close", None)
        if callable(close):
            close()
