"""The fabric's job queue: priorities, per-tenant quotas, lifecycle.

A :class:`JobQueue` is the single bookkeeper of every job the server
has ever seen. Scheduling order is **priority first** (larger runs
earlier), **submission order within a priority** — implemented as a
lazy-deletion heap so cancelled/paused entries cost one pop instead of
a rebuild. Quotas bound the number of *non-terminal* jobs per tenant,
so one client cannot monopolise the fabric by submitting faster than
it drains.

The queue owns the pre-execution lifecycle (``queued`` ⇄ ``paused``,
``queued``/``paused`` → ``cancelled``) and the terminal transitions;
pause/resume/cancel of a *running* job is delegated by the server to
the job's live campaign controller and reported back here through
:meth:`finish`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Dict, List, Optional

from repro.service.schema import JobRecord, JobSpec
from repro.util.errors import ServiceError

__all__ = ["JobQueue"]


class JobQueue:
    """Priority queue + registry of fabric jobs (thread-safe)."""

    def __init__(self, tenant_quota: int = 0, max_queue: int = 0) -> None:
        #: Max non-terminal jobs per tenant (0 = unlimited).
        self.tenant_quota = tenant_quota
        #: Max jobs waiting in ``queued`` state across tenants (0 = no cap).
        self.max_queue = max_queue
        self._lock = threading.Lock()
        self._jobs: Dict[str, JobRecord] = {}
        #: (-priority, seq, job_id): heapq is a min-heap, so negating the
        #: priority runs the largest first; ``seq`` breaks ties FIFO.
        self._heap: List[Any] = []
        self._seq = itertools.count()
        #: job_id -> the heap seq it was enqueued under, so a paused job
        #: resumes into its *original* position rather than the back.
        self._seqs: Dict[str, int] = {}

    # -- submission --------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit a job (quota and backlog permitting) and enqueue it."""
        spec.validate()
        with self._lock:
            if self.max_queue:
                backlog = sum(
                    1 for job in self._jobs.values() if job.state == "queued"
                )
                if backlog >= self.max_queue:
                    raise ServiceError(
                        f"queue full ({backlog} jobs already waiting)"
                    )
            if self.tenant_quota:
                active = sum(
                    1
                    for job in self._jobs.values()
                    if job.spec.tenant == spec.tenant and job.active
                )
                if active >= self.tenant_quota:
                    raise ServiceError(
                        f"tenant {spec.tenant!r} quota exhausted "
                        f"({active}/{self.tenant_quota} active jobs)"
                    )
            seq = next(self._seq)
            job_id = f"job-{seq + 1:06d}"
            record = JobRecord(job_id=job_id, spec=spec)
            self._jobs[job_id] = record
            self._seqs[job_id] = seq
            heapq.heappush(self._heap, (-spec.priority, seq, job_id))
            return record

    # -- scheduling --------------------------------------------------------

    def pop_runnable(self) -> Optional[JobRecord]:
        """The highest-priority ``queued`` job, atomically moved to
        ``running`` — or ``None`` when nothing is runnable. Stale heap
        entries (cancelled, paused, already-running resubmissions) are
        discarded lazily."""
        with self._lock:
            while self._heap:
                _, seq, job_id = self._heap[0]
                record = self._jobs.get(job_id)
                if (
                    record is None
                    or record.state != "queued"
                    or self._seqs.get(job_id) != seq
                ):
                    heapq.heappop(self._heap)
                    continue
                heapq.heappop(self._heap)
                record.state = "running"
                return record
            return None

    def requeue(self, job_id: str) -> None:
        """Return a job the scheduler claimed but could not start (e.g.
        the fleet grant fell through) to its original position."""
        with self._lock:
            record = self._require(job_id)
            if record.state != "running":
                raise ServiceError(
                    f"job {job_id} is {record.state}, not reclaimable"
                )
            record.state = "queued"
            seq = self._seqs[job_id]
            heapq.heappush(
                self._heap, (-record.spec.priority, seq, job_id)
            )

    # -- lifecycle ---------------------------------------------------------

    def pause(self, job_id: str) -> JobRecord:
        """Withhold a queued job from the scheduler (running jobs are
        paused through their controller by the server)."""
        with self._lock:
            record = self._require(job_id)
            if record.state != "queued":
                raise ServiceError(
                    f"job {job_id} is {record.state}; only queued jobs "
                    "pause here"
                )
            record.state = "paused"
            return record

    def resume(self, job_id: str) -> JobRecord:
        """Re-admit a paused job at its original queue position."""
        with self._lock:
            record = self._require(job_id)
            if record.state != "paused":
                raise ServiceError(
                    f"job {job_id} is {record.state}, not paused"
                )
            record.state = "queued"
            heapq.heappush(
                self._heap,
                (-record.spec.priority, self._seqs[job_id], job_id),
            )
            return record

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job that has not started (running jobs are stopped
        through their controller; terminal jobs cannot change)."""
        with self._lock:
            record = self._require(job_id)
            if record.terminal:
                raise ServiceError(
                    f"job {job_id} already {record.state}"
                )
            if record.state == "running":
                raise ServiceError(
                    f"job {job_id} is running; stop it via its controller"
                )
            record.state = "cancelled"
            record.finished_at = time.time()
            return record

    def finish(
        self,
        job_id: str,
        state: str,
        error: Optional[str] = None,
        result: Optional[Dict[str, Any]] = None,
    ) -> JobRecord:
        """Record a terminal state for a job the server executed."""
        if state not in ("finished", "failed", "cancelled"):
            raise ServiceError(f"not a terminal job state: {state!r}")
        with self._lock:
            record = self._require(job_id)
            record.state = state
            record.error = error
            if result is not None:
                record.result = result
            record.finished_at = time.time()
            return record

    # -- introspection -----------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._require(job_id)

    def jobs(
        self,
        tenant: Optional[str] = None,
        state: Optional[str] = None,
    ) -> List[JobRecord]:
        """All known jobs, submission order, optionally filtered."""
        with self._lock:
            records = sorted(
                self._jobs.values(), key=lambda job: job.submitted_at
            )
        if tenant is not None:
            records = [r for r in records if r.spec.tenant == tenant]
        if state is not None:
            records = [r for r in records if r.state == state]
        return records

    def depth(self) -> int:
        """Jobs currently waiting in ``queued`` state."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values() if job.state == "queued"
            )

    def _require(self, job_id: str) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise ServiceError(f"no such job: {job_id}")
        return record
