"""Campaign fabric: fault injection as a service.

The paper's campaign loop (Figure 7) assumes one operator driving one
simulator. This package reframes it the way ProFIPy frames software
fault injection — as a multi-tenant *service*: an asyncio REST/JSON API
(``goofi serve``) accepts campaign specs (the same JSON ``goofi lint``
validates), enqueues them into a priority job queue with per-tenant
quotas, schedules shards across a fleet of local worker processes
(reusing the :mod:`repro.core.parallel` worker protocol), streams
results into the shared sqlite sink, dedupes reference runs through the
golden cache keyed by config hash, and surfaces live progress/ETA per
job next to the existing ``/metrics`` exporter surface.

Modules:

* :mod:`repro.service.schema` — job/value objects and the service
  configuration (the wire contract);
* :mod:`repro.service.jobs`   — the priority job queue with per-tenant
  quotas and the job lifecycle;
* :mod:`repro.service.fleet`  — the worker-slot budget shared by
  concurrent jobs plus the per-job execution glue;
* :mod:`repro.service.server` — the asyncio HTTP front end and the
  scheduler loop (``goofi serve``);
* :mod:`repro.service.client` — the stateless HTTP client
  (``goofi submit/status/results``) and the
  :class:`~repro.service.client.FabricCampaignController` that submits
  instead of executing.
"""

from repro.service.client import FabricCampaignController, FabricClient
from repro.service.fleet import WorkerFleet
from repro.service.jobs import JobQueue
from repro.service.schema import (
    JOB_STATES,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    ServiceConfig,
    canonical_rows_payload,
)
from repro.service.server import FabricServer

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "FabricCampaignController",
    "FabricClient",
    "FabricServer",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "ServiceConfig",
    "WorkerFleet",
    "canonical_rows_payload",
]
