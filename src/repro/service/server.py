"""``goofi serve``: the asyncio HTTP front end and the scheduler loop.

One :class:`FabricServer` owns the whole fabric: an
``asyncio.start_server`` front end (stdlib only — requests are parsed
by hand and dispatched to a thread executor so sqlite calls never block
the event loop), a scheduler thread that pops runnable jobs whenever
fleet slots free up, and one executor thread per running job. Each job
executes under its own :class:`~repro.core.parallel.
ParallelCampaignController` against its own connection to the shared
sqlite file (WAL mode keeps concurrent writers cheap), so the fabric's
byte-identity guarantee is exactly the serial-vs-parallel determinism
contract the parallel runner is property-tested for.

REST surface (JSON bodies throughout)::

    GET  /                   service info: fleet + queue snapshot
    GET  /healthz            liveness: state counts, fleet, queue depth
    GET  /metrics            OpenMetrics exposition (process registry)
    POST /jobs               submit a job spec           -> 201 record
    GET  /jobs[?tenant=&state=]   list known jobs
    GET  /jobs/<id>          job record (+ live progress while running)
    GET  /jobs/<id>/results  canonical experiment rows of the job's run
    POST /jobs/<id>/pause    withhold (queued) / pause (running)
    POST /jobs/<id>/resume   re-admit / resume
    POST /jobs/<id>/cancel   cancel (running jobs stop cooperatively)

Lifecycle persistence: every transition is mirrored into the
``FabricJob`` table of the shared database (schema v4), so submitted
work is queryable next to the experiment rows it produced.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.db.database import GoofiDatabase
from repro.observability import get_observability
from repro.observability.exporter import (
    CONTENT_TYPE_OPENMETRICS,
    render_openmetrics,
)
from repro.service.fleet import WorkerFleet, _progress_summary, execute_job
from repro.service.jobs import JobQueue
from repro.service.schema import (
    JobRecord,
    JobSpec,
    ServiceConfig,
    canonical_rows_payload,
)
from repro.util.errors import DatabaseError, ServiceError

__all__ = ["FabricServer"]

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


class FabricServer:
    """The campaign fabric: HTTP front end, scheduler, job executors."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.config.validate()
        self.queue = JobQueue(
            tenant_quota=self.config.tenant_quota,
            max_queue=self.config.max_queue,
        )
        self.fleet = WorkerFleet(self.config.total_workers)
        #: The server's own connection to the shared sink: job-table
        #: persistence and results queries (job executors open their own).
        self._db = GoofiDatabase(self.config.db_path)
        self._db_lock = threading.Lock()
        #: job_id -> live campaign controller, while the job runs (how
        #: pause/resume/cancel reach a running campaign).
        self._controllers: Dict[str, Any] = {}
        self._controllers_lock = threading.Lock()
        self._job_threads: Dict[str, threading.Thread] = {}
        self._stop = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Future] = None
        self._http_thread: Optional[threading.Thread] = None
        self._scheduler_thread: Optional[threading.Thread] = None
        self.host = self.config.host
        #: Bound port (resolved from an ephemeral 0 once started).
        self.port = self.config.port
        self._started_at = time.time()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FabricServer":
        """Bind the HTTP front end and start the scheduler; returns self
        once the port is known (``self.port``)."""
        started = threading.Event()
        failure: List[BaseException] = []

        def _serve() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self._serve_http(started))
            except BaseException as exc:  # pragma: no cover - bind errors
                failure.append(exc)
                started.set()
            finally:
                loop.close()

        self._http_thread = threading.Thread(
            target=_serve, name="fabric-http", daemon=True
        )
        self._http_thread.start()
        started.wait(timeout=10.0)
        if failure:
            raise ServiceError(f"fabric server failed to start: {failure[0]}")
        self._scheduler_thread = threading.Thread(
            target=self._scheduler_loop, name="fabric-scheduler", daemon=True
        )
        self._scheduler_thread.start()
        return self

    async def _serve_http(self, started: threading.Event) -> None:
        server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = int(server.sockets[0].getsockname()[1])
        loop = asyncio.get_event_loop()
        self._shutdown = loop.create_future()
        started.set()
        try:
            await self._shutdown
        finally:
            server.close()
            await server.wait_closed()

    def stop(self) -> None:
        """Stop accepting requests, cancel running jobs cooperatively,
        join every worker thread, close the server's db connection."""
        self._stop.set()
        with self._controllers_lock:
            controllers = list(self._controllers.values())
        for controller in controllers:
            controller.stop()
        if self._scheduler_thread is not None:
            self._scheduler_thread.join(timeout=10.0)
        for thread in list(self._job_threads.values()):
            thread.join(timeout=30.0)
        if self._loop is not None and self._shutdown is not None:
            def _finish(future: "asyncio.Future[None]") -> None:
                if not future.done():
                    future.set_result(None)

            self._loop.call_soon_threadsafe(_finish, self._shutdown)
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)
        with self._db_lock:
            self._db.close()

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def __enter__(self) -> "FabricServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- scheduler ---------------------------------------------------------

    def _scheduler_loop(self) -> None:
        """Claim the highest-priority runnable job whenever the fleet has
        free slots; one executor thread per running job."""
        while not self._stop.is_set():
            record = None
            granted = 0
            if self.fleet.free > 0:
                record = self.queue.pop_runnable()
            if record is not None:
                granted = self.fleet.try_acquire(record.spec.n_workers)
                if granted == 0:
                    # Lost the race for the last slot: put it back.
                    self.queue.requeue(record.job_id)
                    record = None
            if record is None:
                self._stop.wait(self.config.poll_seconds)
                continue
            thread = threading.Thread(
                target=self._run_job,
                args=(record, granted),
                name=f"fabric-{record.job_id}",
                daemon=True,
            )
            self._job_threads[record.job_id] = thread
            thread.start()

    def _run_job(self, record: JobRecord, granted: int) -> None:
        try:
            self._persist(record)
            summary = execute_job(
                record,
                granted,
                self.config,
                self._open_sink,
                self._publish_controller,
            )
            # A cooperative stop (cancel of a running job) surfaces as
            # the controller's "stopped" state, not an exception.
            state = (
                "cancelled" if summary.get("state") == "stopped"
                else "finished"
            )
            self.queue.finish(record.job_id, state, result=summary)
        except Exception as exc:
            self.queue.finish(
                record.job_id, "failed", error=f"{type(exc).__name__}: {exc}"
            )
        finally:
            self.fleet.release(granted)
            self._job_threads.pop(record.job_id, None)
            self._persist(record)

    def _open_sink(self) -> GoofiDatabase:
        return GoofiDatabase(self.config.db_path)

    def _publish_controller(self, record: JobRecord, controller: Any) -> None:
        with self._controllers_lock:
            if controller is None:
                self._controllers.pop(record.job_id, None)
            else:
                self._controllers[record.job_id] = controller

    def _persist(self, record: JobRecord) -> None:
        job = record.to_dict()
        job["spec"] = record.spec.to_dict()
        with self._db_lock:
            self._db.save_job(job)

    # -- HTTP front end ----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or 0)
            body = await reader.readexactly(length) if length > 0 else b""
            loop = asyncio.get_event_loop()
            # sqlite + queue locks are blocking: dispatch off the loop.
            status, content_type, payload = await loop.run_in_executor(
                None, self._dispatch, method, target, body
            )
            data = payload.encode("utf-8")
            reason = _REASONS.get(status, "OK")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(data)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + data)
            await writer.drain()
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):  # pragma: no cover - client went away mid-request
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - already torn down
                pass

    # -- routing -----------------------------------------------------------

    def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, str, str]:
        """Route one request; returns (status, content type, body)."""
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        try:
            return self._route(method, path, query, body)
        except ServiceError as exc:
            status = 404 if "no such job" in str(exc) else 400
            return self._json(status, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive 500
            get_observability().flightrec.dump(
                "fabric-request-error", path=path
            )
            return self._json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )

    def _route(
        self, method: str, path: str, query: Dict[str, str], body: bytes
    ) -> Tuple[int, str, str]:
        if path == "/":
            return self._json(200, self._info())
        if path == "/healthz":
            return self._json(200, self._healthz())
        if path == "/metrics":
            snapshot = get_observability().metrics.snapshot()
            return (
                200,
                CONTENT_TYPE_OPENMETRICS,
                render_openmetrics(snapshot),
            )
        if path == "/jobs":
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return self._list_jobs(query)
            return self._json(405, {"error": f"{method} not allowed"})
        if path.startswith("/jobs/"):
            segments = path.split("/")[2:]
            job_id = segments[0]
            action = segments[1] if len(segments) > 1 else None
            if action is None and method == "GET":
                return self._json(200, self._job_status(job_id))
            if action == "results" and method == "GET":
                return self._json(200, self._job_results(job_id))
            if action == "analysis" and method == "GET":
                return self._json(200, self._job_analysis(job_id, query))
            if action in ("pause", "resume", "cancel") and method == "POST":
                return self._json(200, self._control(job_id, action))
            return self._json(405, {"error": f"{method} {path} not allowed"})
        return self._json(404, {"error": f"no such endpoint: {path}"})

    @staticmethod
    def _json(status: int, payload: Any) -> Tuple[int, str, str]:
        return (
            status,
            "application/json",
            json.dumps(payload, sort_keys=True) + "\n",
        )

    # -- handlers ----------------------------------------------------------

    def _info(self) -> Dict[str, Any]:
        return {
            "service": "goofi-fabric",
            "db_path": self.config.db_path,
            "uptime_seconds": time.time() - self._started_at,
            "fleet": self.fleet.snapshot(),
            "queue_depth": self.queue.depth(),
        }

    def _healthz(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for record in self.queue.jobs():
            states[record.state] = states.get(record.state, 0) + 1
        return {
            "status": "ok",
            "fleet": self.fleet.snapshot(),
            "queue_depth": self.queue.depth(),
            "jobs": states,
        }

    def _submit(self, body: bytes) -> Tuple[int, str, str]:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from exc
        spec = JobSpec.from_dict(payload)
        record = self.queue.submit(spec)
        self._persist(record)
        get_observability().metrics.counter("fabric.jobs_submitted").inc()
        return self._json(201, record.to_dict())

    def _list_jobs(self, query: Dict[str, str]) -> Tuple[int, str, str]:
        records = self.queue.jobs(
            tenant=query.get("tenant"), state=query.get("state")
        )
        return self._json(
            200, {"jobs": [record.to_dict() for record in records]}
        )

    def _job_status(self, job_id: str) -> Dict[str, Any]:
        record = self.queue.get(job_id)
        status = record.to_dict()
        with self._controllers_lock:
            controller = self._controllers.get(job_id)
        if controller is not None:
            # Live per-job progress/ETA, read from the job's own
            # controller (the process-global health slot would be
            # clobbered by concurrent jobs).
            status["progress"] = _progress_summary(controller)
        return status

    def _job_results(self, job_id: str) -> Dict[str, Any]:
        record = self.queue.get(job_id)
        if record.state != "finished":
            raise ServiceError(
                f"job {job_id} is {record.state}; results need a "
                "finished job"
            )
        campaign_name = record.spec.campaign.campaign_name
        with self._db_lock:
            rows = canonical_rows_payload(self._db, campaign_name)
        return {
            "job_id": job_id,
            "campaign_name": campaign_name,
            "run_id": record.run_id,
            "rows": rows,
        }

    def _job_analysis(
        self, job_id: str, query: Dict[str, str]
    ) -> Dict[str, Any]:
        """Streaming analytics over a job's campaign — valid on *running*
        jobs too: the report is computed on a fresh read-only WAL
        connection, so it sees the last committed rows and never blocks
        the job's writer. The payload is deterministic for a given
        database state and identical to ``goofi analyze --json``."""
        from repro.analysis import analyze_campaign

        record = self.queue.get(job_id)
        if record.state in ("queued", "cancelled"):
            raise ServiceError(
                f"job {job_id} is {record.state}; analysis needs a job "
                "that has started executing"
            )
        campaign_name = record.spec.campaign.campaign_name
        try:
            confidence = float(query.get("confidence", 0.95))
            epsilon = float(query.get("epsilon", 0.05))
        except ValueError as exc:
            raise ServiceError(f"bad analysis parameter: {exc}") from None
        try:
            with GoofiDatabase(self.config.db_path, readonly=True) as db:
                report = analyze_campaign(
                    db, campaign_name, confidence=confidence, epsilon=epsilon
                )
        except DatabaseError as exc:
            # A running job whose reference run has not committed yet
            # (or a database still being created): a retryable client
            # error, not a server fault.
            raise ServiceError(
                f"job {job_id} is not analyzable yet: {exc}"
            ) from exc
        return {
            "job_id": job_id,
            "campaign_name": campaign_name,
            "run_id": record.run_id,
            "state": record.state,
            "analysis": report.to_dict(),
        }

    def _control(self, job_id: str, action: str) -> Dict[str, Any]:
        record = self.queue.get(job_id)
        if record.state == "running":
            with self._controllers_lock:
                controller = self._controllers.get(job_id)
            if controller is None:
                raise ServiceError(
                    f"job {job_id} is settling; retry the {action}"
                )
            if action == "pause":
                controller.pause()
            elif action == "resume":
                controller.resume()
            else:
                controller.stop()
            return self._job_status(job_id)
        if action == "pause":
            self.queue.pause(job_id)
        elif action == "resume":
            self.queue.resume(job_id)
        else:
            self.queue.cancel(job_id)
        self._persist(record)
        return self._job_status(job_id)
