"""Sparse conditional constant propagation over the Thor CFG.

Wegman–Zadeck style conditional constant propagation on the
instruction-level CFG: dataflow facts (register constants and the PSR
flag nibble) and control-flow reachability are solved *together*, so a
branch whose flags are provably constant contributes only its taken (or
only its fall-through) edge, and code beyond it can be proven
unreachable even though the plain CFG reaches it.

The transfer functions replicate the CPU's own ALU semantics
(:mod:`repro.thor.cpu`) — including ``_add_sub`` carry/overflow and the
signed branch predicates — so a "constant" here is the value the real
machine computes, not an approximation. Memory loads, ``POP`` values and
unresolved indirect targets are conservatively unknown (bottom).

Consumers:

* lint rule ``unreachable-location`` — campaign locations that resolve
  only to code proven unreachable by the *conditional* analysis;
* lint rule ``constant-dead-write`` — dead stores (reaching-definitions
  dead) whose written value is additionally a compile-time constant;
* the equivalence engine, which uses the refined executable set when
  certifying that a def-use region contains no observation points.

Alongside the constant lattice the result records a modest value-range
summary per register (min/max over every constant observation, bottom
once any unknown write is seen); branch folding only ever uses exact
constants, the ranges are reporting/diagnostic aids.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.thor import isa
from repro.thor.isa import Instruction, Opcode
from repro.util.bits import to_signed, to_unsigned
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.defuse import FLAGS, InstructionDefUse


class _Bottom:
    """Sentinel: value provably not a single compile-time constant."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NAC"


#: Not-a-constant lattice bottom. Missing env keys are lattice top
#: (undefined: no execution reaching this point has written the item).
NAC = _Bottom()

# Lattice values are ints (constants) or NAC; envs map dataflow items
# (register indices, FLAGS) to lattice values.
_Env = Dict[int, object]


def _flags_nibble(z: bool, n: bool, c: bool, v: bool) -> int:
    return int(z) | (int(n) << 1) | (int(c) << 2) | (int(v) << 3)


def _set_nz(result: int) -> Tuple[bool, bool]:
    return result == 0, bool(result >> 31)


def _add_sub(a: int, b: int, subtract: bool) -> Tuple[int, bool, bool]:
    # Mirrors repro.thor.cpu._add_sub exactly.
    if subtract:
        wide = a + to_unsigned(~b) + 1
        signed = to_signed(a) - to_signed(b)
    else:
        wide = a + b
        signed = to_signed(a) + to_signed(b)
    result = to_unsigned(wide)
    carry = wide > isa.WORD_MASK
    overflow = not (-(1 << 31) <= signed <= (1 << 31) - 1)
    return result, carry, overflow


def _branch_taken(op: Opcode, nibble: int) -> bool:
    z = bool(nibble & 1)
    n = bool(nibble & 2)
    v = bool(nibble & 8)
    if op is Opcode.BEQ:
        return z
    if op is Opcode.BNE:
        return not z
    if op is Opcode.BLT:
        return n != v
    if op is Opcode.BGE:
        return n == v
    if op is Opcode.BGT:
        return (not z) and n == v
    if op is Opcode.BLE:
        return z or n != v
    raise AssertionError(op)  # pragma: no cover


def _arith_flags(result: int, carry: bool, overflow: bool) -> int:
    z, n = _set_nz(result)
    return _flags_nibble(z, n, carry, overflow)


def _nz_flags(env: _Env, result: int) -> int:
    # set_nz preserves C and V; if the incoming nibble is unknown the
    # whole nibble stays unknown (C/V bits cannot be recovered).
    prior = env.get(FLAGS)
    if not isinstance(prior, int):
        return -1
    z, n = _set_nz(result)
    return _flags_nibble(z, n, bool(prior & 4), bool(prior & 8))


class ConstPropResult:
    """Solved conditional-constant facts for one program."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        env_in: Dict[int, _Env],
        executable: FrozenSet[int],
        folded_branches: Dict[int, bool],
        ranges: Dict[int, Tuple[int, int]],
    ):
        self.cfg = cfg
        self.env_in = env_in
        #: Addresses executable under conditional reachability — always a
        #: subset of ``cfg.reachable``.
        self.executable = executable
        #: Conditional branches with a provably constant direction
        #: (address -> taken?).
        self.folded_branches = folded_branches
        #: Register -> (min, max) over all constant observations; absent
        #: when the register is never written or ever written unknown.
        self.ranges = ranges

    def constant_at(self, address: int, item: int) -> Optional[int]:
        """The constant value of ``item`` entering ``address``, if any."""
        value = self.env_in.get(address, {}).get(item)
        return value if isinstance(value, int) else None

    def refined_unreachable(self) -> List[int]:
        """Reachable-by-CFG addresses proven dead by branch folding."""
        return sorted(set(self.cfg.reachable) - set(self.executable))

    def constant_dead_writes(
        self, dead_definitions: List[Tuple[int, int]]
    ) -> List[Tuple[int, int, int]]:
        """Dead stores whose written value is a compile-time constant.

        ``dead_definitions`` comes from
        :meth:`repro.staticanalysis.defuse.ReachingDefinitions.
        dead_definitions`. Returns ``(address, item, constant value)``
        rows for the subset whose defining instruction writes a value
        the propagator proved constant, restricted to executable code.
        """
        rows: List[Tuple[int, int, int]] = []
        for address, item in dead_definitions:
            if address not in self.executable:
                continue
            fact = self.cfg.defuse.get(address)
            if fact is None or item not in fact.defs:
                continue
            env = self.env_in.get(address, {})
            value = _written_constant(fact.instr, item, env)
            if value is not None:
                rows.append((address, item, value))
        return rows


def _written_constant(
    instr: Instruction, item: int, env: _Env
) -> Optional[int]:
    """The constant ``instr`` writes into register ``item``, if known."""
    out, _flags, _succ_hint = _evaluate(instr, env)
    value = out.get(item)
    return value if isinstance(value, int) else None


def _evaluate(
    instr: Instruction, env: _Env
) -> Tuple[Dict[int, object], Optional[int], Optional[bool]]:
    """(register writes, new flag nibble or None, folded branch or None).

    A flag nibble of ``-1`` means "written but unknown"; ``None`` means
    the instruction does not touch the flags.
    """
    op = instr.opcode
    writes: Dict[int, object] = {}
    flags: Optional[int] = None
    folded: Optional[bool] = None

    def known(index: int) -> Optional[int]:
        value = env.get(index)
        return value if isinstance(value, int) else None

    if op is Opcode.LDI:
        writes[instr.rd] = to_unsigned(instr.imm)
    elif op is Opcode.LUI:
        writes[instr.rd] = to_unsigned(instr.imm << 14)
    elif op in (Opcode.MOV, Opcode.NOT):
        a = known(instr.rs1)
        if a is None:
            writes[instr.rd] = NAC
            flags = -1
        else:
            result = a if op is Opcode.MOV else to_unsigned(~a)
            writes[instr.rd] = result
            flags = _nz_flags(env, result)
    elif op in (Opcode.ADD, Opcode.SUB, Opcode.ADDI, Opcode.SUBI,
                Opcode.CMP, Opcode.CMPI):
        a = known(instr.rs1)
        if op in (Opcode.ADD, Opcode.SUB, Opcode.CMP):
            b = known(instr.rs2)
        else:
            b = to_unsigned(instr.imm)
        if a is None or b is None:
            flags = -1
            if op not in (Opcode.CMP, Opcode.CMPI):
                writes[instr.rd] = NAC
        else:
            subtract = op in (Opcode.SUB, Opcode.SUBI, Opcode.CMP,
                              Opcode.CMPI)
            result, carry, overflow = _add_sub(a, b, subtract)
            flags = _arith_flags(result, carry, overflow)
            if op not in (Opcode.CMP, Opcode.CMPI):
                writes[instr.rd] = result
    elif op in (Opcode.MUL, Opcode.MULI):
        a = known(instr.rs1)
        b = known(instr.rs2) if op is Opcode.MUL else instr.imm
        if a is None or b is None:
            writes[instr.rd] = NAC
            flags = -1
        else:
            sb = to_signed(b) if op is Opcode.MUL else b
            result = to_unsigned(to_signed(a) * sb)
            writes[instr.rd] = result
            flags = _nz_flags(env, result)
    elif op in (Opcode.DIV, Opcode.MOD):
        a = known(instr.rs1)
        b = known(instr.rs2)
        if a is None or b is None or to_signed(b) == 0:
            # Division by a constant zero traps at runtime; the write
            # never happens, so NAC is a sound (vacuous) summary.
            writes[instr.rd] = NAC
            flags = -1
        else:
            sa, sb = to_signed(a), to_signed(b)
            quotient = int(sa / sb)
            result = quotient if op is Opcode.DIV else sa - quotient * sb
            writes[instr.rd] = to_unsigned(result)
            flags = _nz_flags(env, to_unsigned(result))
    elif op in (Opcode.AND, Opcode.OR, Opcode.XOR,
                Opcode.ANDI, Opcode.ORI, Opcode.XORI):
        a = known(instr.rs1)
        if op in (Opcode.AND, Opcode.OR, Opcode.XOR):
            b = known(instr.rs2)
        else:
            b = to_unsigned(instr.imm)
        if a is None or b is None:
            writes[instr.rd] = NAC
            flags = -1
        else:
            if op in (Opcode.AND, Opcode.ANDI):
                result = a & b
            elif op in (Opcode.OR, Opcode.ORI):
                result = a | b
            else:
                result = a ^ b
            writes[instr.rd] = result
            flags = _nz_flags(env, result)
    elif op in (Opcode.SHL, Opcode.SHR, Opcode.SRA,
                Opcode.SHLI, Opcode.SHRI):
        a = known(instr.rs1)
        if op in (Opcode.SHL, Opcode.SHR, Opcode.SRA):
            b = known(instr.rs2)
            amount = None if b is None else b & 31
        else:
            amount = instr.imm & 31
        if a is None or amount is None:
            writes[instr.rd] = NAC
            flags = -1
        else:
            if op in (Opcode.SHL, Opcode.SHLI):
                result = to_unsigned(a << amount)
            elif op in (Opcode.SHR, Opcode.SHRI):
                result = a >> amount
            else:
                result = to_unsigned(to_signed(a) >> amount)
            writes[instr.rd] = result
            flags = _nz_flags(env, result)
    elif op in (Opcode.LD, Opcode.POP):
        # Memory contents are not modeled.
        writes[instr.rd] = NAC
        if op is Opcode.POP:
            sp = known(isa.REG_SP)
            writes[isa.REG_SP] = (
                to_unsigned(sp + 1) if sp is not None else NAC
            )
    elif op is Opcode.PUSH:
        sp = known(isa.REG_SP)
        writes[isa.REG_SP] = to_unsigned(sp - 1) if sp is not None else NAC
    elif op in isa.BRANCHES:
        nibble = env.get(FLAGS)
        if isinstance(nibble, int):
            folded = _branch_taken(op, nibble)
    elif op is Opcode.CALL:
        writes[isa.REG_LR] = NAC  # refined by the caller (needs the PC)
    # NOP, HALT, SYNC, ST, JMP, JR, RET, TRAP: no register constants.
    return writes, flags, folded


def _meet_into(dst: _Env, src: _Env) -> bool:
    """Meet ``src`` into ``dst``; True when ``dst`` changed."""
    changed = False
    for item, value in src.items():
        if item not in dst:
            dst[item] = value
            changed = True
        elif dst[item] is not NAC and dst[item] != value:
            dst[item] = NAC
            changed = True
    return changed


def propagate_constants(cfg: ControlFlowGraph) -> ConstPropResult:
    """Solve conditional constant propagation for ``cfg``."""
    defuse = cfg.defuse
    entry = cfg.entry
    env_in: Dict[int, _Env] = {}
    exec_edges: Set[Tuple[Optional[int], int]] = set()
    executable: Set[int] = set()
    folded_branches: Dict[int, bool] = {}
    worklist: Deque[Tuple[Optional[int], int, _Env]] = deque()

    if entry in defuse:
        worklist.append((None, entry, {}))

    guard = 0
    limit = max(1, len(defuse)) * 4096  # fixpoint safety valve
    while worklist:
        guard += 1
        if guard > limit:  # pragma: no cover - defensive only
            break
        src, address, incoming = worklist.popleft()
        edge = (src, address)
        first_visit = address not in env_in
        if first_visit:
            env_in[address] = dict(incoming)
            changed = True
        else:
            changed = _meet_into(env_in[address], incoming)
        if edge in exec_edges and not changed:
            continue
        exec_edges.add(edge)
        executable.add(address)

        fact = defuse[address]
        env = env_in[address]
        writes, flags, folded = _evaluate(fact.instr, env)
        if fact.instr.opcode is Opcode.CALL:
            writes[isa.REG_LR] = to_unsigned(address + 1)
        env_out: _Env = dict(env)
        env_out.update(writes)
        if flags is not None:
            env_out[FLAGS] = NAC if flags < 0 else flags

        successors = _executable_successors(cfg, fact, env, folded)
        if folded is not None and fact.flow == isa.FLOW_BRANCH:
            folded_branches[address] = folded
        else:
            folded_branches.pop(address, None)
        for succ in successors:
            if succ in defuse:
                worklist.append((address, succ, env_out))

    # A branch only counts as folded if it stayed foldable at fixpoint
    # *and* the analysis never saw a conflicting direction; recompute
    # from the final envs to be safe.
    final_folds: Dict[int, bool] = {}
    for address in executable:
        fact = defuse[address]
        if fact.flow != isa.FLOW_BRANCH:
            continue
        nibble = env_in[address].get(FLAGS)
        if isinstance(nibble, int):
            final_folds[address] = _branch_taken(fact.instr.opcode, nibble)

    ranges = _register_ranges(env_in, executable)
    return ConstPropResult(
        cfg=cfg,
        env_in=env_in,
        executable=frozenset(executable),
        folded_branches=final_folds,
        ranges=ranges,
    )


def _executable_successors(
    cfg: ControlFlowGraph,
    fact: InstructionDefUse,
    env: _Env,
    folded: Optional[bool],
) -> Tuple[int, ...]:
    address = fact.address
    instr = fact.instr
    all_succ = cfg.successors.get(address, ())
    if fact.flow == isa.FLOW_BRANCH and folded is not None:
        target = address + 1 + instr.imm if folded else address + 1
        return tuple(s for s in all_succ if s == target)
    if fact.flow == isa.FLOW_INDIRECT:
        target = env.get(instr.rs1)
        if isinstance(target, int):
            return tuple(s for s in all_succ if s == target)
    if fact.flow == isa.FLOW_RETURN:
        target = env.get(isa.REG_LR)
        if isinstance(target, int):
            return tuple(s for s in all_succ if s == target)
    return all_succ


def _register_ranges(
    env_in: Dict[int, _Env], executable: Set[int]
) -> Dict[int, Tuple[int, int]]:
    ranges: Dict[int, Tuple[int, int]] = {}
    poisoned: Set[int] = set()
    for address in executable:
        for item, value in env_in[address].items():
            if item == FLAGS:
                continue
            if not isinstance(value, int):
                poisoned.add(item)
                continue
            lo, hi = ranges.get(item, (value, value))
            ranges[item] = (min(lo, value), max(hi, value))
    for item in poisoned:
        ranges.pop(item, None)
    return ranges
