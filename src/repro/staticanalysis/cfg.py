"""Control-flow graph construction for assembled THOR-lite programs.

Works on the word-addressed code image of a :class:`repro.thor.assembler.
Program`. Control-flow classes come from the operand-semantics table in
:mod:`repro.thor.isa`, so the CFG builder needs no per-opcode special
cases of its own.

Soundness notes (the static analyses built on this CFG must
over-approximate any fault-free execution):

* conditional branches get both the taken and the fall-through edge;
* ``CALL`` gets an edge to the callee *and* to its fall-through (the
  return site) — a sound over-approximation of call/return matching;
* ``RET`` gets edges to every call fall-through site, **unless** some
  instruction other than ``CALL`` can write the link register, in which
  case (like ``JR``, whose target register is unconstrained) it is
  treated as an *unresolved indirect* jump with every code address as a
  potential successor;
* ``HALT`` and ``TRAP`` terminate the run and have no successors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.thor import isa
from repro.thor.assembler import Program
from repro.thor.disasm import format_instruction
from repro.staticanalysis.defuse import InstructionDefUse, program_defuse


@dataclass
class BasicBlock:
    """A maximal straight-line run of code addresses."""

    start: int
    addresses: List[int] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)  # block start addrs
    reachable: bool = False

    @property
    def end(self) -> int:
        return self.addresses[-1] if self.addresses else self.start

    def __len__(self) -> int:
        return len(self.addresses)


@dataclass
class ControlFlowGraph:
    """Instruction- and block-level control flow of one program."""

    entry: int
    defuse: Dict[int, InstructionDefUse]
    # Instruction-level successor map (code addresses only).
    successors: Dict[int, Tuple[int, ...]]
    # True when the program contains an indirect jump whose target set
    # could not be resolved (JR, or RET with a non-CALL writer of LR);
    # such instructions conservatively target every code address.
    has_unresolved_indirect: bool
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    reachable: FrozenSet[int] = frozenset()

    # -- queries ---------------------------------------------------------------

    def block_of(self, address: int) -> Optional[BasicBlock]:
        best: Optional[BasicBlock] = None
        for block in self.blocks.values():
            if address in block.addresses:
                best = block
                break
        return best

    def unreachable_blocks(self) -> List[BasicBlock]:
        return [
            block
            for start, block in sorted(self.blocks.items())
            if not block.reachable
        ]

    def unreachable_addresses(self) -> List[int]:
        return sorted(set(self.defuse) - set(self.reachable))

    def render(self) -> str:
        """ASCII dump of the CFG (used by the example and for debugging)."""
        lines: List[str] = [f"entry: {self.entry:#06x}"]
        for start in sorted(self.blocks):
            block = self.blocks[start]
            mark = "" if block.reachable else "  [unreachable]"
            succ = ", ".join(f"{s:#06x}" for s in sorted(block.successors))
            lines.append(f"block {start:#06x} -> [{succ}]{mark}")
            for address in block.addresses:
                fact = self.defuse[address]
                lines.append(
                    f"  {address:#06x}: {format_instruction(fact.instr)}"
                )
        return "\n".join(lines)


def _instruction_successors(
    fact: InstructionDefUse,
    code: Set[int],
    call_return_sites: Tuple[int, ...],
    all_code: Tuple[int, ...],
    resolved_returns: bool,
) -> Tuple[Tuple[int, ...], bool]:
    """(successor addresses, used_unresolved_indirect) for one instruction."""
    address = fact.address
    instr = fact.instr
    flow = fact.flow
    fall = address + 1 if address + 1 in code else None

    def only_code(targets: List[Optional[int]]) -> Tuple[int, ...]:
        return tuple(sorted({t for t in targets if t is not None and t in code}))

    if flow == isa.FLOW_NEXT:
        return only_code([fall]), False
    if flow in (isa.FLOW_HALT, isa.FLOW_TRAP):
        return (), False
    if flow == isa.FLOW_BRANCH:
        return only_code([fall, address + 1 + instr.imm]), False
    if flow == isa.FLOW_JUMP:
        return only_code([instr.imm]), False
    if flow == isa.FLOW_CALL:
        return only_code([instr.imm, fall]), False
    if flow == isa.FLOW_RETURN and resolved_returns:
        return call_return_sites, False
    # JR, or RET with an unconstrained link register: any code address.
    return all_code, True


def build_cfg(program: Program) -> ControlFlowGraph:
    """Construct the instruction- and block-level CFG of ``program``."""
    defuse = program_defuse(program)
    code: Set[int] = set(defuse)
    all_code = tuple(sorted(code))

    # Can anything besides CALL write the link register? If so, RET
    # targets are unconstrained and must be treated like JR.
    resolved_returns = not any(
        isa.REG_LR in fact.defs and fact.flow != isa.FLOW_CALL
        for fact in defuse.values()
    )
    call_return_sites = tuple(
        sorted(
            fact.address + 1
            for fact in defuse.values()
            if fact.flow == isa.FLOW_CALL and fact.address + 1 in code
        )
    )

    successors: Dict[int, Tuple[int, ...]] = {}
    has_unresolved = False
    for address, fact in defuse.items():
        succ, unresolved = _instruction_successors(
            fact, code, call_return_sites, all_code, resolved_returns
        )
        successors[address] = succ
        has_unresolved = has_unresolved or unresolved

    # Reachability from the program entry point.
    reachable: Set[int] = set()
    entry = program.entry
    worklist: List[int] = [entry] if entry in code else []
    while worklist:
        address = worklist.pop()
        if address in reachable:
            continue
        reachable.add(address)
        worklist.extend(
            s for s in successors[address] if s not in reachable
        )

    cfg = ControlFlowGraph(
        entry=entry,
        defuse=defuse,
        successors=successors,
        has_unresolved_indirect=has_unresolved,
        reachable=frozenset(reachable),
    )
    cfg.blocks = _build_blocks(cfg, all_code)
    return cfg


def _build_blocks(
    cfg: ControlFlowGraph, all_code: Tuple[int, ...]
) -> Dict[int, BasicBlock]:
    """Partition the code addresses into maximal basic blocks."""
    code = set(all_code)
    leaders: Set[int] = set()
    if cfg.entry in code:
        leaders.add(cfg.entry)
    for address in all_code:
        fact = cfg.defuse[address]
        sem_flow = fact.flow
        if sem_flow != isa.FLOW_NEXT:
            # Every target of a control transfer starts a block, and so
            # does the instruction after it.
            if sem_flow not in (isa.FLOW_INDIRECT, isa.FLOW_RETURN):
                leaders.update(cfg.successors[address])
            elif len(cfg.successors[address]) < len(all_code):
                leaders.update(cfg.successors[address])
            if address + 1 in code:
                leaders.add(address + 1)
    # Address-space gaps (e.g. data words between code runs) split blocks.
    previous: Optional[int] = None
    for address in all_code:
        if previous is None or address != previous + 1:
            leaders.add(address)
        previous = address

    blocks: Dict[int, BasicBlock] = {}
    current: Optional[BasicBlock] = None
    for address in all_code:
        if address in leaders or current is None:
            current = BasicBlock(start=address)
            blocks[address] = current
        current.addresses.append(address)
        if cfg.defuse[address].flow != isa.FLOW_NEXT:
            current = None

    for block in blocks.values():
        last = block.end
        block.successors = sorted(
            {s for s in cfg.successors[last] if s in blocks}
        )
        block.reachable = any(a in cfg.reachable for a in block.addresses)
    return blocks
