"""Static program analysis over assembled THOR-lite workloads.

Classical dataflow analysis — def/use extraction, control-flow-graph
construction, backward liveness and reaching definitions — computed from
the program image alone, **without running the workload**. Two consumers:

* :class:`~repro.staticanalysis.oracle.StaticPreInjectionAnalysis` — a
  trace-free liveness oracle with the same ``is_live(location, time)``
  interface as the dynamic (trace-based) pre-injection analysis of
  :mod:`repro.core.preinjection`. Campaigns select static, dynamic or
  hybrid pruning via ``CampaignData.preinjection_mode``.
* :func:`~repro.staticanalysis.lint.lint_campaign` — a set-up-phase lint
  pass that rejects broken campaign configurations (zero-match location
  patterns, injection windows beyond the reference duration, faults into
  provably-dead registers, unreachable workload code) before a single
  experiment runs.

Soundness contract: the static result is an *over-approximation* of the
dynamic one — every (location, time) pair the trace-based analysis
reports live is also reported live statically, so static pruning never
discards a fault the dynamic oracle would have kept. The property test
``tests/properties/test_prop_static_soundness.py`` asserts this for every
workload in the library.
"""

from repro.staticanalysis.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.staticanalysis.defuse import (
    InstructionDefUse,
    ReachingDefinitions,
    program_defuse,
)
from repro.staticanalysis.lint import LintFinding, lint_campaign
from repro.staticanalysis.liveness import FLAGS, LivenessResult, compute_liveness
from repro.staticanalysis.oracle import StaticPreInjectionAnalysis

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "InstructionDefUse",
    "ReachingDefinitions",
    "program_defuse",
    "LintFinding",
    "lint_campaign",
    "FLAGS",
    "LivenessResult",
    "compute_liveness",
    "StaticPreInjectionAnalysis",
]
