"""Static program analysis over assembled THOR-lite workloads.

Classical dataflow analysis — def/use extraction, control-flow-graph
construction, backward liveness, reaching definitions with full
def-use/use-def chains, dominator trees with natural-loop detection, and
sparse conditional constant propagation — computed from the program
image alone, **without running the workload**. Three consumers:

* :class:`~repro.staticanalysis.oracle.StaticPreInjectionAnalysis` — a
  trace-free liveness oracle with the same ``is_live(location, time)``
  interface as the dynamic (trace-based) pre-injection analysis of
  :mod:`repro.core.preinjection`. Campaigns select static, dynamic or
  hybrid pruning via ``CampaignData.preinjection_mode``.
* :class:`~repro.staticanalysis.equivalence
  .EquivalencePreInjectionAnalysis` — the fault-equivalence engine
  behind ``preinjection_mode="equivalence"``: it partitions a campaign's
  planned fault list into provably outcome-identical classes so the
  campaign loop executes one representative per class and statically
  derives the rest.
* :func:`~repro.staticanalysis.lint.lint_campaign` — a set-up-phase lint
  pass that rejects broken campaign configurations (zero-match location
  patterns, injection windows beyond the reference duration, faults into
  provably-dead registers, unreachable workload code) before a single
  experiment runs. See the module docstring for the rule catalog.

Soundness contract: the static result is an *over-approximation* of the
dynamic one — every (location, time) pair the trace-based analysis
reports live is also reported live statically, so static pruning never
discards a fault the dynamic oracle would have kept. The property test
``tests/properties/test_prop_static_soundness.py`` asserts this for every
workload in the library; ``tests/properties/test_prop_equivalence.py``
asserts the equivalence engine's derived outcomes equal force-executed
ones.
"""

from repro.staticanalysis.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.staticanalysis.constprop import (
    NAC,
    ConstPropResult,
    propagate_constants,
)
from repro.staticanalysis.defuse import (
    FLAGS,
    InstructionDefUse,
    ReachingDefinitions,
    program_defuse,
)
from repro.staticanalysis.dominators import (
    DominatorTree,
    NaturalLoop,
    build_dominator_tree,
    natural_loops,
)
from repro.staticanalysis.equivalence import (
    EquivalenceClass,
    EquivalencePartition,
    EquivalencePreInjectionAnalysis,
    PartitionStats,
    RegionCertifier,
    location_item,
)
from repro.staticanalysis.lint import LintFinding, lint_campaign, lint_errors
from repro.staticanalysis.liveness import LivenessResult, compute_liveness
from repro.staticanalysis.oracle import StaticPreInjectionAnalysis

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "NAC",
    "ConstPropResult",
    "propagate_constants",
    "InstructionDefUse",
    "ReachingDefinitions",
    "program_defuse",
    "DominatorTree",
    "NaturalLoop",
    "build_dominator_tree",
    "natural_loops",
    "EquivalenceClass",
    "EquivalencePartition",
    "EquivalencePreInjectionAnalysis",
    "PartitionStats",
    "RegionCertifier",
    "location_item",
    "LintFinding",
    "lint_campaign",
    "lint_errors",
    "FLAGS",
    "LivenessResult",
    "compute_liveness",
    "StaticPreInjectionAnalysis",
]
