"""Campaign lint: reject broken campaign configurations at set-up time.

ProFIPy-style validation of the fault specification *before* the campaign
runs (paper Figure 5's set-up phase): a misconfigured campaign otherwise
burns its whole experiment budget producing no-effect results. Each check
yields a :class:`LintFinding`; severities:

* ``error``   — the campaign cannot produce meaningful results
                (zero-match patterns, only-dead-register selections,
                injection windows beyond the reference run).
* ``warning`` — the campaign will run but wastes experiments
                (individual provably-dead registers, unreachable
                workload code in the selection, tight timeouts).
* ``info``    — diagnostics (dead stores found by reaching
                definitions).

Rule catalog (``goofi lint`` exits non-zero when any *error* fires):

==========================  ========  =====================================
rule                        severity  fires when
==========================  ========  =====================================
zero-match-pattern          error     a location pattern matches no cells
read-only-pattern           error     a pattern matches only observe-only
                                      cells
injection-window            error     the trigger can never fire inside
                                      the reference run
no-live-location            error     every selected location is provably
                                      dead
dead-register               warning   a selected register is never read by
                                      reachable code
unreachable-code            warning   a selected code word is CFG-
                                      unreachable
unreachable-workload-code   warning   the workload image contains
                                      CFG-unreachable blocks
unreachable-location        warning   a selected code word survives the
                                      plain CFG but is proven dead by
                                      conditional constant propagation
                                      (branch folding)
class-singleton-heavy       warning   an equivalence-mode partition is
                                      dominated by singleton classes —
                                      collapsing will not pay off
timeout-too-tight           warning   timeout_cycles < reference duration
dead-store                  info      register definitions that reach no
                                      use
constant-dead-write         info      dead stores whose written value is
                                      additionally a compile-time constant
==========================  ========  =====================================
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.core.campaign import CampaignData
from repro.core.locations import LocationSpace
from repro.thor.assembler import Program
from repro.staticanalysis.oracle import StaticPreInjectionAnalysis

_REG_RE = re.compile(r"cpu\.regfile\.r(\d+)$")
_MEM_RE = re.compile(r"word\.0x([0-9a-fA-F]+)$")


@dataclass(frozen=True)
class LintFinding:
    """One problem the campaign lint pass found."""

    rule: str
    severity: str  # "error" | "warning" | "info"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.rule}: {self.message}"


def _check_patterns(
    campaign: CampaignData, space: LocationSpace
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for pattern in campaign.location_patterns:
        matched = space.select_cells([pattern], writable_only=False)
        if not matched:
            findings.append(
                LintFinding(
                    rule="zero-match-pattern",
                    severity="error",
                    message=(
                        f"location pattern {pattern!r} matches no cells of "
                        "this target"
                    ),
                )
            )
            continue
        writable = space.select_cells([pattern], writable_only=True)
        if not writable:
            findings.append(
                LintFinding(
                    rule="read-only-pattern",
                    severity="error",
                    message=(
                        f"location pattern {pattern!r} matches only "
                        "read-only (observe-only) cells"
                    ),
                )
            )
    return findings


def _check_trigger(
    campaign: CampaignData, reference_duration: Optional[int]
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    trigger = campaign.trigger
    if trigger.kind == "time-fixed" and trigger.time <= 0:
        findings.append(
            LintFinding(
                rule="injection-window",
                severity="error",
                message=(
                    f"time-fixed trigger at cycle {trigger.time} — "
                    "injection instants must be positive"
                ),
            )
        )
    if reference_duration is None:
        return findings
    if trigger.kind == "time-fixed" and trigger.time > reference_duration:
        findings.append(
            LintFinding(
                rule="injection-window",
                severity="error",
                message=(
                    f"time-fixed trigger at cycle {trigger.time} lies beyond "
                    f"the reference duration of {reference_duration} cycles — "
                    "the workload terminates before the fault is injected"
                ),
            )
        )
    if trigger.kind == "clock" and trigger.period > reference_duration:
        findings.append(
            LintFinding(
                rule="injection-window",
                severity="error",
                message=(
                    f"clock trigger period {trigger.period} exceeds the "
                    f"reference duration of {reference_duration} cycles — "
                    "no clock tick falls inside the run"
                ),
            )
        )
    if (
        campaign.timeout_cycles is not None
        and campaign.timeout_cycles < reference_duration
    ):
        findings.append(
            LintFinding(
                rule="timeout-too-tight",
                severity="warning",
                message=(
                    f"timeout_cycles={campaign.timeout_cycles} is shorter "
                    f"than the reference duration of {reference_duration} "
                    "cycles — every experiment will time out"
                ),
            )
        )
    return findings


def _check_static_liveness(
    campaign: CampaignData,
    space: LocationSpace,
    oracle: StaticPreInjectionAnalysis,
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    cells = space.select_cells(campaign.location_patterns)
    dead = oracle.dead_registers
    unreachable = set(oracle.unreachable_code_addresses())

    dead_selected: List[str] = []
    unreachable_selected: List[str] = []
    any_live_cell = False
    for cell in cells:
        reg_match = _REG_RE.search(cell.path)
        if reg_match is not None:
            if int(reg_match.group(1)) in dead:
                dead_selected.append(cell.full_path)
                continue
            any_live_cell = True
            continue
        mem_match = _MEM_RE.search(cell.path)
        if (
            mem_match is not None
            and cell.space.endswith("code")
            and int(mem_match.group(1), 16) in unreachable
        ):
            unreachable_selected.append(cell.full_path)
            continue
        any_live_cell = True

    for path in dead_selected:
        findings.append(
            LintFinding(
                rule="dead-register",
                severity="warning",
                message=(
                    f"{path} is provably dead: no reachable instruction of "
                    f"workload {campaign.workload_name!r} reads it, so every "
                    "fault injected there is overwritten or latent"
                ),
            )
        )
    for path in unreachable_selected:
        findings.append(
            LintFinding(
                rule="unreachable-code",
                severity="warning",
                message=(
                    f"{path} is unreachable workload code: no CFG path from "
                    "the entry point fetches it"
                ),
            )
        )
    if cells and not any_live_cell:
        findings.append(
            LintFinding(
                rule="no-live-location",
                severity="error",
                message=(
                    "every selected location is provably dead — the campaign "
                    "cannot activate a single fault"
                ),
            )
        )
    return findings


def _check_unreachable_workload(
    oracle: StaticPreInjectionAnalysis,
) -> List[LintFinding]:
    blocks = oracle.cfg.unreachable_blocks()
    if not blocks:
        return []
    addresses = ", ".join(f"{b.start:#06x}" for b in blocks[:8])
    suffix = ", ..." if len(blocks) > 8 else ""
    return [
        LintFinding(
            rule="unreachable-workload-code",
            severity="warning",
            message=(
                f"workload contains {len(blocks)} unreachable basic "
                f"block(s) at {addresses}{suffix}"
            ),
        )
    ]


def _check_dead_stores(
    oracle: StaticPreInjectionAnalysis,
) -> List[LintFinding]:
    dead = oracle.reaching_definitions().dead_definitions(
        reachable=oracle.cfg.reachable
    )
    if not dead:
        return []
    sample = ", ".join(f"r{reg}@{addr:#06x}" for addr, reg in dead[:6])
    suffix = ", ..." if len(dead) > 6 else ""
    return [
        LintFinding(
            rule="dead-store",
            severity="info",
            message=(
                f"{len(dead)} register definition(s) never reach a use "
                f"({sample}{suffix})"
            ),
        )
    ]


def _check_conditional_unreachable(
    campaign: CampaignData,
    space: LocationSpace,
    oracle: StaticPreInjectionAnalysis,
    constprop,
) -> List[LintFinding]:
    """Selected code words that the plain CFG reaches but conditional
    constant propagation proves dead (a folded branch skips them)."""
    refined = set(constprop.refined_unreachable())
    if not refined:
        return []
    findings: List[LintFinding] = []
    for cell in space.select_cells(campaign.location_patterns):
        mem_match = _MEM_RE.search(cell.path)
        if (
            mem_match is not None
            and cell.space.endswith("code")
            and int(mem_match.group(1), 16) in refined
        ):
            findings.append(
                LintFinding(
                    rule="unreachable-location",
                    severity="warning",
                    message=(
                        f"{cell.full_path} is conditionally unreachable: a "
                        "provably constant branch always skips it, so a "
                        "fault there is never activated"
                    ),
                )
            )
    return findings


def _check_constant_dead_writes(
    oracle: StaticPreInjectionAnalysis, constprop
) -> List[LintFinding]:
    dead = oracle.reaching_definitions().dead_definitions(
        reachable=oracle.cfg.reachable
    )
    rows = constprop.constant_dead_writes(dead)
    if not rows:
        return []
    sample = ", ".join(
        f"r{item}@{addr:#06x}={value:#x}" for addr, item, value in rows[:4]
    )
    suffix = ", ..." if len(rows) > 4 else ""
    return [
        LintFinding(
            rule="constant-dead-write",
            severity="info",
            message=(
                f"{len(rows)} dead store(s) write a compile-time constant "
                f"({sample}{suffix}) — candidates for workload cleanup"
            ),
        )
    ]


#: class-singleton-heavy thresholds: the rule only fires on campaigns
#: large enough for collapsing to matter, dominated by 1-member classes.
_SINGLETON_HEAVY_MIN_EXPERIMENTS = 20
_SINGLETON_HEAVY_FRACTION = 0.8


def _check_partition(partition_stats) -> List[LintFinding]:
    """Equivalence-mode accounting: warn when the partition is dominated
    by singleton classes and collapsing will barely reduce executions."""
    stats = partition_stats
    if stats.n_experiments < _SINGLETON_HEAVY_MIN_EXPERIMENTS:
        return []
    if stats.singleton_fraction <= _SINGLETON_HEAVY_FRACTION:
        return []
    return [
        LintFinding(
            rule="class-singleton-heavy",
            severity="warning",
            message=(
                f"equivalence partition is singleton-heavy: "
                f"{stats.n_singletons}/{stats.n_classes} classes have one "
                f"member (collapse ratio {stats.collapse_ratio:.2f}x over "
                f"{stats.n_experiments} experiments) — narrow the location "
                "selection to rarely-accessed state, or drop "
                "preinjection_mode=\"equivalence\" for this campaign"
            ),
        )
    ]


def lint_campaign(
    campaign: CampaignData,
    space: LocationSpace,
    program: Optional[Program] = None,
    reference_duration: Optional[int] = None,
    partition_stats=None,
) -> List[LintFinding]:
    """Run every lint check applicable to ``campaign``.

    ``program`` enables the static-analysis checks (dead registers,
    unreachable code, dead stores, conditional reachability);
    ``reference_duration`` enables the injection-window checks;
    ``partition_stats`` (a :class:`repro.staticanalysis.equivalence.
    PartitionStats`) enables the equivalence-partition accounting check.
    All are optional so the lint pass degrades gracefully for targets
    without a THOR-lite program image.
    """
    findings: List[LintFinding] = []
    findings.extend(_check_patterns(campaign, space))
    findings.extend(_check_trigger(campaign, reference_duration))
    if program is not None:
        from repro.staticanalysis.constprop import propagate_constants

        oracle = StaticPreInjectionAnalysis(
            program, duration=reference_duration
        )
        constprop = propagate_constants(oracle.cfg)
        findings.extend(_check_static_liveness(campaign, space, oracle))
        findings.extend(_check_unreachable_workload(oracle))
        findings.extend(
            _check_conditional_unreachable(campaign, space, oracle, constprop)
        )
        findings.extend(_check_dead_stores(oracle))
        findings.extend(_check_constant_dead_writes(oracle, constprop))
    if partition_stats is not None:
        findings.extend(_check_partition(partition_stats))
    return findings


def lint_errors(findings: List[LintFinding]) -> List[LintFinding]:
    return [f for f in findings if f.severity == "error"]
