"""Static fault-equivalence engine: def-use partitioning of campaigns.

Two single-bit transient flips into the *same* location are provably
indistinguishable when no architectural access to that location happens
between their injection points: up to the first access, the faulty run
executes exactly the fault-free reference (the flipped bit is not yet
observed and nothing else differs), so both runs arrive at the next
access with bitwise-identical machine state — flipped bit included,
because no intervening write changed it — and behave identically from
there on. Every member of such an equivalence class therefore yields
the same termination, outputs, state vector and outcome classification,
and a campaign only needs to *execute* one representative per class.

The partitioner grounds that argument in two layers:

* **Trace windows** — the reference trace instantiates, per location,
  the sequence of access instants (the same read/write convention as
  :class:`repro.core.preinjection.PreInjectionAnalysis`, expressed in
  stop-step indices so the window boundaries coincide exactly with
  where a stop-at-cycle breakpoint lands, cf.
  :meth:`repro.core.trace.Trace.step_after_cycle`).
* **Static region certificates** — a window only collapses when the
  def-use region between its bounding accesses is *statically* proven
  observation-free: starting from the defining access, the first
  observation of the item on **every** executable CFG path must be the
  window's closing access. The straight-line case (both bounds in one
  basic block, nothing between them touching the item — the issue's
  "no read, no store, no branch, no trap between def and use") is
  decided exactly via the dominator-tree block structure; the general
  case is a frontier search over the conditional-constant-refined CFG
  (:mod:`repro.staticanalysis.constprop`), with trap instructions
  always acting as barriers. Regions the static layer cannot certify
  fall back to *stop-point* classes: members whose breakpoint lands on
  the same trace step run the literally identical experiment and are
  always safe to merge.

Locations outside the register file and the PSR (memory words behind
the caches, pins, anything unrecognised) never get access windows —
cache fills and write-backs are invisible to the trace, so only the
exact stop-point collapse applies to them.

:class:`EquivalencePreInjectionAnalysis` is the campaign-facing oracle
for ``preinjection_mode="equivalence"``: its ``is_live`` delegates to
the static oracle (so equivalence campaigns plan *identical* fault
lists to ``preinjection_mode="static"`` — the byte-identity contract
the property tests pin down), and its :meth:`partition` produces the
classes the campaign loop collapses.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.thor import isa
from repro.thor.assembler import Program
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.constprop import ConstPropResult, propagate_constants
from repro.staticanalysis.dominators import (
    DominatorTree,
    build_dominator_tree,
    loop_blocks,
    natural_loops,
)
from repro.staticanalysis.oracle import StaticPreInjectionAnalysis

_REG_RE = re.compile(r"cpu\.regfile\.r(\d+)$")

# Dataflow item of a fault location: ("reg", index) or ("flags",).
ItemKey = Tuple[object, ...]

# Class keys sort/compare structurally; see EquivalenceClass.kind.
ClassKey = Tuple[object, ...]

KIND_REGION = "region"
KIND_STOP = "stop"
KIND_SINGLETON = "singleton"


def location_item(location) -> Optional[ItemKey]:
    """The trace-observable dataflow item behind a fault location.

    Returns ``None`` for locations whose accesses the trace cannot
    enumerate soundly (memory words behind the caches, pins, PC/IR and
    unknown state) — those collapse only via exact stop-point identity.
    """
    path = location.path
    match = _REG_RE.search(path)
    if match is not None:
        return ("reg", int(match.group(1)))
    if path.endswith("cpu.psr"):
        return ("flags",)
    return None


@dataclass(frozen=True)
class EquivalenceClass:
    """One set of provably outcome-identical experiments."""

    key: ClassKey
    kind: str  # KIND_REGION | KIND_STOP | KIND_SINGLETON
    members: Tuple[int, ...]  # experiment indices, ascending

    @property
    def representative(self) -> int:
        return self.members[0]

    @property
    def n_derived(self) -> int:
        return len(self.members) - 1


@dataclass(frozen=True)
class PartitionStats:
    """Aggregate accounting of one partition (metrics + lint + E14)."""

    n_experiments: int
    n_classes: int
    n_executed: int
    n_derived: int
    n_singletons: int
    n_region_classes: int
    n_stop_classes: int

    @property
    def collapse_ratio(self) -> float:
        """Executed-experiment reduction factor (>= 1.0)."""
        if self.n_executed == 0:
            return 1.0
        return self.n_experiments / self.n_executed

    @property
    def singleton_fraction(self) -> float:
        if self.n_classes == 0:
            return 0.0
        return self.n_singletons / self.n_classes

    def to_dict(self) -> Dict[str, float]:
        return {
            "n_experiments": self.n_experiments,
            "n_classes": self.n_classes,
            "n_executed": self.n_executed,
            "n_derived": self.n_derived,
            "n_singletons": self.n_singletons,
            "n_region_classes": self.n_region_classes,
            "n_stop_classes": self.n_stop_classes,
            "collapse_ratio": self.collapse_ratio,
            "singleton_fraction": self.singleton_fraction,
        }


class EquivalencePartition:
    """The equivalence classes of one campaign's planned fault list."""

    def __init__(self, classes: Sequence[EquivalenceClass]):
        self.classes: List[EquivalenceClass] = sorted(
            classes, key=lambda c: c.representative
        )
        self._by_member: Dict[int, EquivalenceClass] = {}
        self._derived: Dict[int, int] = {}
        for cls in self.classes:
            for member in cls.members:
                self._by_member[member] = cls
            for member in cls.members[1:]:
                self._derived[member] = cls.representative

    def class_of(self, index: int) -> Optional[EquivalenceClass]:
        return self._by_member.get(index)

    def derived_map(self) -> Dict[int, int]:
        """member index -> representative index (non-representatives only)."""
        return dict(self._derived)

    def derived_members_of(self, representative: int) -> List[int]:
        cls = self._by_member.get(representative)
        if cls is None or cls.representative != representative:
            return []
        return list(cls.members[1:])

    def stats(self) -> PartitionStats:
        n_members = sum(len(c.members) for c in self.classes)
        n_singletons = sum(1 for c in self.classes if len(c.members) == 1)
        n_region = sum(
            1
            for c in self.classes
            if c.kind == KIND_REGION and len(c.members) > 1
        )
        n_stop = sum(
            1
            for c in self.classes
            if c.kind == KIND_STOP and len(c.members) > 1
        )
        n_derived = len(self._derived)
        return PartitionStats(
            n_experiments=n_members,
            n_classes=len(self.classes),
            n_executed=n_members - n_derived,
            n_derived=n_derived,
            n_singletons=n_singletons,
            n_region_classes=n_region,
            n_stop_classes=n_stop,
        )


class RegionCertifier:
    """Static observation-freedom certificates for def-use regions."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self.constprop: ConstPropResult = propagate_constants(cfg)
        self.domtree: Optional[DominatorTree] = build_dominator_tree(cfg)
        self.loops = (
            natural_loops(self.domtree) if self.domtree is not None else []
        )
        self._loop_block_starts = loop_blocks(self.loops)
        # address -> (block start, position within block)
        self._position: Dict[int, Tuple[int, int]] = {}
        for start, block in cfg.blocks.items():
            for pos, address in enumerate(block.addresses):
                self._position[address] = (start, pos)
        # Trap instructions end the experiment — they bar every region.
        self._traps = frozenset(
            address
            for address, fact in cfg.defuse.items()
            if fact.flow == isa.FLOW_TRAP
        )
        self._obs_cache: Dict[ItemKey, FrozenSet[int]] = {}
        self._cert_cache: Dict[
            Tuple[ItemKey, Optional[int], Optional[int]], bool
        ] = {}
        #: Windows refused inside natural-loop bodies (diagnostic: these
        #: are the re-executing regions the lint surfaces as the usual
        #: cause of singleton-heavy partitions).
        self.loop_refusals = 0

    def observation_sites(self, item: ItemKey) -> FrozenSet[int]:
        """Executable addresses that read or write ``item``, plus traps."""
        cached = self._obs_cache.get(item)
        if cached is not None:
            return cached
        executable = self.constprop.executable
        sites: Set[int] = set()
        for address, fact in self.cfg.defuse.items():
            if address not in executable:
                continue
            if item[0] == "reg":
                register = item[1]
                if register in fact.uses or register in fact.defs:
                    sites.add(address)
            elif item[0] == "flags":
                if fact.reads_flags or fact.writes_flags:
                    sites.add(address)
        sites |= self._traps & executable
        result = frozenset(sites)
        self._obs_cache[item] = result
        return result

    def _in_loop(self, address: int) -> bool:
        position = self._position.get(address)
        return position is not None and position[0] in self._loop_block_starts

    def _frontier(
        self, starts: Sequence[int], obs: FrozenSet[int]
    ) -> Optional[Set[int]]:
        """First observations hit on any executable path from ``starts``.

        Returns None when the search leaves the known code image (an
        unresolved successor) — certification must then fail.
        """
        executable = self.constprop.executable
        frontier: Set[int] = set()
        visited: Set[int] = set()
        stack = [s for s in starts]
        while stack:
            address = stack.pop()
            if address in visited:
                continue
            visited.add(address)
            if address not in self.cfg.defuse:
                return None
            if address not in executable:
                continue  # proven never to execute
            if address in obs:
                frontier.add(address)
                continue
            stack.extend(self.cfg.successors.get(address, ()))
        return frontier

    def certify(
        self,
        item: ItemKey,
        prev_pc: Optional[int],
        next_pc: Optional[int],
    ) -> bool:
        """Is the region between the bounding accesses observation-free?

        ``prev_pc``/``next_pc`` are the instruction addresses of the
        accesses bounding the trace window (None for the program entry /
        end of run). Certified means: on every executable static path
        out of the opening access, the first observation of ``item`` is
        the closing access — so no path can read, overwrite or trap on
        the item anywhere strictly inside the region.
        """
        key = (item, prev_pc, next_pc)
        cached = self._cert_cache.get(key)
        if cached is not None:
            return cached
        result = self._certify_uncached(item, prev_pc, next_pc)
        if not result and prev_pc is not None and self._in_loop(prev_pc):
            self.loop_refusals += 1
        self._cert_cache[key] = result
        return result

    def _certify_uncached(
        self,
        item: ItemKey,
        prev_pc: Optional[int],
        next_pc: Optional[int],
    ) -> bool:
        obs = self.observation_sites(item)
        if prev_pc is None:
            entry = self.cfg.entry
            if entry not in self.cfg.defuse:
                return False
            starts: List[int] = [entry]
        else:
            if prev_pc not in self.cfg.defuse:
                return False
            # Dominator/straight-line fast path: both bounds in one basic
            # block with the closing access strictly after the opening
            # one — execution is the textual sequence between them, so a
            # linear scan is an exact certificate.
            if next_pc is not None:
                prev_position = self._position.get(prev_pc)
                next_position = self._position.get(next_pc)
                if (
                    prev_position is not None
                    and next_position is not None
                    and prev_position[0] == next_position[0]
                    and prev_position[1] < next_position[1]
                ):
                    block = self.cfg.blocks[prev_position[0]]
                    between = block.addresses[
                        prev_position[1] + 1 : next_position[1]
                    ]
                    return not any(address in obs for address in between)
            starts = list(self.cfg.successors.get(prev_pc, ()))
        frontier = self._frontier(starts, obs)
        if frontier is None:
            return False
        if next_pc is None:
            return not frontier
        return frontier <= {next_pc}


class _ItemAccesses:
    """Per-item access instants of the reference trace, in stop-step
    coordinates (access at step j is *future* for a breakpoint landing
    on step s iff j >= s)."""

    def __init__(self) -> None:
        self.steps: List[int] = []
        self.pcs: List[int] = []

    def add(self, step_index: int, pc: int) -> None:
        if self.steps and self.steps[-1] == step_index:
            return
        self.steps.append(step_index)
        self.pcs.append(pc)

    def window(
        self, stop_step: int
    ) -> Tuple[int, Optional[int], Optional[int]]:
        """(window index, opening access pc, closing access pc)."""
        k = bisect.bisect_left(self.steps, stop_step)
        prev_pc = self.pcs[k - 1] if k > 0 else None
        next_pc = self.pcs[k] if k < len(self.pcs) else None
        return k, prev_pc, next_pc


class EquivalencePreInjectionAnalysis:
    """Liveness oracle + fault-space partitioner for equivalence mode.

    The liveness interface (``is_live`` / ``live_fraction``) delegates
    verbatim to :class:`StaticPreInjectionAnalysis`, so campaigns in
    equivalence mode draw byte-identical fault lists to static mode —
    only the execution strategy differs.
    """

    def __init__(
        self, program: Program, trace, duration: Optional[int] = None
    ):
        self.static = StaticPreInjectionAnalysis(program, duration=duration)
        self.certifier = RegionCertifier(self.static.cfg)
        # Stop-step boundaries: a breakpoint at cycle t lands on the
        # first step whose cycle_before >= t (Trace.step_after_cycle).
        self._step_cycles: List[int] = [
            step.cycle_before for step in trace
        ]
        self._accesses: Dict[ItemKey, _ItemAccesses] = {}
        for step_index, step in enumerate(trace):
            for register in set(step.reg_reads) | set(step.reg_writes):
                self._access(("reg", register)).add(step_index, step.pc)
            if step.reads_flags or step.writes_flags:
                self._access(("flags",)).add(step_index, step.pc)

    def _access(self, item: ItemKey) -> _ItemAccesses:
        accesses = self._accesses.get(item)
        if accesses is None:
            accesses = _ItemAccesses()
            self._accesses[item] = accesses
        return accesses

    # -- the oracle interface (plan parity with static mode) -----------------

    def is_live(self, location, time: int) -> bool:
        return self.static.is_live(location, time)

    def live_fraction(
        self,
        locations,
        times,
        max_samples: Optional[int] = None,
    ) -> float:
        return self.static.live_fraction(locations, times, max_samples)

    # -- partitioning ----------------------------------------------------------

    def stop_step(self, time: int) -> int:
        """Index of the trace step a breakpoint at ``time`` lands on
        (``len(trace)`` when the run ends before the breakpoint —
        such an experiment never injects)."""
        return bisect.bisect_left(self._step_cycles, time)

    def _collapsible(self, plan) -> Optional[Tuple[object, str, int]]:
        """(location, op, time) for single-action single-location plans."""
        actions = plan.sorted_actions()
        if len(actions) != 1:
            return None
        action = actions[0]
        if len(action.locations) != 1:
            return None
        return action.locations[0], action.op, action.time

    def class_key(self, plan) -> Tuple[ClassKey, str]:
        """(class key, kind) for one experiment's injection plan."""
        core = self._collapsible(plan)
        if core is None:
            return ("singleton", id(plan)), KIND_SINGLETON
        location, op, time = core
        stop = self.stop_step(time)
        injects = stop < len(self._step_cycles)
        item = location_item(location)
        if item is not None and injects:
            accesses = self._accesses.get(item)
            if accesses is None:
                # Item never accessed in the trace: one global window,
                # certified iff no observation site is ever executable.
                if self.certifier.certify(item, None, None):
                    return (
                        KIND_REGION,
                        location.key(),
                        op,
                        0,
                    ), KIND_REGION
            else:
                k, prev_pc, next_pc = accesses.window(stop)
                if self.certifier.certify(item, prev_pc, next_pc):
                    return (
                        KIND_REGION,
                        location.key(),
                        op,
                        k,
                    ), KIND_REGION
        # Fallback: exact stop-point identity (always sound — the very
        # same breakpoint step means the literally identical experiment).
        return (KIND_STOP, location.key(), op, stop), KIND_STOP

    def partition(self, plans: Dict[int, object]) -> EquivalencePartition:
        """Partition planned experiments into equivalence classes.

        ``plans`` maps experiment index -> :class:`InjectionPlan`.
        """
        buckets: Dict[ClassKey, List[int]] = {}
        kinds: Dict[ClassKey, str] = {}
        for index in sorted(plans):
            key, kind = self.class_key(plans[index])
            if kind == KIND_SINGLETON:
                key = (KIND_SINGLETON, index)
            buckets.setdefault(key, []).append(index)
            kinds[key] = kind
        classes = []
        for key, members in buckets.items():
            kind = kinds[key] if len(members) > 1 else KIND_SINGLETON
            classes.append(
                EquivalenceClass(
                    key=key, kind=kind, members=tuple(sorted(members))
                )
            )
        return EquivalencePartition(classes)
