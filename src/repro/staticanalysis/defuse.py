"""Per-instruction def/use extraction and reaching definitions.

The def/use sets are derived from the operand-semantics table in
:data:`repro.thor.isa.SEMANTICS` via
:func:`repro.thor.effects.register_effects` — the same table the dynamic
trace collector uses, which is what makes the static analysis a sound
over-approximation of the trace-based one by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.thor import isa
from repro.thor.assembler import Program
from repro.thor.effects import register_effects
from repro.thor.isa import Instruction, try_decode

#: Pseudo dataflow item for the PSR flags (register items are 0..15).
#: Shared with :mod:`repro.staticanalysis.liveness` so flag definitions
#: (ALU results, CMP/CMPI) and flag uses (conditional branches) appear in
#: the same item space as register definitions and uses.
FLAGS = isa.NUM_REGISTERS


@dataclass(frozen=True)
class InstructionDefUse:
    """Dataflow facts of one instruction at one code address."""

    address: int
    instr: Instruction
    uses: FrozenSet[int]
    defs: FrozenSet[int]
    reads_flags: bool
    writes_flags: bool
    flow: str
    mem: str

    @property
    def opcode_name(self) -> str:
        return self.instr.opcode.name

    @property
    def is_memory_read(self) -> bool:
        return self.mem == isa.MEM_LOAD

    @property
    def is_memory_write(self) -> bool:
        return self.mem == isa.MEM_STORE

    @property
    def item_uses(self) -> FrozenSet[int]:
        """Register uses plus the :data:`FLAGS` item for flag readers.

        Conditional branches have empty ``uses`` but *do* consume the PSR
        — dropping that implicit operand silently removes the CMP→branch
        edge from every chain, which is exactly the class of bug the
        equivalence engine cannot tolerate.
        """
        return self.uses | frozenset([FLAGS] if self.reads_flags else [])

    @property
    def item_defs(self) -> FrozenSet[int]:
        """Register defs plus the :data:`FLAGS` item for flag writers."""
        return self.defs | frozenset([FLAGS] if self.writes_flags else [])


def instruction_defuse(address: int, instr: Instruction) -> InstructionDefUse:
    """Def/use facts for one decoded instruction."""
    sem = isa.semantics(instr.opcode)
    effects = register_effects(instr)
    return InstructionDefUse(
        address=address,
        instr=instr,
        uses=effects.reg_reads,
        defs=effects.reg_writes,
        reads_flags=sem.reads_flags,
        writes_flags=sem.writes_flags,
        flow=sem.flow,
        mem=sem.mem,
    )


def program_defuse(program: Program) -> Dict[int, InstructionDefUse]:
    """Def/use facts for every decodable code word of ``program``.

    Words the assembler marked as data, and code words whose opcode field
    is illegal (none are produced by the assembler, but fault-mutated
    images may contain them), are skipped.
    """
    facts: Dict[int, InstructionDefUse] = {}
    for address in program.code_addresses():
        instr = try_decode(program.words[address])
        if instr is None:
            continue
        facts[address] = instruction_defuse(address, instr)
    return facts


# ---------------------------------------------------------------------------
# Reaching definitions (forward dataflow, worklist iteration)
# ---------------------------------------------------------------------------

# A definition is identified by (defining address, dataflow item). Items
# are register indices 0..15 or the FLAGS pseudo-item.
Definition = Tuple[int, int]

# A use site is identified the same way: (using address, dataflow item).
UseSite = Tuple[int, int]


class ReachingDefinitions:
    """Which definitions may reach each program point.

    Forward may-analysis over the instruction-level CFG:

        IN[a]  = union of OUT[p] for p in preds(a)
        OUT[a] = GEN[a] | (IN[a] - KILL[a])

    Dataflow items are the 16 general-purpose registers plus the PSR
    flags (:data:`FLAGS`) — the implicit flag writes of ALU/CMP
    instructions and the implicit flag reads of conditional branches
    participate in the lattice exactly like register operands, so
    def-use chains never silently drop the CMP→branch edge.

    Used by the campaign lint pass to flag dead stores (definitions that
    never reach a use) and by the equivalence engine, which consumes the
    full def-use/use-def chains to certify unobserved def-use regions.
    """

    def __init__(
        self,
        defuse: Dict[int, InstructionDefUse],
        successors: Dict[int, Tuple[int, ...]],
        entry: int,
    ):
        self.defuse = defuse
        self.successors = successors
        self.entry = entry
        self.reach_in: Dict[int, FrozenSet[Definition]] = {}
        self.reach_out: Dict[int, FrozenSet[Definition]] = {}
        self._def_use: Optional[Dict[Definition, Tuple[int, ...]]] = None
        self._use_def: Optional[Dict[UseSite, Tuple[int, ...]]] = None
        self._solve()

    def _solve(self) -> None:
        addresses = sorted(self.defuse)
        predecessors: Dict[int, List[int]] = {a: [] for a in addresses}
        for address in addresses:
            for succ in self.successors.get(address, ()):
                if succ in predecessors:
                    predecessors[succ].append(address)
        empty: FrozenSet[Definition] = frozenset()
        reach_in = {a: empty for a in addresses}
        reach_out = {a: empty for a in addresses}
        worklist: List[int] = list(addresses)
        while worklist:
            address = worklist.pop()
            fact = self.defuse[address]
            incoming: Set[Definition] = set()
            for pred in predecessors[address]:
                incoming |= reach_out[pred]
            new_in = frozenset(incoming)
            gen = frozenset((address, item) for item in fact.item_defs)
            killed = fact.item_defs
            new_out = gen | frozenset(
                d for d in new_in if d[1] not in killed
            )
            if new_in == reach_in[address] and new_out == reach_out[address]:
                continue
            reach_in[address] = new_in
            reach_out[address] = new_out
            for succ in self.successors.get(address, ()):
                if succ in self.defuse:
                    worklist.append(succ)
        self.reach_in = reach_in
        self.reach_out = reach_out

    # -- queries ---------------------------------------------------------------

    def definitions_reaching(self, address: int, register: int) -> List[int]:
        """Addresses whose definition of ``register`` may reach ``address``."""
        return sorted(
            def_addr
            for def_addr, reg in self.reach_in.get(address, frozenset())
            if reg == register
        )

    def dead_definitions(
        self,
        reachable: Optional[FrozenSet[int]] = None,
        include_flags: bool = False,
    ) -> List[Definition]:
        """Definitions that never reach any use of their item.

        A classic dead-store diagnostic: the value written at the
        definition site is overwritten (or the run ends) before anything
        reads it. ``reachable`` restricts the scan to reachable code.
        Flag definitions are excluded unless ``include_flags`` is set —
        nearly every ALU instruction writes flags incidentally, so dead
        flag writes are expected rather than diagnostic.
        """
        used: Set[Definition] = set()
        for address, fact in self.defuse.items():
            if reachable is not None and address not in reachable:
                continue
            for item in fact.item_uses:
                for def_addr in self.definitions_reaching(address, item):
                    used.add((def_addr, item))
        dead: List[Definition] = []
        for address, fact in self.defuse.items():
            if reachable is not None and address not in reachable:
                continue
            items = fact.item_defs if include_flags else fact.defs
            for item in items:
                if (address, item) not in used:
                    dead.append((address, item))
        return sorted(dead)

    # -- full chains -----------------------------------------------------------

    def _build_chains(self) -> None:
        def_use: Dict[Definition, Set[int]] = {}
        use_def: Dict[UseSite, Set[int]] = {}
        for address, fact in self.defuse.items():
            for item in fact.item_uses:
                defs = {
                    def_addr
                    for def_addr, it in self.reach_in.get(
                        address, frozenset()
                    )
                    if it == item
                }
                use_def[(address, item)] = defs
                for def_addr in defs:
                    def_use.setdefault((def_addr, item), set()).add(address)
            for item in fact.item_defs:
                def_use.setdefault((address, item), set())
        self._def_use = {
            definition: tuple(sorted(uses))
            for definition, uses in def_use.items()
        }
        self._use_def = {
            use: tuple(sorted(defs)) for use, defs in use_def.items()
        }

    def def_use_chains(self) -> Dict[Definition, Tuple[int, ...]]:
        """Map each definition ``(address, item)`` to its use addresses.

        Definitions that reach no use map to an empty tuple. Flag
        definitions and flag uses are included, so a ``CMP`` chains to
        the branches it controls.
        """
        if self._def_use is None:
            self._build_chains()
        assert self._def_use is not None
        return self._def_use

    def use_def_chains(self) -> Dict[UseSite, Tuple[int, ...]]:
        """Map each use site ``(address, item)`` to its reaching defs."""
        if self._use_def is None:
            self._build_chains()
        assert self._use_def is not None
        return self._use_def
