"""Per-instruction def/use extraction and reaching definitions.

The def/use sets are derived from the operand-semantics table in
:data:`repro.thor.isa.SEMANTICS` via
:func:`repro.thor.effects.register_effects` — the same table the dynamic
trace collector uses, which is what makes the static analysis a sound
over-approximation of the trace-based one by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.thor import isa
from repro.thor.assembler import Program
from repro.thor.effects import register_effects
from repro.thor.isa import Instruction, try_decode


@dataclass(frozen=True)
class InstructionDefUse:
    """Dataflow facts of one instruction at one code address."""

    address: int
    instr: Instruction
    uses: FrozenSet[int]
    defs: FrozenSet[int]
    reads_flags: bool
    writes_flags: bool
    flow: str
    mem: str

    @property
    def opcode_name(self) -> str:
        return self.instr.opcode.name

    @property
    def is_memory_read(self) -> bool:
        return self.mem == isa.MEM_LOAD

    @property
    def is_memory_write(self) -> bool:
        return self.mem == isa.MEM_STORE


def instruction_defuse(address: int, instr: Instruction) -> InstructionDefUse:
    """Def/use facts for one decoded instruction."""
    sem = isa.semantics(instr.opcode)
    effects = register_effects(instr)
    return InstructionDefUse(
        address=address,
        instr=instr,
        uses=effects.reg_reads,
        defs=effects.reg_writes,
        reads_flags=sem.reads_flags,
        writes_flags=sem.writes_flags,
        flow=sem.flow,
        mem=sem.mem,
    )


def program_defuse(program: Program) -> Dict[int, InstructionDefUse]:
    """Def/use facts for every decodable code word of ``program``.

    Words the assembler marked as data, and code words whose opcode field
    is illegal (none are produced by the assembler, but fault-mutated
    images may contain them), are skipped.
    """
    facts: Dict[int, InstructionDefUse] = {}
    for address in program.code_addresses():
        instr = try_decode(program.words[address])
        if instr is None:
            continue
        facts[address] = instruction_defuse(address, instr)
    return facts


# ---------------------------------------------------------------------------
# Reaching definitions (forward dataflow, worklist iteration)
# ---------------------------------------------------------------------------

# A definition is identified by (defining address, register index).
Definition = Tuple[int, int]


class ReachingDefinitions:
    """Which register definitions may reach each program point.

    Forward may-analysis over the instruction-level CFG:

        IN[a]  = union of OUT[p] for p in preds(a)
        OUT[a] = GEN[a] | (IN[a] - KILL[a])

    Used by the campaign lint pass to flag dead stores (definitions that
    never reach a use) and available to future constant-propagation
    passes for bounding indirect load/store addresses.
    """

    def __init__(
        self,
        defuse: Dict[int, InstructionDefUse],
        successors: Dict[int, Tuple[int, ...]],
        entry: int,
    ):
        self.defuse = defuse
        self.successors = successors
        self.entry = entry
        self.reach_in: Dict[int, FrozenSet[Definition]] = {}
        self.reach_out: Dict[int, FrozenSet[Definition]] = {}
        self._solve()

    def _solve(self) -> None:
        addresses = sorted(self.defuse)
        predecessors: Dict[int, List[int]] = {a: [] for a in addresses}
        for address in addresses:
            for succ in self.successors.get(address, ()):
                if succ in predecessors:
                    predecessors[succ].append(address)
        empty: FrozenSet[Definition] = frozenset()
        reach_in = {a: empty for a in addresses}
        reach_out = {a: empty for a in addresses}
        worklist: List[int] = list(addresses)
        while worklist:
            address = worklist.pop()
            fact = self.defuse[address]
            incoming: Set[Definition] = set()
            for pred in predecessors[address]:
                incoming |= reach_out[pred]
            new_in = frozenset(incoming)
            gen = frozenset((address, reg) for reg in fact.defs)
            killed = fact.defs
            new_out = gen | frozenset(
                d for d in new_in if d[1] not in killed
            )
            if new_in == reach_in[address] and new_out == reach_out[address]:
                continue
            reach_in[address] = new_in
            reach_out[address] = new_out
            for succ in self.successors.get(address, ()):
                if succ in self.defuse:
                    worklist.append(succ)
        self.reach_in = reach_in
        self.reach_out = reach_out

    # -- queries ---------------------------------------------------------------

    def definitions_reaching(self, address: int, register: int) -> List[int]:
        """Addresses whose definition of ``register`` may reach ``address``."""
        return sorted(
            def_addr
            for def_addr, reg in self.reach_in.get(address, frozenset())
            if reg == register
        )

    def dead_definitions(
        self, reachable: Optional[FrozenSet[int]] = None
    ) -> List[Definition]:
        """Definitions that never reach any use of their register.

        A classic dead-store diagnostic: the value written at the
        definition site is overwritten (or the run ends) before anything
        reads it. ``reachable`` restricts the scan to reachable code.
        """
        used: Set[Definition] = set()
        for address, fact in self.defuse.items():
            if reachable is not None and address not in reachable:
                continue
            for reg in fact.uses:
                for def_addr in self.definitions_reaching(address, reg):
                    used.add((def_addr, reg))
        dead: List[Definition] = []
        for address, fact in self.defuse.items():
            if reachable is not None and address not in reachable:
                continue
            for reg in fact.defs:
                if (address, reg) not in used:
                    dead.append((address, reg))
        return sorted(dead)
