"""Trace-free pre-injection liveness oracle.

:class:`StaticPreInjectionAnalysis` answers the same question as the
dynamic :class:`repro.core.preinjection.PreInjectionAnalysis` — "is this
fault location live at this time?" — but from the program image alone,
with no golden reference run. The price is precision, never soundness:

* **registers / PSR** — live iff live at *some* reachable program point
  (path-insensitive: without a trace the analysis cannot know which
  instruction executes at a given cycle, so it unions liveness over all
  reachable points). Registers the workload provably never reads are
  pruned at every instant.
* **PC / IR** — always live while the run is in progress (consumed by
  the very next fetch), dead after the reference duration when one is
  known.
* **memory, code image** — a code word is live iff its address is
  reachable in the CFG: the fetch of a reachable instruction *reads* the
  word, an unreachable word can never propagate. Analysis assumption
  (documented in DESIGN.md): loads do not read the code image
  (no self-inspecting code).
* **memory, data image** — live whenever any reachable instruction reads
  memory; load/store addresses are register-relative and therefore
  statically unbounded, so per-word pruning would be unsound.
* **anything else** (cache arrays, MAR/MDR, ...) — conservatively live,
  mirroring the dynamic analysis.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence

from repro.core.locations import FaultLocation
from repro.thor.assembler import Program
from repro.staticanalysis.cfg import ControlFlowGraph, build_cfg
from repro.staticanalysis.defuse import ReachingDefinitions
from repro.staticanalysis.liveness import LivenessResult, compute_liveness
from repro.util.sampling import iter_pairs, pair_count

_REG_RE = re.compile(r"cpu\.regfile\.r(\d+)$")
_MEM_RE = re.compile(r"word\.0x([0-9a-fA-F]+)$")


class StaticPreInjectionAnalysis:
    """Liveness oracle computed from the program image (no trace).

    Exposes the same interface as the dynamic analysis —
    ``is_live(location, time)`` and ``live_fraction(locations, times)``
    — so the two are interchangeable building blocks for the campaign
    algorithms (and composable: the ``hybrid`` mode intersects them).
    """

    def __init__(self, program: Program, duration: Optional[int] = None):
        self.program = program
        #: Reference duration in cycles when known (set after a reference
        #: run); None means "unbounded" and every in-run query is
        #: answered as if the run were still in progress.
        self.duration = duration
        self.cfg: ControlFlowGraph = build_cfg(program)
        self.liveness: LivenessResult = compute_liveness(self.cfg)
        self._live_registers = self.liveness.ever_live_registers
        self._flags_live = self.liveness.flags_ever_live
        self._memory_may_be_read = any(
            self.cfg.defuse[address].is_memory_read
            for address in self.cfg.reachable
        )

    # -- construction helpers ------------------------------------------------

    def reaching_definitions(self) -> ReachingDefinitions:
        """Reaching-definitions solution over the same CFG (lazy; used by
        the lint pass for dead-store diagnostics)."""
        return ReachingDefinitions(
            self.cfg.defuse, self.cfg.successors, self.cfg.entry
        )

    # -- summaries ------------------------------------------------------------

    @property
    def live_registers(self) -> frozenset:
        return self._live_registers

    @property
    def dead_registers(self) -> frozenset:
        return self.liveness.dead_registers()

    def unreachable_code_addresses(self) -> List[int]:
        return self.cfg.unreachable_addresses()

    # -- the oracle interface --------------------------------------------------

    def _in_run(self, time: int) -> bool:
        return self.duration is None or time <= self.duration

    def is_live(self, location: FaultLocation, time: int) -> bool:
        """Sound over-approximation of the dynamic ``is_live``."""
        path = location.path
        reg_match = _REG_RE.search(path)
        if reg_match is not None:
            return (
                int(reg_match.group(1)) in self._live_registers
                and self._in_run(time)
            )
        if path.endswith("cpu.psr"):
            return self._flags_live and self._in_run(time)
        if path.endswith("cpu.pc") or path.endswith("pipeline.ir"):
            return self._in_run(time)
        mem_match = _MEM_RE.search(path)
        if mem_match is not None:
            address = int(mem_match.group(1), 16)
            if location.space.endswith("code") and address in self.cfg.defuse:
                # Fetching a reachable instruction reads the word.
                return address in self.cfg.reachable and self._in_run(time)
            return self._memory_may_be_read and self._in_run(time)
        # Unknown state element: be conservative, never prune.
        return True

    def live_fraction(
        self,
        locations: Sequence[FaultLocation],
        times: Sequence[int],
        max_samples: Optional[int] = None,
    ) -> float:
        """Fraction of (location, time) samples that are statically live."""
        total = pair_count(locations, times, max_samples)
        if total == 0:
            return 0.0
        live = sum(
            1
            for location, t in iter_pairs(locations, times, max_samples)
            if self.is_live(location, t)
        )
        return live / total
