"""Dominator tree and natural-loop detection on the block-level CFG.

Implements the Cooper–Harvey–Kennedy iterative dominator algorithm over
the reachable basic blocks of a :class:`repro.staticanalysis.cfg.
ControlFlowGraph`, plus back-edge/natural-loop discovery on top of it.

The equivalence engine (:mod:`repro.staticanalysis.equivalence`) uses
dominance as its fast path when certifying def-use regions: when the
definition's block dominates the use's block and the region is a single
straight-line block, every path from def to use is the textual
instruction sequence between them, so scanning that sequence for
observation points is exact. Loop headers identify definitions whose
def-use region re-executes — those collapse per *trace window*, never
across iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.staticanalysis.cfg import ControlFlowGraph


@dataclass(frozen=True)
class NaturalLoop:
    """One natural loop: a header block and the blocks of its body.

    ``back_edges`` are the (tail block, header block) CFG edges whose
    tail is dominated by the header. ``body`` contains block start
    addresses, header included.
    """

    header: int
    back_edges: Tuple[Tuple[int, int], ...]
    body: FrozenSet[int]

    def contains_block(self, start: int) -> bool:
        return start in self.body


@dataclass
class DominatorTree:
    """Immediate-dominator relation over the reachable blocks.

    ``idom`` maps each reachable block start to its immediate dominator
    (the entry block maps to itself). Blocks unreachable from the entry
    are absent — dominance is undefined for them.
    """

    cfg: ControlFlowGraph
    entry_block: int
    idom: Dict[int, int]
    # Reverse-postorder index of each reachable block (entry first).
    rpo_index: Dict[int, int]
    children: Dict[int, List[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.children:
            for block, parent in self.idom.items():
                if block != parent:
                    self.children.setdefault(parent, []).append(block)
            for kids in self.children.values():
                kids.sort()

    # -- queries ---------------------------------------------------------------

    def dominates(self, a: int, b: int) -> bool:
        """True when block ``a`` dominates block ``b`` (reflexive)."""
        if a not in self.idom or b not in self.idom:
            return False
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom[node]
            if parent == node:
                return False
            node = parent

    def dominators_of(self, block: int) -> List[int]:
        """All dominators of ``block``, entry first."""
        if block not in self.idom:
            return []
        chain: List[int] = []
        node = block
        while True:
            chain.append(node)
            parent = self.idom[node]
            if parent == node:
                break
            node = parent
        return list(reversed(chain))

    def depth(self, block: int) -> int:
        """Distance from the entry block in the dominator tree."""
        return len(self.dominators_of(block)) - 1


def _reachable_block_graph(
    cfg: ControlFlowGraph,
) -> Tuple[Dict[int, Tuple[int, ...]], List[int], Optional[int]]:
    """(successors, reachable block starts, entry block start)."""
    entry_block = cfg.entry if cfg.entry in cfg.blocks else None
    reachable = {
        start for start, block in cfg.blocks.items() if block.reachable
    }
    if entry_block is None or entry_block not in reachable:
        return {}, [], None
    successors = {
        start: tuple(
            s for s in cfg.blocks[start].successors if s in reachable
        )
        for start in reachable
    }
    return successors, sorted(reachable), entry_block


def _reverse_postorder(
    successors: Dict[int, Tuple[int, ...]], entry: int
) -> List[int]:
    order: List[int] = []
    visited: Set[int] = set()
    # Iterative post-order DFS (explicit stack keeps deep CFGs safe).
    stack: List[Tuple[int, int]] = [(entry, 0)]
    visited.add(entry)
    while stack:
        node, child_index = stack.pop()
        succ = successors.get(node, ())
        if child_index < len(succ):
            stack.append((node, child_index + 1))
            child = succ[child_index]
            if child not in visited:
                visited.add(child)
                stack.append((child, 0))
        else:
            order.append(node)
    order.reverse()
    return order


def build_dominator_tree(cfg: ControlFlowGraph) -> Optional[DominatorTree]:
    """Dominator tree of the reachable block graph of ``cfg``.

    Returns ``None`` when the program has no reachable entry block
    (e.g. an image whose entry points at a data word).
    """
    successors, _, entry = _reachable_block_graph(cfg)
    if entry is None:
        return None
    rpo = _reverse_postorder(successors, entry)
    rpo_index = {block: i for i, block in enumerate(rpo)}
    predecessors: Dict[int, List[int]] = {b: [] for b in rpo}
    for block in rpo:
        for succ in successors.get(block, ()):
            if succ in predecessors:
                predecessors[succ].append(block)

    idom: Dict[int, int] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block == entry:
                continue
            candidates = [p for p in predecessors[block] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(block) != new_idom:
                idom[block] = new_idom
                changed = True

    return DominatorTree(
        cfg=cfg, entry_block=entry, idom=idom, rpo_index=rpo_index
    )


def natural_loops(tree: DominatorTree) -> List[NaturalLoop]:
    """Natural loops of the CFG underlying ``tree``.

    One loop per header, merging the bodies of all back edges that share
    the header (standard for reducible graphs; irreducible regions,
    which Thor's structured assembler output does not produce, simply
    yield no back edge and therefore no loop).
    """
    cfg = tree.cfg
    successors, reachable, entry = _reachable_block_graph(cfg)
    if entry is None:
        return []
    by_header: Dict[int, List[Tuple[int, int]]] = {}
    for block in reachable:
        for succ in successors.get(block, ()):
            if tree.dominates(succ, block):
                by_header.setdefault(succ, []).append((block, succ))

    predecessors: Dict[int, List[int]] = {b: [] for b in reachable}
    for block in reachable:
        for succ in successors.get(block, ()):
            predecessors[succ].append(block)

    loops: List[NaturalLoop] = []
    for header in sorted(by_header):
        body: Set[int] = {header}
        worklist = [tail for tail, _ in by_header[header]]
        while worklist:
            node = worklist.pop()
            if node in body:
                continue
            body.add(node)
            worklist.extend(predecessors.get(node, []))
        loops.append(
            NaturalLoop(
                header=header,
                back_edges=tuple(sorted(by_header[header])),
                body=frozenset(body),
            )
        )
    return loops


def loop_blocks(loops: List[NaturalLoop]) -> FrozenSet[int]:
    """Union of all loop bodies — blocks that may re-execute."""
    blocks: Set[int] = set()
    for loop in loops:
        blocks |= loop.body
    return frozenset(blocks)
