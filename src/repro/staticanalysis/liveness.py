"""Backward register + flag liveness over the instruction-level CFG.

Classic backward may-analysis, solved by worklist iteration:

    OUT[a] = union of IN[s] for s in succ(a)
    IN[a]  = USE[a] | (OUT[a] - DEF[a])

Dataflow items are the 16 general-purpose registers (their index) plus
the PSR flags, represented by the pseudo-item :data:`FLAGS`.

The analysis is *path-insensitive and trace-free*: a register is live at
a program point if **some** CFG path from that point reads it before
writing it. This over-approximates the trace-based liveness of
:mod:`repro.core.preinjection` — any register the reference run actually
reads is read by a reachable instruction, hence statically live at that
instruction (and along every path into it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.thor import isa
from repro.staticanalysis.cfg import ControlFlowGraph

# The PSR pseudo-item (re-exported): repro.staticanalysis.defuse owns
# the dataflow item space shared by liveness and reaching definitions.
from repro.staticanalysis.defuse import FLAGS

__all__ = ["FLAGS", "LivenessResult", "compute_liveness"]


@dataclass
class LivenessResult:
    """Per-instruction live-in/live-out sets plus whole-program summaries."""

    cfg: ControlFlowGraph
    live_in: Dict[int, FrozenSet[int]]
    live_out: Dict[int, FrozenSet[int]]

    # -- summaries -------------------------------------------------------------

    @property
    def ever_live_registers(self) -> FrozenSet[int]:
        """Registers live at some reachable program point.

        The complement (:meth:`dead_registers`) is provably dead: no
        fault-free execution can read it, so injecting there is wasted
        work — the trace-free analogue of the paper's Section 4 claim.
        """
        live: Set[int] = set()
        for address in self.cfg.reachable:
            live |= self.live_in[address]
        live.discard(FLAGS)
        return frozenset(live)

    @property
    def flags_ever_live(self) -> bool:
        return any(
            FLAGS in self.live_in[address] for address in self.cfg.reachable
        )

    def dead_registers(self) -> FrozenSet[int]:
        return frozenset(range(isa.NUM_REGISTERS)) - self.ever_live_registers

    def live_at(self, address: int) -> FrozenSet[int]:
        """Live-in set at ``address`` (empty for non-code addresses)."""
        return self.live_in.get(address, frozenset())


def compute_liveness(cfg: ControlFlowGraph) -> LivenessResult:
    """Solve backward liveness over ``cfg`` to a fixpoint."""
    addresses = sorted(cfg.defuse)
    empty: FrozenSet[int] = frozenset()
    live_in: Dict[int, FrozenSet[int]] = {a: empty for a in addresses}
    live_out: Dict[int, FrozenSet[int]] = {a: empty for a in addresses}

    predecessors: Dict[int, List[int]] = {a: [] for a in addresses}
    for address in addresses:
        for succ in cfg.successors.get(address, ()):
            if succ in predecessors:
                predecessors[succ].append(address)

    use: Dict[int, FrozenSet[int]] = {}
    define: Dict[int, FrozenSet[int]] = {}
    for address in addresses:
        fact = cfg.defuse[address]
        uses: Set[int] = set(fact.uses)
        defs: Set[int] = set(fact.defs)
        if fact.reads_flags:
            uses.add(FLAGS)
        if fact.writes_flags:
            defs.add(FLAGS)
        use[address] = frozenset(uses)
        define[address] = frozenset(defs)

    # Backward worklist: seed with every instruction, iterate until the
    # transfer functions stabilise. Processing in reverse address order
    # first converges quickly for mostly-forward control flow.
    worklist: List[int] = list(addresses)
    in_worklist: Set[int] = set(addresses)
    while worklist:
        address = worklist.pop()
        in_worklist.discard(address)
        out: Set[int] = set()
        for succ in cfg.successors.get(address, ()):
            out |= live_in.get(succ, empty)
        new_out = frozenset(out)
        new_in = use[address] | (new_out - define[address])
        if new_out == live_out[address] and new_in == live_in[address]:
            continue
        live_out[address] = new_out
        live_in[address] = new_in
        for pred in predecessors[address]:
            if pred not in in_worklist:
                in_worklist.add(pred)
                worklist.append(pred)

    return LivenessResult(cfg=cfg, live_in=live_in, live_out=live_out)
