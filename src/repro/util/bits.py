"""Bit-level helpers used by scan chains, caches and fault models.

All values are non-negative Python integers interpreted as fixed-width
bit-vectors, LSB = bit 0.
"""

from __future__ import annotations

from typing import List


def bit_get(value: int, bit: int) -> int:
    """Return bit ``bit`` (0 or 1) of ``value``."""
    if bit < 0:
        raise ValueError(f"bit index must be non-negative, got {bit}")
    return (value >> bit) & 1


def bit_set(value: int, bit: int, bit_value: int) -> int:
    """Return ``value`` with bit ``bit`` forced to ``bit_value``."""
    if bit < 0:
        raise ValueError(f"bit index must be non-negative, got {bit}")
    if bit_value not in (0, 1):
        raise ValueError(f"bit value must be 0 or 1, got {bit_value}")
    mask = 1 << bit
    if bit_value:
        return value | mask
    return value & ~mask


def bit_flip(value: int, bit: int) -> int:
    """Return ``value`` with bit ``bit`` inverted (the transient bit-flip)."""
    if bit < 0:
        raise ValueError(f"bit index must be non-negative, got {bit}")
    return value ^ (1 << bit)


def int_to_bits(value: int, width: int) -> List[int]:
    """Expand ``value`` into ``width`` bits, LSB first."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >> width:
        raise ValueError(f"value {value:#x} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: List[int]) -> int:
    """Pack a LSB-first bit list back into an integer."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {i} must be 0 or 1, got {bit}")
        value |= bit << i
    return value


def popcount(value: int) -> int:
    """Number of set bits in ``value``."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return bin(value).count("1")


#: Parity of every byte value — the cache model computes one parity bit
#: per stored word on every fill and every hit, so this is one of the
#: hottest scalar helpers in the simulator. (``int.bit_count`` would be
#: the obvious tool but the support floor is Python 3.9.)
_BYTE_PARITY = bytes(bin(b).count("1") & 1 for b in range(256))


def parity(value: int) -> int:
    """Even-parity bit of ``value`` (1 if the popcount is odd).

    This matches the convention used by the THOR-lite cache arrays: the
    stored parity bit makes the total popcount of (word, parity) even, so a
    single bit flip anywhere in the pair is detectable.
    """
    if 0 <= value <= 0xFFFFFFFF:
        # Fold the (at most) four bytes of a word — XOR preserves parity.
        table = _BYTE_PARITY
        return (
            table[value & 0xFF]
            ^ table[(value >> 8) & 0xFF]
            ^ table[(value >> 16) & 0xFF]
            ^ table[value >> 24]
        )
    return popcount(value) & 1


def mask(width: int) -> int:
    """All-ones mask of ``width`` bits."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int = 32) -> int:
    """Wrap a (possibly negative) integer into ``width`` unsigned bits."""
    return value & mask(width)


def to_signed(value: int, width: int = 32) -> int:
    """Inverse of :func:`to_unsigned`."""
    return sign_extend(value, width)
