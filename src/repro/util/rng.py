"""Deterministic random source for fault-injection campaigns.

Reproducibility is a first-class requirement: a campaign stores its seed in
``CampaignData`` so any experiment can be re-run bit-for-bit (the
``parentExperiment`` mechanism of the paper's database schema relies on
this). ``CampaignRandom`` is a thin wrapper over :class:`random.Random`
that adds campaign-specific sampling helpers and per-experiment substreams.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple, TypeVar

T = TypeVar("T")


class CampaignRandom:
    """Seeded random source with independent per-experiment substreams."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._root = random.Random(self.seed)

    def substream(self, experiment_index: int) -> random.Random:
        """Return an independent generator for one experiment.

        Substreams are derived from (seed, index) so experiment *i* draws
        the same faults regardless of whether experiments before it were
        re-run, skipped or parallelised.
        """
        return random.Random(f"{self.seed}:{experiment_index}")

    def choice(self, seq: Sequence[T]) -> T:
        return self._root.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._root.sample(seq, k)

    def randint(self, lo: int, hi: int) -> int:
        return self._root.randint(lo, hi)

    def random(self) -> float:
        return self._root.random()

    @staticmethod
    def pick_injection(
        rng: random.Random,
        n_locations: int,
        max_time: int,
        multiplicity: int = 1,
    ) -> Tuple[int, List[int]]:
        """Sample one injection: a time and ``multiplicity`` locations.

        Returns ``(time, [location_index, ...])`` where ``time`` is uniform
        over ``[1, max_time]`` and locations are drawn without replacement.
        """
        if n_locations <= 0:
            raise ValueError("n_locations must be positive")
        if max_time <= 0:
            raise ValueError("max_time must be positive")
        k = min(multiplicity, n_locations)
        time = rng.randint(1, max_time)
        locations = rng.sample(range(n_locations), k)
        return time, locations
