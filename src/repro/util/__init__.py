"""Shared utilities: bit manipulation, deterministic RNG, error types."""

from repro.util.bits import (
    bit_get,
    bit_set,
    bit_flip,
    bits_to_int,
    int_to_bits,
    parity,
    popcount,
)
from repro.util.errors import (
    ReproError,
    ConfigurationError,
    TargetError,
    DatabaseError,
    CampaignError,
)
from repro.util.rng import CampaignRandom

__all__ = [
    "bit_get",
    "bit_set",
    "bit_flip",
    "bits_to_int",
    "int_to_bits",
    "parity",
    "popcount",
    "ReproError",
    "ConfigurationError",
    "TargetError",
    "DatabaseError",
    "CampaignError",
    "CampaignRandom",
]
