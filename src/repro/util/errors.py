"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A target-system or campaign configuration is invalid or incomplete."""


class TargetError(ReproError):
    """The target system (simulated test card / CPU) rejected an operation."""


class AssemblerError(ReproError):
    """Workload assembly failed (syntax error, unknown label, range)."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class DatabaseError(ReproError):
    """The campaign database rejected an operation."""


class CampaignError(ReproError):
    """A fault-injection campaign could not be configured or run."""


class ServiceError(ReproError):
    """The campaign fabric (``goofi serve`` / its client) rejected an
    operation: malformed job spec, quota exhaustion, unknown job id, or
    an illegal lifecycle transition."""


class NotImplementedByPort(TargetError):
    """A Framework abstract method was not implemented by the port.

    Corresponds to the "Write your code here!" stubs of Figure 3: using a
    port that has not filled in a building block required by the chosen
    fault-injection algorithm raises this error.
    """

    def __init__(self, port_name: str, method_name: str):
        self.port_name = port_name
        self.method_name = method_name
        super().__init__(
            f"target interface {port_name!r} does not implement "
            f"{method_name}(); fill in the Framework template method"
        )
