"""Deterministic sampling over large cartesian products.

The pre-injection liveness oracles report diagnostics over the full
(location, time) fault space, which is O(|locations| * |times|) — far too
large to enumerate for big campaigns. These helpers cap the enumeration
at a deterministic pseudo-random sample so diagnostics stay fast while
remaining reproducible run to run.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Sequence, Tuple, TypeVar

A = TypeVar("A")
B = TypeVar("B")

_SAMPLE_SEED = 0x600F1


def pair_count(
    left: Sequence[A], right: Sequence[B], max_samples: Optional[int] = None
) -> int:
    """Number of pairs :func:`iter_pairs` will yield."""
    total = len(left) * len(right)
    if max_samples is None:
        return total
    return min(total, max_samples)


def iter_pairs(
    left: Sequence[A],
    right: Sequence[B],
    max_samples: Optional[int] = None,
) -> Iterator[Tuple[A, B]]:
    """Iterate the cartesian product ``left x right``.

    When ``max_samples`` is given and the product is larger, yields a
    deterministic uniform sample of exactly ``max_samples`` distinct
    pairs instead (seeded by the product size, so the same inputs always
    produce the same sample).
    """
    total = len(left) * len(right)
    if total == 0:
        return
    if max_samples is not None and max_samples <= 0:
        raise ValueError(f"max_samples must be positive, got {max_samples}")
    if max_samples is None or total <= max_samples:
        for a in left:
            for b in right:
                yield a, b
        return
    rng = random.Random(_SAMPLE_SEED ^ total)
    width = len(right)
    for index in sorted(rng.sample(range(total), max_samples)):
        yield left[index // width], right[index % width]
