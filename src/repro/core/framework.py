"""The Framework template and the target/technique registries (Figures 1, 3).

:class:`Framework` is the template a programmer copies when adapting GOOFI
to a new target system: it subclasses
:class:`~repro.core.algorithms.FaultInjectionAlgorithms` and stubs *every*
abstract building block with a "Write your code here!" implementation that
raises :class:`~repro.util.errors.NotImplementedByPort`. A port only fills
in the blocks the fault-injection algorithms it wants to support actually
use — exactly the paper's contract.

The module also keeps the registry that the GUI's target-system menu is
built from, and utilities to check which techniques a port supports and to
generate a fresh port skeleton (the Figure 3 source template).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.core.algorithms import FaultInjectionAlgorithms
from repro.core.campaign import CampaignData
from repro.util.errors import (
    CampaignError,
    ConfigurationError,
    NotImplementedByPort,
)

# Building blocks shared by every fault-injection algorithm.
COMMON_BLOCKS = (
    "init_test_card",
    "load_workload",
    "write_memory",
    "read_memory",
    "run_workload",
    "wait_for_termination",
    "location_space",
    "capture_state_vector",
    "start_trace",
    "stop_trace",
    "set_detail_logging",
    "drain_detail_states",
    "describe_target",
)

# Technique-specific blocks (Section 2.1: "Many of the abstract methods
# used by one fault injection technique are reusable when defining the
# algorithm for another ... Other abstract methods need to be implemented
# specifically for each new fault injection technique").
TECHNIQUE_BLOCKS: Dict[str, tuple] = {
    "scifi": (
        "wait_for_breakpoint",
        "read_scan_chain",
        "inject_fault",
        "write_scan_chain",
    ),
    "swifi-pre": ("inject_fault_preruntime",),
    "swifi-runtime": ("instrument_workload", "collect_runtime_injections"),
    "simfi": ("wait_for_breakpoint", "inject_fault_direct"),
    "pinlevel": ("wait_for_breakpoint", "force_pins"),
}

# Optional acceleration blocks: golden-run checkpoint capture/restore
# (warm-start experiment execution). Deliberately *not* part of any
# technique's required set — a port that leaves them as stubs simply
# keeps the cold start-from-reset path, and ``supports_technique`` is
# unaffected.
CHECKPOINT_BLOCKS = ("capture_checkpoint", "restore_checkpoint")


def _stub(name: str) -> Callable:
    def method(self, *args, **kwargs):
        # Write your code here!   (Figure 3)
        raise NotImplementedByPort(type(self).__name__, name)

    method.__name__ = name
    method.__doc__ = f"Template stub for {name}(). Write your code here!"
    method._is_framework_stub = True
    return method


class Framework(FaultInjectionAlgorithms):
    """``public class <FrameWork> extends FaultInjectionAlgorithms`` —
    every building block stubbed, ready to be filled in by a port."""


# Install the stubs programmatically so the block lists above are the
# single source of truth; this also clears the ABC abstract-method set so
# a port can be instantiated before all blocks are filled in (unused
# blocks raise NotImplementedByPort only when an algorithm calls them).
_ALL_BLOCKS = tuple(
    dict.fromkeys(
        COMMON_BLOCKS
        + tuple(b for blocks in TECHNIQUE_BLOCKS.values() for b in blocks)
        + CHECKPOINT_BLOCKS
    )
)
for _name in _ALL_BLOCKS:
    setattr(Framework, _name, _stub(_name))
Framework.__abstractmethods__ = frozenset()


def implemented_blocks(port_class: Type[Framework]) -> List[str]:
    """Blocks the port actually filled in (overrode the stub)."""
    implemented = []
    for name in _ALL_BLOCKS:
        method = getattr(port_class, name, None)
        if method is not None and not getattr(method, "_is_framework_stub", False):
            implemented.append(name)
    return implemented


def required_blocks(technique: str) -> List[str]:
    if technique not in TECHNIQUE_BLOCKS:
        raise ConfigurationError(f"unknown technique {technique!r}")
    return list(COMMON_BLOCKS) + list(TECHNIQUE_BLOCKS[technique])


def supports_technique(port_class: Type[Framework], technique: str) -> bool:
    have = set(implemented_blocks(port_class))
    return all(block in have for block in required_blocks(technique))


def supported_techniques(port_class: Type[Framework]) -> List[str]:
    return [
        technique
        for technique in TECHNIQUE_BLOCKS
        if supports_technique(port_class, technique)
    ]


def missing_blocks(port_class: Type[Framework], technique: str) -> List[str]:
    have = set(implemented_blocks(port_class))
    return [b for b in required_blocks(technique) if b not in have]


# ---------------------------------------------------------------------------
# Set-up phase helper (Figure 5: create campaign data, then validate it)
# ---------------------------------------------------------------------------

def setup_campaign(
    port: FaultInjectionAlgorithms,
    campaign: CampaignData,
    strict: bool = True,
    reference_duration: Optional[int] = None,
):
    """Bind ``campaign`` to ``port`` and lint it before anything runs.

    Performs the set-up phase's validation step: ``read_campaign_data``
    followed by the static lint pass of
    :mod:`repro.staticanalysis.lint`. Returns the list of findings; with
    ``strict`` (the default), error-severity findings raise
    :class:`CampaignError` so a broken campaign never reaches the
    fault-injection phase and burns its experiment budget.
    """
    from repro.staticanalysis.lint import lint_errors

    port.read_campaign_data(campaign)
    findings = port.lint_campaign(reference_duration=reference_duration)
    errors = lint_errors(findings)
    if strict and errors:
        summary = "; ".join(str(f) for f in errors[:3])
        suffix = "; ..." if len(errors) > 3 else ""
        raise CampaignError(
            f"campaign {campaign.campaign_name!r} failed set-up lint with "
            f"{len(errors)} error(s): {summary}{suffix}"
        )
    return findings


# ---------------------------------------------------------------------------
# Target-system registry (feeds the GUI's target menu)
# ---------------------------------------------------------------------------

_TARGETS: Dict[str, Type[Framework]] = {}


def register_target(name: str):
    """Class decorator: make a TargetSystemInterface selectable by name."""

    def decorator(cls: Type[Framework]) -> Type[Framework]:
        if not issubclass(cls, FaultInjectionAlgorithms):
            raise ConfigurationError(
                f"{cls.__name__} must extend FaultInjectionAlgorithms"
            )
        if name in _TARGETS:
            raise ConfigurationError(f"target {name!r} already registered")
        _TARGETS[name] = cls
        cls.target_name = name
        return cls

    return decorator


def unregister_target(name: str) -> None:
    _TARGETS.pop(name, None)


def available_targets() -> List[str]:
    _ensure_builtin_targets()
    return sorted(_TARGETS)


def create_target(name: str, **kwargs) -> Framework:
    _ensure_builtin_targets()
    cls = _TARGETS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown target {name!r}; available: {sorted(_TARGETS)}"
        )
    return cls(**kwargs)


def available_techniques() -> List[str]:
    return list(TECHNIQUE_BLOCKS)


def _ensure_builtin_targets() -> None:
    """Import the bundled target interfaces on first use (they
    self-register); keeps repro.core import-light."""
    if "thor-rd" not in _TARGETS:
        import repro.scifi.interface  # noqa: F401
    if "thor-rd-sim" not in _TARGETS:
        import repro.simfi.interface  # noqa: F401
    if "tsm-1" not in _TARGETS:
        import repro.tsm.interface  # noqa: F401


# ---------------------------------------------------------------------------
# Worker factory (parallel campaign execution)
# ---------------------------------------------------------------------------

class TargetFactory:
    """Picklable recipe for constructing a target interface by registry
    name — what the parallel campaign runner ships to worker processes so
    each worker can build its *own* isolated Framework/simulator instance
    (ports themselves hold live simulator state and are not picklable).

    Works under both ``fork`` and ``spawn`` start methods: the factory
    carries only the registry name and constructor kwargs, and target
    registration happens lazily inside :func:`create_target` when the
    worker first calls the factory."""

    def __init__(self, target_name: str, **kwargs):
        self.target_name = target_name
        self.kwargs = dict(kwargs)

    def __call__(self) -> Framework:
        return create_target(self.target_name, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = "".join(f", {k}={v!r}" for k, v in sorted(self.kwargs.items()))
        return f"TargetFactory({self.target_name!r}{extra})"


def worker_factory(target_name: str, **kwargs) -> TargetFactory:
    """A picklable zero-argument callable building a fresh port for
    ``target_name`` — the ``factory`` argument of
    :class:`repro.core.parallel.ParallelCampaignController` and
    :func:`repro.core.parallel.run_parallel_campaign`."""
    if target_name not in available_targets():
        raise ConfigurationError(
            f"unknown target {target_name!r}; available: {available_targets()}"
        )
    return TargetFactory(target_name, **kwargs)


# ---------------------------------------------------------------------------
# Port skeleton generation (the Figure 3 artefact)
# ---------------------------------------------------------------------------

def generate_port_skeleton(class_name: str, techniques: List[str]) -> str:
    """Source text of a new TargetSystemInterface skeleton implementing
    the blocks needed for ``techniques`` — what a programmer starts from
    when adapting GOOFI to a new target system."""
    blocks: List[str] = list(COMMON_BLOCKS)
    for technique in techniques:
        for block in TECHNIQUE_BLOCKS.get(technique, ()):
            if block not in blocks:
                blocks.append(block)
    lines = [
        "from repro.core.framework import Framework, register_target",
        "",
        "",
        f'@register_target("{class_name.lower()}")',
        f"class {class_name}(Framework):",
        f'    """Target system interface for {class_name}."""',
        "",
    ]
    for block in blocks:
        lines.append(f"    def {block}(self, *args, **kwargs):")
        lines.append("        # Write your code here!")
        lines.append("        raise NotImplementedError")
        lines.append("")
    return "\n".join(lines)
