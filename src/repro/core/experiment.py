"""Experiment records: what one fault-injection experiment produced.

These objects are what gets serialized into the ``LoggedSystemState``
database table — the "experimentData" attribute (where and when faults
were injected) and the "stateVector" attribute (the logged system state),
in the paper's terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.locations import FaultLocation


@dataclass(frozen=True)
class Injection:
    """One bit actually manipulated in the target."""

    time: int
    location: FaultLocation
    op: str
    bit_before: int
    bit_after: int

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "location": self.location.key(),
            "op": self.op,
            "bit_before": self.bit_before,
            "bit_after": self.bit_after,
        }

    @staticmethod
    def from_dict(data: dict) -> "Injection":
        return Injection(
            time=data["time"],
            location=FaultLocation.parse(data["location"]),
            op=data["op"],
            bit_before=data["bit_before"],
            bit_after=data["bit_after"],
        )


@dataclass
class Termination:
    """Why the experiment ended (the paper's termination conditions)."""

    kind: str  # "halt" | "trap" | "timeout" | "max_iterations"
    pc: int = 0
    cycle: int = 0
    iterations: int = 0
    trap_name: str = ""
    trap_detail: str = ""
    trap_code: int = 0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pc": self.pc,
            "cycle": self.cycle,
            "iterations": self.iterations,
            "trap_name": self.trap_name,
            "trap_detail": self.trap_detail,
            "trap_code": self.trap_code,
        }

    @staticmethod
    def from_dict(data: dict) -> "Termination":
        return Termination(**data)


# A state vector maps an observed location ("scan:internal/cpu.regfile.r3"
# or "memory/0x0123") to its value at logging time.
StateVector = Dict[str, int]


@dataclass
class ReferenceRun:
    """Result of the fault-free reference execution."""

    duration_cycles: int
    duration_instructions: int
    termination: Termination
    state_vector: StateVector
    outputs: Dict[str, int]
    trace: Optional[object] = None  # core.trace.Trace when collected
    detail_states: List[StateVector] = field(default_factory=list)


@dataclass
class ExperimentResult:
    """One fault-injection experiment, ready for logging and analysis."""

    name: str
    index: int
    campaign_name: str
    parent_experiment: Optional[str] = None
    injections: List[Injection] = field(default_factory=list)
    termination: Optional[Termination] = None
    state_vector: StateVector = field(default_factory=dict)
    outputs: Dict[str, int] = field(default_factory=dict)
    detail_states: List[StateVector] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Name of the executed representative this outcome was statically
    #: derived from (equivalence collapsing); None for executed results.
    #: Deliberately NOT part of experiment_data(): derived rows must stay
    #: byte-identical to what executing the member would have logged.
    derived_from: Optional[str] = None

    def experiment_data(self) -> dict:
        """The "experimentData" payload of the LoggedSystemState row."""
        return {
            "index": self.index,
            "injections": [inj.to_dict() for inj in self.injections],
            "termination": (
                self.termination.to_dict() if self.termination else None
            ),
            "outputs": self.outputs,
            "wall_seconds": self.wall_seconds,
        }
