"""Parallel campaign execution: shard experiments over worker processes.

The paper's fault-injection phase (Figure 7) is a serial loop of thousands
of experiments. With a simulated target the campaign is embarrassingly
parallel: every experiment reinitialises the target
(``init_test_card``) and draws its fault from an index-keyed RNG
substream, so experiment *i* produces the same result no matter which
process runs it or in which order. This module exploits that:

* each worker process builds its **own** Framework/simulator instance from
  a picklable factory (:func:`repro.core.framework.worker_factory`) and
  performs its own reference run — nothing mutable is shared;
* experiments are dispatched **by index** in shards; workers execute them
  through the reentrant
  :meth:`~repro.core.algorithms.FaultInjectionAlgorithms.run_single_experiment`
  building block, so parallel results are bit-identical to a serial run
  (asserted by a property test and canonicalised by
  :func:`canonical_experiment_rows`);
* a per-experiment **watchdog** with bounded retry handles hung or crashed
  workers; an experiment that exhausts its retries is logged with a
  ``worker-failure`` termination — never silently dropped;
* results stream back to the parent, which reorders them into index order
  and preserves the Figure-7 semantics: ordered progress snapshots,
  pause/resume/end, and resume-from-sink via ``completed_indices``;
* the parent lands results in the sink through the batched path
  (:meth:`repro.db.database.GoofiDatabase.log_experiments` — one
  ``executemany`` + one commit per batch, WAL mode for file databases).

Determinism contract: given the same campaign (name, seed, workload,
locations, fault model, trigger) and a deterministic port, the *set* of
logged experiment rows is byte-identical between serial and parallel runs
once the single nondeterministic field — per-experiment wall-clock time —
is canonicalised. The parent verifies each worker's reference-run
fingerprint against its own and refuses to proceed on mismatch.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as _mpc
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.algorithms import (
    FaultInjectionAlgorithms,
    StopCampaign,
    _ListSink,
    _NullControl,
)
from repro.core.campaign import CampaignData
from repro.core.controller import CampaignController
from repro.core.divergence import OutcomeMemo
from repro.core.experiment import ExperimentResult, Termination
from repro.observability import (
    Observability,
    ObservabilityConfig,
    configure_worker,
    current_config,
    get_observability,
)
from repro.observability.health import (
    NULL_HEALTH,
    CampaignHealthMonitor,
    set_health,
)
from repro.util.errors import CampaignError

__all__ = [
    "LocalWorkerHandle",
    "ParallelConfig",
    "ParallelCampaignController",
    "WorkerHandle",
    "run_parallel_campaign",
    "canonical_experiment_rows",
]

#: Poll interval of the parent event loop (also the pause/stop latency).
_POLL_SECONDS = 0.05


@dataclass
class ParallelConfig:
    """Tuning knobs of the parallel campaign runner."""

    #: Worker processes to fan experiments out over.
    n_workers: int = max(1, os.cpu_count() or 1)
    #: Experiment indices dispatched to a worker per task message.
    shard_size: int = 8
    #: Watchdog: seconds a worker may spend on one experiment before it is
    #: presumed hung and killed. ``None`` disables the watchdog.
    timeout_seconds: Optional[float] = 120.0
    #: How often a failed (hung/crashed/raised) experiment is retried on a
    #: fresh worker before being logged as a ``worker-failure``.
    max_retries: int = 1
    #: Results accumulated before a batched sink flush.
    batch_size: int = 32
    #: multiprocessing start method; ``None`` picks ``fork`` when the
    #: platform offers it (cheap worker start) and ``spawn`` otherwise.
    start_method: Optional[str] = None
    #: Observability shipped to workers (sibling trace files, per-worker
    #: metric deltas). ``None`` inherits the process-global configuration
    #: (:func:`repro.observability.current_config`).
    observability: Optional[ObservabilityConfig] = None
    #: Ship the parent's golden run (reference + checkpoint store) to
    #: every worker so workers skip their per-process reference
    #: execution. Serialised once in the parent (free under ``fork``:
    #: copy-on-write). Disable to force each worker to redo its own
    #: reference run (restores the per-worker determinism fingerprint
    #: check as an end-to-end test of the port).
    share_golden: bool = True
    #: Directory for the on-disk golden-run cache
    #: (:class:`repro.core.goldencache.GoldenRunCache`): the parent's
    #: reference run is loaded from / stored to it, keyed by the
    #: campaign's config hash. ``None`` disables disk caching.
    golden_cache_dir: Optional[str] = None
    #: Fraction of statically-derived experiments (equivalence mode) that
    #: are re-executed for real and compared against their derivation;
    #: any divergence aborts the campaign.
    verify_equivalence: float = 0.0
    #: Divergence-window early exits + outcome memoization in workers
    #: (the parallel face of ``goofi run --no-early-exit``). When on,
    #: newly recorded memo entries ride each shard's ``"done"`` message
    #: to the parent, which forwards the merged table to every worker on
    #: dispatch — the same parent-side merge topology as the golden
    #: cache, so a class of identical faults executes once campaign-wide
    #: rather than once per worker.
    early_exit: bool = True
    #: Pluggable worker construction: a callable with
    #: :class:`LocalWorkerHandle`'s signature returning a
    #: :class:`WorkerHandle`. ``None`` builds local worker processes;
    #: the campaign fabric's socket-attached remote workers land behind
    #: this seam without the event loop noticing.
    handle_factory: Optional[Any] = None

    def validate(self) -> None:
        if self.n_workers < 1:
            raise CampaignError("ParallelConfig.n_workers must be >= 1")
        if self.shard_size < 1:
            raise CampaignError("ParallelConfig.shard_size must be >= 1")
        if self.batch_size < 1:
            raise CampaignError("ParallelConfig.batch_size must be >= 1")
        if self.max_retries < 0:
            raise CampaignError("ParallelConfig.max_retries must be >= 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise CampaignError(
                "ParallelConfig.timeout_seconds must be positive or None"
            )
        if not 0.0 <= self.verify_equivalence <= 1.0:
            raise CampaignError(
                "ParallelConfig.verify_equivalence must be in [0, 1]"
            )

    def context(self) -> Any:
        method = self.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
        return multiprocessing.get_context(method)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _reference_fingerprint(reference: Any) -> Tuple[int, int, str]:
    return (
        int(reference.duration_cycles),
        int(reference.duration_instructions),
        str(reference.termination.kind),
    )


def _worker_main(
    conn: Any,
    factory: Any,
    campaign_json: str,
    worker_id: int = 0,
    obs_config: Optional[ObservabilityConfig] = None,
    golden: Any = None,
    port_options: Optional[Dict[str, Any]] = None,
) -> None:
    """Worker process entry point.

    Builds an isolated port via ``factory``, binds the campaign, performs
    its own reference run (announced as a determinism fingerprint), then
    serves ``("run", [indices])`` / ``("run", [indices], memo_rows)``
    task messages until ``("quit",)``. ``port_options`` are plain
    attribute overrides applied to the fresh port before the campaign
    binds (``early_exit``/``memoize`` — the knobs that live on the
    instance rather than in CampaignData).

    With observability enabled, the worker installs its *own* fresh
    instrumentation (a ``.workerN`` sibling trace file, an empty metrics
    registry — never the parent's inherited state) and ships a metrics
    *delta* — and any outcome-memo entries it recorded — alongside every
    shard's ``"done"`` message; the parent merges the deltas under a
    ``worker<N>.`` prefix so per-worker experiment counts stay
    attributable and sum to the campaign totals."""
    obs: Optional[Observability] = None
    if obs_config is not None and obs_config.enabled:
        obs = configure_worker(obs_config, worker_id)
    try:
        campaign = CampaignData.from_json(campaign_json)
        port = factory()
        for name, value in (port_options or {}).items():
            setattr(port, name, value)
        reference = port.prepare_run(campaign, golden=golden)
        conn.send(("ready", _reference_fingerprint(reference)))
        while True:
            message = conn.recv()
            if message[0] == "quit":
                break
            assert message[0] == "run"
            memo = port._memo_table()
            if memo is not None and len(message) > 2 and message[2]:
                memo.merge(message[2])
            for index in message[1]:
                try:
                    result = port.run_single_experiment(index)
                    conn.send(("result", index, result))
                except Exception as exc:  # reported upstream as an error
                    conn.send(
                        ("error", index, f"{type(exc).__name__}: {exc}")
                    )
            delta = (
                obs.metrics.drain()
                if obs is not None and obs.metrics.enabled
                else None
            )
            memo_delta = memo.drain_new() if memo is not None else []
            conn.send(("done", delta, memo_delta))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass
    except Exception as exc:  # init failure, reported upstream as fatal
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
    finally:
        if obs is not None:
            obs.close()
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

class WorkerHandle:
    """Parent-side view of one fleet worker — the interface the event
    loop schedules shards against.

    The base class owns everything that is pure bookkeeping over a
    duplex message ``conn`` (dispatch, watchdog deadlines, shard
    tracking, quit requests); transports implement the three lifecycle
    hooks — :meth:`alive`, :meth:`join` and :meth:`_terminate` — plus a
    constructor that sets :attr:`conn`. :class:`LocalWorkerHandle`
    backs the handle with a forked/spawned process and a pipe; a
    socket-attached remote worker implements the same contract over a
    ``multiprocessing.connection.Client`` connection and plugs in via
    :attr:`ParallelConfig.handle_factory` — the event loop cannot tell
    the difference."""

    #: Duplex connection speaking the worker protocol (must support
    #: ``send``/``recv``/``poll``/``close`` and ``_mpc.wait``).
    conn: Any

    def __init__(self, worker_id: int = 0) -> None:
        self.worker_id = worker_id
        self.ready = False
        self.dead = False
        #: True from shard dispatch until the worker's "done" message —
        #: results alone do not make a worker idle, otherwise a stale
        #: "done" could race a fresh dispatch and disarm the watchdog.
        self.busy = False
        #: Indices of the current shard still awaiting a result; the
        #: leftmost entry is the experiment presumed in flight.
        self.shard: Deque[int] = deque()
        self.deadline: Optional[float] = None

    @property
    def idle(self) -> bool:
        return self.ready and not self.dead and not self.busy

    def dispatch(
        self,
        indices: Sequence[int],
        timeout: Optional[float],
        memo_rows: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        self.busy = True
        self.shard = deque(indices)
        self.conn.send(("run", list(indices), memo_rows or []))
        self.touch(timeout)

    def touch(self, timeout: Optional[float]) -> None:
        """Reset the watchdog deadline (on dispatch and on every result)."""
        self.deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )

    def overdue(self) -> bool:
        return (
            bool(self.shard)
            and self.deadline is not None
            and time.perf_counter() > self.deadline
        )

    def kill(self) -> None:
        self.dead = True
        try:
            self.conn.close()
        except OSError:
            pass
        self._terminate()

    def request_quit(self) -> None:
        try:
            self.conn.send(("quit",))
        except (OSError, ValueError, BrokenPipeError):
            pass

    # -- transport hooks ---------------------------------------------------

    def alive(self) -> bool:
        """Is the underlying worker still there? (watchdog liveness)"""
        raise NotImplementedError

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the worker to wind down after a quit request."""
        raise NotImplementedError

    def _terminate(self) -> None:
        """Forcibly stop the worker (called from :meth:`kill`)."""
        raise NotImplementedError


class LocalWorkerHandle(WorkerHandle):
    """A :class:`WorkerHandle` backed by a local worker process and a
    duplex pipe (the default transport)."""

    def __init__(
        self,
        context: Any,
        factory: Any,
        campaign_json: str,
        worker_id: int = 0,
        obs_config: Optional[ObservabilityConfig] = None,
        golden: Any = None,
        port_options: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(worker_id)
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = context.Process(
            target=_worker_main,
            args=(
                child_conn,
                factory,
                campaign_json,
                worker_id,
                obs_config,
                golden,
                port_options,
            ),
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def alive(self) -> bool:
        return bool(self.process.is_alive())

    def join(self, timeout: Optional[float] = None) -> None:
        self.process.join(timeout=timeout)

    def _terminate(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)


#: Backwards-compatible alias (pre-fabric name).
_WorkerHandle = LocalWorkerHandle


class _ParallelRun:
    """One parallel campaign execution (the parent event loop)."""

    def __init__(
        self,
        campaign: CampaignData,
        factory: Any,
        sink: Any,
        control: Any,
        config: ParallelConfig,
        skip_indices: Optional[Set[int]],
    ) -> None:
        config.validate()
        self.campaign = campaign
        self.factory = factory
        self.sink = sink
        self.control = control
        self.config = config
        skip = frozenset(skip_indices or ())
        #: Index order in which results are reported and logged — the same
        #: order the serial loop would produce.
        self.order: List[int] = [
            i for i in range(campaign.n_experiments) if i not in skip
        ]
        #: Dispatch queue of *units*: lists of indices that must land in
        #: the same shard. Without equivalence collapsing every unit is a
        #: single index; with it, a unit is one equivalence class's
        #: executed members (representative + verify-sampled members), so
        #: a class never spans shards.
        self.queue: Deque[List[int]] = deque([i] for i in self.order)
        self.retry_queue: Deque[int] = deque()
        self.retries: Dict[int, int] = {}
        self.completed: Dict[int, ExperimentResult] = {}
        # -- equivalence collapsing (preinjection_mode="equivalence") --
        #: Parent port retained for plan/derive/verify helpers.
        self.port: Optional[FaultInjectionAlgorithms] = None
        #: index -> InjectionPlan for every index in ``order``.
        self.plans: Optional[Dict[int, Any]] = None
        #: representative index -> its derived member indices.
        self._class_derived: Dict[int, List[int]] = {}
        #: verify-sampled member index -> its representative index.
        self._verify_members: Dict[int, int] = {}
        #: verify member -> synthesized derived result (awaiting compare).
        self._derived_results: Dict[int, ExperimentResult] = {}
        #: verify member -> real result that arrived before its rep's.
        self._verify_actual: Dict[int, ExperimentResult] = {}
        #: representatives that terminally failed (members re-queued).
        self._failed_reps: Set[int] = set()
        self.reported = 0
        self.batch: List[ExperimentResult] = []
        self.workers: List[WorkerHandle] = []
        self.fingerprint: Optional[Tuple[int, int, str]] = None
        self.campaign_json = ""
        #: Parent golden-run bundle shipped to workers (share_golden).
        self.golden: Any = None
        #: Campaign-wide outcome memo relay: worker recordings merge in
        #: via "done" messages; :meth:`_memo_rows_for` forwards the
        #: global insertion order to each worker through a per-worker
        #: cursor, so every worker eventually sees every entry exactly
        #: once. None when early-exit/memoization is off.
        self.memo: Optional[OutcomeMemo] = (
            OutcomeMemo() if config.early_exit else None
        )
        #: worker_id -> how far into the memo's insertion order that
        #: worker has been forwarded.
        self._memo_cursors: Dict[int, int] = {}
        self.failures = 0
        self.obs = get_observability()
        self.obs_config = (
            config.observability
            if config.observability is not None
            else current_config()
        )
        self._next_worker_id = 0
        # Health monitoring: reuse the controller's monitor when running
        # under a CampaignController (it already called begin()); as a
        # bare run_parallel_campaign with observability on, install a
        # fresh one so the exporter's /healthz still has live state.
        health = getattr(control, "health", None)
        #: True when this run created the monitor itself (bare
        #: run_parallel_campaign); the run then also feeds results into
        #: it — under a controller, ``control.report`` already does.
        self._owns_health = False
        if isinstance(health, CampaignHealthMonitor) and health.enabled:
            self.health = health
        elif self.obs.enabled:
            self.health = CampaignHealthMonitor()
            self.health.begin(
                campaign.campaign_name,
                len(self.order),
                n_workers=config.n_workers,
            )
            set_health(self.health)
            self._owns_health = True
        else:
            self.health = NULL_HEALTH

    # -- lifecycle ---------------------------------------------------------

    def execute(self) -> Any:
        with self.obs.profile(
            "campaign",
            campaign=self.campaign.campaign_name,
            technique=self.campaign.technique,
            n_experiments=self.campaign.n_experiments,
            mode="parallel",
            n_workers=self.config.n_workers,
        ):
            self._execute_inner()
        self.obs.flush()
        return self.sink

    def _execute_inner(self) -> None:
        parent_port = self.factory()
        if not isinstance(parent_port, FaultInjectionAlgorithms):
            raise CampaignError(
                "worker factory must build a FaultInjectionAlgorithms port"
            )
        if self.config.golden_cache_dir is not None:
            from repro.core.goldencache import GoldenRunCache

            parent_port.golden_cache = GoldenRunCache(
                self.config.golden_cache_dir
            )
        reference = parent_port.prepare_run(self.campaign)
        self.fingerprint = _reference_fingerprint(reference)
        self.sink.log_reference(self.campaign, reference)
        if self.config.share_golden:
            # Bundle the parent's golden run (reference + checkpoint
            # store) once; every worker adopts it instead of redoing the
            # reference execution. Built after prepare_run so a
            # disk-cache hit is forwarded too.
            from repro.core.goldencache import GoldenRun, campaign_golden_key

            self.golden = GoldenRun(
                config_hash=campaign_golden_key(self.campaign),
                target_name=self.campaign.target_name,
                reference=reference,
                checkpoints=parent_port._checkpoints,
            )
        # Serialise *after* prepare_run: campaign binding resolves
        # trigger addresses and iteration limits that workers must share.
        self.campaign_json = self.campaign.to_json()
        self._prepare_equivalence(parent_port, reference)
        if not self.order:
            return
        n_workers = min(self.config.n_workers, len(self.order))
        self._set_progress_workers(n_workers)
        context = self.config.context()
        # Flush the parent's trace buffer before forking: a child must
        # not inherit (and later flush) buffered parent records.
        self.obs.flush()
        try:
            self.workers = [
                self._spawn_worker(context) for _ in range(n_workers)
            ]
            try:
                self._event_loop()
                self._await_worker_done()
            except StopCampaign:
                self._drain_after_stop()
        finally:
            self._flush_ordered(final=True)
            self._shutdown()

    def _prepare_equivalence(
        self, parent_port: FaultInjectionAlgorithms, reference: Any
    ) -> None:
        """Partition the fault list and rebuild the dispatch queue as
        class units.

        The parent plans every experiment (index-keyed substreams: the
        workers re-derive identical plans), partitions the plans, and
        enqueues one unit per class holding only the indices that must
        *execute* — the representative plus any verify-sampled members.
        The remaining members' results are synthesized in the parent as
        each representative's result arrives."""
        self.port = parent_port
        parent_port.verify_equivalence = self.config.verify_equivalence
        parent_port.early_exit = self.config.early_exit
        parent_port.memoize = self.config.early_exit
        if not parent_port._collapse_enabled(self.campaign):
            return
        equivalence = parent_port._equivalence
        plans = {
            index: parent_port.plan_experiment(index, reference)
            for index in self.order
        }
        partition = equivalence.partition(plans)
        parent_port._record_partition_metrics(partition)
        self.plans = plans
        units: List[List[int]] = []
        for cls in partition.classes:
            unit = [cls.representative]
            derived_members: List[int] = []
            for member in cls.members[1:]:
                derived_members.append(member)
                if parent_port._should_verify(member):
                    self._verify_members[member] = cls.representative
                    unit.append(member)
            if derived_members:
                self._class_derived[cls.representative] = derived_members
            units.append(unit)
        self.queue = deque(units)

    def _accept_result(self, index: int, result: ExperimentResult) -> None:
        """Fold one worker result into ``completed``, synthesizing and
        verifying derived class members as needed."""
        rep = self._verify_members.get(index)
        if rep is not None:
            if rep in self._failed_reps:
                # No derivation exists to compare against: the real
                # execution simply becomes the logged result.
                self.completed[index] = result
                return
            derived = self._derived_results.pop(index, None)
            if derived is None:
                # Representative result not in yet (a retry reordered
                # the shard) — park the real result until it is.
                self._verify_actual[index] = result
                return
            self._check_verified(index, result, derived)
            self.completed[index] = derived
            return
        self.completed[index] = result
        if index in self._class_derived:
            self._synthesize_class(index, result)

    def _synthesize_class(
        self, rep: int, rep_result: ExperimentResult
    ) -> None:
        assert self.port is not None and self.plans is not None
        for member in self._class_derived.get(rep, []):
            derived = self.port._derive_result(
                member, self.plans[member], rep_result
            )
            if member in self._verify_members:
                actual = self._verify_actual.pop(member, None)
                if actual is not None:
                    self._check_verified(member, actual, derived)
                    self.completed[member] = derived
                elif member not in self.completed:
                    self._derived_results[member] = derived
                # A member already in completed terminally failed its
                # real execution; the failure placeholder stands.
            else:
                self.completed[member] = derived

    def _check_verified(
        self,
        index: int,
        actual: ExperimentResult,
        derived: ExperimentResult,
    ) -> None:
        assert self.port is not None
        self.port.check_derived_outcome(index, actual, derived)

    def _handle_rep_failure(self, rep: int) -> None:
        """A class representative exhausted its retries: its members can
        no longer be derived, so every remaining member re-queues as its
        own singleton unit and executes for real."""
        members = self._class_derived.pop(rep, None)
        if members is None:
            return
        self._failed_reps.add(rep)
        for member in members:
            if member in self._verify_members:
                # Already dispatched for real execution in the class
                # unit; its result now simply gets logged directly.
                actual = self._verify_actual.pop(member, None)
                if actual is not None:
                    self.completed[member] = actual
            else:
                self.queue.append([member])

    def _spawn_worker(self, context: Any) -> WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        self.obs.tracer.event("worker-spawn", worker=worker_id)
        handle_factory = self.config.handle_factory or LocalWorkerHandle
        return handle_factory(
            context,
            self.factory,
            self.campaign_json,
            worker_id=worker_id,
            obs_config=self.obs_config,
            golden=self.golden,
            port_options={
                "early_exit": self.config.early_exit,
                "memoize": self.config.early_exit,
            },
        )

    # -- event loop --------------------------------------------------------

    def _event_loop(self) -> None:
        while self.reported < len(self.order):
            self._wait_while_paused()
            self._dispatch_ready()
            self._pump_messages()
            self._check_watchdog()
            self._replace_dead_workers()
            self._flush_ordered()
            if self.health.enabled:
                # The event loop keeps spinning even while every worker
                # is wedged, so stall alerts fire from here long before
                # the watchdog's (much larger) per-experiment timeout.
                self.health.check()

    def _await_worker_done(self, timeout: float = 2.0) -> None:
        """After the last result arrived, give still-busy workers a brief
        window to deliver their trailing ``"done"`` message — it carries
        the final per-worker metrics delta (skipped when metrics are off:
        the deltas would be empty)."""
        if not self.obs.metrics.enabled:
            return
        deadline = time.perf_counter() + timeout
        while (
            any(w.busy and not w.dead for w in self.workers)
            and time.perf_counter() < deadline
        ):
            self._pump_messages()

    def _wait_while_paused(self) -> None:
        """Cooperative pause: stop dispatching and reporting, but keep
        draining worker pipes so in-flight shards cannot back up. Pause
        time is credited back to the controller so it never pollutes the
        throughput figure."""
        if not bool(getattr(self.control, "paused", False)):
            self._checkpoint()
            return
        pause_started = time.perf_counter()
        try:
            while bool(getattr(self.control, "paused", False)):
                self._pump_messages()
                time.sleep(_POLL_SECONDS)
        finally:
            add_pause = getattr(self.control, "add_pause_time", None)
            if callable(add_pause):
                add_pause(time.perf_counter() - pause_started)
        self._checkpoint()

    def _checkpoint(self) -> None:
        next_index = (
            self.order[self.reported]
            if self.reported < len(self.order)
            else self.campaign.n_experiments
        )
        self.control.checkpoint(next_index)

    def _dispatch_ready(self) -> None:
        for worker in self.workers:
            if not worker.idle:
                continue
            shard = self._next_shard()
            if not shard:
                return
            worker.dispatch(
                shard,
                self.config.timeout_seconds,
                memo_rows=self._memo_rows_for(worker),
            )

    def _memo_rows_for(
        self, worker: WorkerHandle
    ) -> Optional[List[Dict[str, Any]]]:
        """Memo entries this worker has not been forwarded yet (its
        cursor over the parent table's global insertion order)."""
        if self.memo is None:
            return None
        cursor = self._memo_cursors.get(worker.worker_id, 0)
        rows, advanced = self.memo.rows_since(cursor)
        self._memo_cursors[worker.worker_id] = advanced
        return rows

    def _next_shard(self) -> List[int]:
        shard: List[int] = []
        while len(shard) < self.config.shard_size:
            if self.retry_queue:
                shard.append(self.retry_queue.popleft())
            elif self.queue:
                # A unit (equivalence class) is never split across
                # shards; a large class may push the shard past
                # shard_size, which is harmless.
                shard.extend(self.queue.popleft())
            else:
                break
        return shard

    def _pump_messages(self) -> None:
        conns = [worker.conn for worker in self.workers if not worker.dead]
        if not conns:
            time.sleep(_POLL_SECONDS)
            return
        for conn in _mpc.wait(conns, timeout=_POLL_SECONDS):
            worker = self._worker_for(conn)
            if worker is None:
                continue
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._handle_worker_death(worker, "worker process crashed")
                continue
            self._handle_message(worker, message)

    def _worker_for(self, conn: Any) -> Optional[WorkerHandle]:
        for worker in self.workers:
            if worker.conn is conn:
                return worker
        return None

    def _handle_message(self, worker: WorkerHandle, message: Tuple) -> None:
        kind = message[0]
        if self.health.enabled:
            # Any message is a sign of life, not just results — a worker
            # grinding through a slow shard still refreshes its heartbeat.
            self.health.heartbeat(worker.worker_id)
        if kind == "ready":
            worker.ready = True
            if message[1] != self.fingerprint:
                raise CampaignError(
                    "worker reference run diverged from the parent's "
                    f"({message[1]} != {self.fingerprint}); the port is not "
                    "deterministic — parallel execution would corrupt results"
                )
        elif kind == "result":
            index, result = message[1], message[2]
            self._discard_from_shard(worker, index)
            worker.touch(self.config.timeout_seconds)
            self._accept_result(index, result)
        elif kind == "error":
            index, reason = message[1], message[2]
            self._discard_from_shard(worker, index)
            worker.touch(self.config.timeout_seconds)
            self._record_failure(index, reason)
        elif kind == "done":
            worker.busy = False
            worker.shard.clear()
            worker.deadline = None
            delta = message[1] if len(message) > 1 else None
            memo_delta = message[2] if len(message) > 2 else None
            if self.memo is not None and memo_delta:
                self.memo.merge(memo_delta)
            if delta:
                # Per-worker metric shipping: the delta merges under a
                # worker-scoped prefix, so the per-worker experiment
                # counts remain attributable (and sum to the totals).
                self.obs.metrics.merge(
                    delta, prefix=f"worker{worker.worker_id}."
                )
        elif kind == "fatal":
            raise CampaignError(f"parallel worker failed to start: {message[1]}")

    @staticmethod
    def _discard_from_shard(worker: WorkerHandle, index: int) -> None:
        try:
            worker.shard.remove(index)
        except ValueError:
            pass

    # -- failure handling --------------------------------------------------

    def _check_watchdog(self) -> None:
        for worker in self.workers:
            if worker.dead:
                continue
            if worker.overdue():
                timeout = self.config.timeout_seconds or 0.0
                self.obs.metrics.counter("parallel.watchdog_total").inc()
                self._handle_worker_death(
                    worker, f"watchdog: experiment exceeded {timeout:.1f}s"
                )
            elif not worker.alive():
                self._handle_worker_death(worker, "worker process crashed")

    def _replace_dead_workers(self) -> None:
        """Respawn replacements for killed workers while undispatched work
        remains (a stopped pool with a non-empty queue would deadlock)."""
        work_remains = bool(self.queue or self.retry_queue)
        for position, worker in enumerate(self.workers):
            if worker.dead and work_remains:
                self.workers[position] = self._respawn()

    def _handle_worker_death(self, worker: WorkerHandle, reason: str) -> None:
        self.obs.tracer.event(
            "worker-death", worker=worker.worker_id, reason=reason
        )
        if self.obs.flightrec.enabled:
            # Post-mortem from the parent's vantage point: the worker's
            # own SIGTERM dump (configure_worker) covers the child side,
            # this dump preserves the parent's recent event ring.
            self.obs.flightrec.dump(
                "worker-death",
                campaign=self.campaign.campaign_name,
                worker=worker.worker_id,
                detail=reason,
            )
        worker.kill()
        self._fail_worker_shard(worker, reason)

    def _fail_worker_shard(self, worker: WorkerHandle, reason: str) -> None:
        """The leftmost shard entry was in flight when the worker died —
        charge the failure to it; later entries were never started and are
        requeued without a retry penalty."""
        if worker.shard:
            in_flight = worker.shard.popleft()
            self._record_failure(in_flight, reason)
        while worker.shard:
            self.retry_queue.appendleft(worker.shard.pop())
        worker.deadline = None

    def _respawn(self) -> WorkerHandle:
        self.obs.metrics.counter("parallel.respawns_total").inc()
        return self._spawn_worker(self.config.context())

    def _record_failure(self, index: int, reason: str) -> None:
        attempts = self.retries.get(index, 0)
        if attempts < self.config.max_retries:
            self.retries[index] = attempts + 1
            self.retry_queue.append(index)
            self.obs.metrics.counter("parallel.retries_total").inc()
            return
        self.failures += 1
        self.obs.metrics.counter("parallel.worker_failures_total").inc()
        if self.obs.flightrec.enabled:
            self.obs.flightrec.dump(
                "worker-failure",
                campaign=self.campaign.campaign_name,
                index=index,
                detail=reason,
                attempts=attempts + 1,
            )
        self.completed[index] = self._failure_result(index, reason, attempts)
        # A failed verify member cannot be compared; its failure
        # placeholder is logged and the parked derivation dropped.
        self._derived_results.pop(index, None)
        self._handle_rep_failure(index)

    def _failure_result(
        self, index: int, reason: str, attempts: int
    ) -> ExperimentResult:
        """A logged placeholder for an experiment no worker could finish:
        failed experiments surface in the database and the progress
        breakdown instead of being silently dropped."""
        return ExperimentResult(
            name=FaultInjectionAlgorithms.experiment_name(
                self.campaign.campaign_name, index
            ),
            index=index,
            campaign_name=self.campaign.campaign_name,
            termination=Termination(
                kind="worker-failure",
                trap_detail=f"{reason} (after {attempts + 1} attempt(s))",
            ),
        )

    # -- ordered reporting and batched sink flushes ------------------------

    def _flush_ordered(self, final: bool = False) -> None:
        while (
            self.reported < len(self.order)
            and self.order[self.reported] in self.completed
        ):
            index = self.order[self.reported]
            result = self.completed.pop(index)
            self.batch.append(result)
            if len(self.batch) >= self.config.batch_size:
                self._flush_batch()
            self.reported += 1
            self.control.report(index, result)
            if self._owns_health:
                # Bare-run path: no controller feeds the monitor, so the
                # run does (controller.report covers the other path).
                termination = result.termination
                self.health.record_result(
                    termination.kind if termination is not None else None
                )
        if final:
            # A stop may leave non-contiguous completed results (later
            # indices finished while an earlier one was still running);
            # log them too so a resume can skip them.
            for index in sorted(self.completed):
                result = self.completed.pop(index)
                self.batch.append(result)
                self.reported += 1
                self.control.report(index, result)
            self._flush_batch()

    def _flush_batch(self) -> None:
        if not self.batch:
            return
        log_many = getattr(self.sink, "log_experiments", None)
        if callable(log_many):
            log_many(self.campaign, self.batch)
        else:
            for result in self.batch:
                self.sink.log_experiment(self.campaign, result)
        self.batch = []

    # -- teardown ----------------------------------------------------------

    def _drain_after_stop(self) -> None:
        """Best-effort pickup of results already in the pipes when the End
        button stopped the campaign (matches the serial guarantee that
        every completed experiment is logged)."""
        for worker in self.workers:
            while True:
                try:
                    if not worker.conn.poll(0):
                        break
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    break
                if message[0] in ("result", "error", "done"):
                    if message[0] == "result":
                        self._accept_result(message[1], message[2])
                    self._discard_from_shard(
                        worker, message[1] if len(message) > 1 else -1
                    )
                else:  # pragma: no cover - ready/fatal during stop
                    break

    def _shutdown(self) -> None:
        for worker in self.workers:
            worker.request_quit()
        for worker in self.workers:
            worker.join(timeout=1.0)
            if worker.alive():
                worker.kill()
            else:
                try:
                    worker.conn.close()
                except OSError:
                    pass

    def _set_progress_workers(self, n_workers: int) -> None:
        progress = getattr(self.control, "progress", None)
        if progress is not None and hasattr(progress, "n_workers"):
            progress.n_workers = n_workers
        if self.health.enabled:
            self.health.set_workers(n_workers)


def run_parallel_campaign(
    campaign: CampaignData,
    factory: Any,
    sink: Any = None,
    control: Any = None,
    config: Optional[ParallelConfig] = None,
    skip_indices: Optional[Set[int]] = None,
) -> Any:
    """Run ``campaign`` sharded over a worker-process pool.

    Drop-in counterpart of
    :meth:`~repro.core.algorithms.FaultInjectionAlgorithms.run_campaign`:
    same sink protocol, same control hooks (``checkpoint`` / ``report``),
    same ``skip_indices`` resume contract, same return value. ``factory``
    must be a picklable zero-argument callable building a fresh port —
    use :func:`repro.core.framework.worker_factory`."""
    sink = sink if sink is not None else _ListSink()
    control = control if control is not None else _NullControl()
    run = _ParallelRun(
        campaign,
        factory,
        sink,
        control,
        config if config is not None else ParallelConfig(),
        skip_indices,
    )
    return run.execute()


class ParallelCampaignController(CampaignController):
    """A :class:`~repro.core.controller.CampaignController` whose
    experiment loop runs on a multiprocessing pool.

    Inherits every Figure-7 affordance — progress listeners,
    pause/resume/end, resume-from-sink with counter rebuild, the
    ``"failed"`` state — and swaps only the executor. The progress
    window renders it unchanged."""

    def __init__(
        self,
        factory: Any,
        sink: Any = None,
        config: Optional[ParallelConfig] = None,
    ) -> None:
        super().__init__(algorithm=None, sink=sink)
        self.factory = factory
        self.config = config if config is not None else ParallelConfig()

    def _planned_workers(self) -> int:
        """The worker count the health monitor and RunMeta row start
        with (trimmed later if fewer experiments than workers)."""
        return self.config.n_workers

    def _execute(self, campaign: CampaignData, skip_indices: Any) -> Any:
        return run_parallel_campaign(
            campaign,
            self.factory,
            sink=self.sink,
            control=self,
            config=self.config,
            skip_indices=skip_indices,
        )


# ---------------------------------------------------------------------------
# Determinism canonicalisation
# ---------------------------------------------------------------------------

def canonical_experiment_rows(
    db: Any, campaign_name: str
) -> List[Tuple[str, bytes, bytes]]:
    """Byte-exact canonical form of a campaign's ``LoggedSystemState``
    experiment rows, for serial-vs-parallel comparison.

    The only legitimately nondeterministic field — per-experiment
    wall-clock time — is zeroed; everything else (injections, termination,
    outputs, state vector blob) must match bit for bit between a serial
    and a parallel run of the same campaign."""
    import json

    rows = db.query(
        "SELECT experimentName, experimentData, stateVector "
        "FROM LoggedSystemState "
        "WHERE campaignName = ? AND isReference = 0 "
        "ORDER BY experimentName",
        (campaign_name,),
    )
    canonical: List[Tuple[str, bytes, bytes]] = []
    for row in rows:
        data = json.loads(row["experimentData"])
        data["wall_seconds"] = 0.0
        canonical.append(
            (
                row["experimentName"],
                json.dumps(data, sort_keys=True).encode("utf-8"),
                bytes(row["stateVector"]),
            )
        )
    return canonical
