"""Fault-location spaces and the hierarchical location tree.

A *fault location* is one bit of one state element in one address space of
the target:

* ``scan:internal`` / ``scan:boundary`` — bits of scan-chain cells
  (SCIFI reaches these),
* ``memory:code`` / ``memory:data`` — bits of words in the downloaded
  workload image (pre-runtime SWIFI reaches these),
* ``sim:*`` — anything the simulation-based baseline can touch directly.

The set-up window of Figure 6 presents "a hierarchical list of possible
locations"; :class:`LocationTree` reproduces that hierarchy by splitting
cell paths on dots, and campaign definitions select locations with glob
patterns over ``space/path`` (e.g. ``scan:internal/cpu.regfile.*``).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class FaultLocation:
    """One injectable bit."""

    space: str
    path: str
    bit: int

    def key(self) -> str:
        return f"{self.space}/{self.path}[{self.bit}]"

    @staticmethod
    def parse(key: str) -> "FaultLocation":
        try:
            space, rest = key.split("/", 1)
            path, bit_text = rest.rsplit("[", 1)
            bit = int(bit_text.rstrip("]"))
        except (ValueError, IndexError) as exc:
            raise ConfigurationError(f"bad location key {key!r}") from exc
        return FaultLocation(space=space, path=path, bit=bit)


@dataclass(frozen=True)
class LocationCell:
    """One state element: a named group of ``width`` injectable bits."""

    space: str
    path: str
    width: int
    read_only: bool = False

    def locations(self) -> List[FaultLocation]:
        return [FaultLocation(self.space, self.path, b) for b in range(self.width)]

    @property
    def full_path(self) -> str:
        return f"{self.space}/{self.path}"


class LocationSpace:
    """All injectable state of one target, with pattern-based selection."""

    def __init__(self, cells: Sequence[LocationCell]):
        self._cells: List[LocationCell] = list(cells)
        self._by_path: Dict[str, LocationCell] = {}
        for cell in self._cells:
            if cell.full_path in self._by_path:
                raise ConfigurationError(f"duplicate cell {cell.full_path!r}")
            self._by_path[cell.full_path] = cell

    def cells(self) -> List[LocationCell]:
        return list(self._cells)

    def cell(self, space: str, path: str) -> LocationCell:
        cell = self._by_path.get(f"{space}/{path}")
        if cell is None:
            raise ConfigurationError(f"unknown cell {space}/{path}")
        return cell

    def total_bits(self, writable_only: bool = True) -> int:
        return sum(
            c.width
            for c in self._cells
            if not (writable_only and c.read_only)
        )

    def select_cells(
        self, patterns: Sequence[str], writable_only: bool = True
    ) -> List[LocationCell]:
        """Cells matching any ``space/path`` glob pattern, in space order."""
        selected: List[LocationCell] = []
        seen = set()
        for cell in self._cells:
            if writable_only and cell.read_only:
                continue
            for pattern in patterns:
                if fnmatch.fnmatchcase(cell.full_path, pattern):
                    if cell.full_path not in seen:
                        seen.add(cell.full_path)
                        selected.append(cell)
                    break
        return selected

    def expand(
        self, patterns: Sequence[str], writable_only: bool = True
    ) -> List[FaultLocation]:
        """All injectable bit locations matching the patterns."""
        locations: List[FaultLocation] = []
        for cell in self.select_cells(patterns, writable_only=writable_only):
            locations.extend(cell.locations())
        if not locations:
            raise ConfigurationError(
                f"no injectable locations match patterns {list(patterns)!r}"
            )
        return locations

    def validate_selection(self, patterns: Sequence[str]) -> None:
        """Raise if the selection matches nothing or only read-only cells
        (read-only scan locations 'can only be used to observe the state',
        paper Section 3.1)."""
        matched_any = self.select_cells(patterns, writable_only=False)
        if not matched_any:
            raise ConfigurationError(
                f"patterns {list(patterns)!r} match no cells of this target"
            )
        writable = self.select_cells(patterns, writable_only=True)
        if not writable:
            raise ConfigurationError(
                f"patterns {list(patterns)!r} match only read-only "
                "(observe-only) locations"
            )

    def tree(self) -> "LocationTree":
        return LocationTree.from_cells(self._cells)


@dataclass
class LocationTree:
    """Hierarchical view of a location space (the Figure 6 list).

    Nodes are keyed by path component; a leaf carries its
    :class:`LocationCell`.
    """

    name: str = ""
    cell: Optional[LocationCell] = None
    children: Dict[str, "LocationTree"] = field(default_factory=dict)

    @staticmethod
    def from_cells(cells: Iterable[LocationCell]) -> "LocationTree":
        root = LocationTree(name="target")
        for cell in cells:
            parts = [cell.space] + cell.path.split(".")
            node = root
            for part in parts:
                node = node.children.setdefault(part, LocationTree(name=part))
            node.cell = cell
        return root

    def leaf_cells(self) -> List[LocationCell]:
        cells: List[LocationCell] = []
        if self.cell is not None:
            cells.append(self.cell)
        for child in self.children.values():
            cells.extend(child.leaf_cells())
        return cells

    def subtree(self, dotted: str) -> "LocationTree":
        node = self
        for part in dotted.split("."):
            if part not in node.children:
                raise ConfigurationError(f"no tree node {dotted!r}")
            node = node.children[part]
        return node

    def render(self, indent: int = 0, show_bits: bool = False) -> str:
        """ASCII rendering used by the campaign set-up window."""
        lines: List[str] = []
        pad = "  " * indent
        label = self.name or "target"
        if self.cell is not None:
            ro = " [read-only]" if self.cell.read_only else ""
            label += f"  ({self.cell.width} bits){ro}"
        lines.append(pad + label)
        for key in sorted(self.children):
            lines.append(self.children[key].render(indent + 1, show_bits))
        return "\n".join(lines)
